"""Simulation configuration.

Every tunable of the facility simulator lives here.  The defaults
reproduce the paper's six-year Mira study; tests and examples shrink
the horizon or adjust single knobs.
"""

from __future__ import annotations

import dataclasses
import datetime as dt
from typing import Optional

from repro import constants
from repro.faults import FaultConfig


@dataclasses.dataclass(frozen=True)
class AmbientConfig:
    """Data-center ambient temperature/humidity model parameters.

    Calibrated against Fig 8 (temporal: 76-90 F, 28-37 %RH, sigma
    2.48 F / 3.66 %RH) and Fig 9 (spatial: up to 11 % temperature and
    36 % humidity spread, driven by underfloor airflow).
    """

    #: Baseline DC air temperature at a well-ventilated rack, F.
    base_temp_f: float = 78.0
    #: Extra temperature at a fully airflow-blocked rack, F.
    blockage_temp_gain_f: float = 16.0
    #: Coupling of DC temperature to outdoor temperature (CRAC units
    #: cannot fully reject seasonal load), F per F around 50 F outdoors.
    outdoor_temp_coupling: float = 0.12
    #: Temperature rise per kW of rack power above nominal, F/kW.
    heat_coupling_f_per_kw: float = 0.04
    #: Nominal rack power for the heat-coupling term, kW.
    nominal_rack_power_kw: float = 55.0
    #: White measurement/mixing noise on DC temperature, F.
    temp_noise_f: float = 0.9
    #: DC humidity model: rh = (offset + slope * outdoor_rh) * airflow term.
    humidity_offset_rh: float = 2.5
    humidity_slope: float = 0.45
    #: Airflow coupling: factor = floor + (1 - floor) * airflow.
    humidity_airflow_floor: float = 0.47
    #: White noise on DC humidity, %RH.
    humidity_noise_rh: float = 0.8
    #: Rate of facility ambient excursions (outages, CRAC failures,
    #: extreme weather), per year.
    excursion_rate_per_year: float = 6.0
    #: Excursion magnitude range, F.
    excursion_min_f: float = 3.0
    excursion_max_f: float = 10.0
    #: Excursion duration range, hours.
    excursion_min_h: float = 2.0
    excursion_max_h: float = 12.0


@dataclasses.dataclass(frozen=True)
class NoiseConfig:
    """Sensor/plant noise levels."""

    #: Relative jitter of the facility pumps around the flow setpoint.
    total_flow_jitter: float = 0.026
    #: Relative per-rack flow measurement noise.
    rack_flow_noise: float = 0.008
    #: Absolute inlet temperature noise, F.
    inlet_noise_f: float = 0.30
    #: Absolute outlet temperature noise, F.
    outlet_noise_f: float = 0.45
    #: Relative rack power measurement noise.
    power_noise: float = 0.01


@dataclasses.dataclass(frozen=True)
class ThetaConfig:
    """The Theta loop-sharing event (Section III-A, Fig 3).

    Theta joined Mira's external loop in July 2016; its early-testing
    heat load pushed both coolant temperatures up until early 2017,
    and the flow setpoint was raised 1,250 -> 1,300 GPM.
    """

    addition_date: dt.datetime = constants.THETA_ADDITION_DATE
    settled_date: dt.datetime = constants.THETA_SETTLED_DATE
    #: Peak supply-temperature excess during Theta early testing, F.
    heat_excess_f: float = 1.8
    #: Ramp-in duration of the excess after the addition date, days.
    ramp_days: float = 21.0
    #: Whether the event happens at all.  False simulates the
    #: counterfactual facility where Theta never joined the loop: no
    #: flow-setpoint step and no mid-2016 temperature excess.
    enabled: bool = True


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Top-level simulator configuration."""

    start: dt.datetime = constants.PRODUCTION_START
    end: dt.datetime = constants.PRODUCTION_END
    #: Engine step, seconds.  The canonical dataset runs hourly; the
    #: coolant monitors' native 300 s cadence is used by the window
    #: synthesizer for lead-up studies.
    dt_s: float = 3600.0
    #: Master seed; all component rngs are spawned from it.
    seed: int = 20_140_101
    #: Sub-configs.
    ambient: AmbientConfig = dataclasses.field(default_factory=AmbientConfig)
    noise: NoiseConfig = dataclasses.field(default_factory=NoiseConfig)
    theta: ThetaConfig = dataclasses.field(default_factory=ThetaConfig)
    #: Whether the CMF/aftermath failure processes are active.
    inject_failures: bool = True
    #: Sensor/delivery fault injection (:mod:`repro.faults`).  ``None``
    #: (the default) leaves telemetry pristine and keeps the realization
    #: byte-identical to historical runs; a :class:`FaultConfig` degrades
    #: the delivered stream after the physics pass.
    faults: Optional[FaultConfig] = None
    #: Seasonal flow-trim amplitude (operators nudge flow up with
    #: seasonal load; Fig 4(c)'s <1.5 % monthly variation).
    seasonal_flow_gain: float = 0.04

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty simulation period: {self.start} .. {self.end}")
        if self.dt_s <= 0:
            raise ValueError(f"dt must be positive, got {self.dt_s}")
