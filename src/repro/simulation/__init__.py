"""The facility simulator that substitutes for Mira's telemetry archive.

* :mod:`repro.simulation.config` — all tunables in one dataclass,
* :mod:`repro.simulation.engine` — the discrete-time stepping engine
  wiring scheduler -> power -> cooling -> ambient -> sensors,
* :mod:`repro.simulation.windows` — high-resolution (300 s) lead-up
  window synthesis around CMF events for the Fig 12/13 analyses,
* :mod:`repro.simulation.scenarios` — the canonical six-year Mira
  scenario (including the Theta loop-sharing event),
* :mod:`repro.simulation.datasets` — cached dataset builders shared by
  tests, benchmarks, and examples.
"""

from repro.faults import FaultConfig
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import FacilityEngine, SimulationResult
from repro.simulation.scenarios import MiraScenario
from repro.simulation.windows import LeadupWindow, WindowSynthesizer
from repro.simulation.datasets import canonical_dataset, small_dataset

__all__ = [
    "FaultConfig",
    "SimulationConfig",
    "FacilityEngine",
    "SimulationResult",
    "MiraScenario",
    "LeadupWindow",
    "WindowSynthesizer",
    "canonical_dataset",
    "small_dataset",
]
