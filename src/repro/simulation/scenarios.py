"""Scenario presets for the facility simulator."""

from __future__ import annotations

import dataclasses
import datetime as dt
from typing import Optional

from repro import constants
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import FacilityEngine, SimulationResult


class MiraScenario:
    """Named configurations of the six-year Mira study.

    Use the constructors to get a :class:`SimulationConfig`, tweak it
    with :func:`dataclasses.replace` if needed, then :meth:`run` it.
    """

    @staticmethod
    def full_study(seed: int = 20_140_101, dt_s: float = 3600.0) -> SimulationConfig:
        """The paper's full production period, 2014-01-01 .. 2019-12-31."""
        return SimulationConfig(seed=seed, dt_s=dt_s)

    @staticmethod
    def single_year(year: int, seed: int = 20_140_101, dt_s: float = 3600.0) -> SimulationConfig:
        """One calendar year of the study period.

        Raises:
            ValueError: if the year is outside 2014..2019.
        """
        if not 2014 <= year <= 2019:
            raise ValueError(f"year must be within the production period, got {year}")
        return SimulationConfig(
            start=dt.datetime(year, 1, 1),
            end=dt.datetime(year + 1, 1, 1),
            seed=seed,
            dt_s=dt_s,
        )

    @staticmethod
    def demo(
        days: int = 60,
        seed: int = 7,
        dt_s: float = 1800.0,
        start: Optional[dt.datetime] = None,
    ) -> SimulationConfig:
        """A short window for examples and quick tests.

        Raises:
            ValueError: if ``days`` is not positive.
        """
        if days <= 0:
            raise ValueError(f"days must be positive, got {days}")
        begin = start if start is not None else dt.datetime(2015, 3, 1)
        return SimulationConfig(
            start=begin,
            end=begin + dt.timedelta(days=days),
            seed=seed,
            dt_s=dt_s,
        )

    @staticmethod
    def run(config: SimulationConfig) -> SimulationResult:
        """Build an engine for ``config`` and execute it."""
        return FacilityEngine(config).run()
