"""Cached canonical datasets shared by tests, benchmarks, and examples.

The six-year simulation takes tens of seconds; analyses, benchmarks,
and examples all need the *same* realization (the study analyzed one
Mira, not fifty).  These builders memoize at two levels:

* **in process** via :func:`functools.lru_cache`, so one Python
  session pays the cost once, and
* **on disk** under ``~/.cache/repro/`` (override with
  ``REPRO_CACHE_DIR``), so *subsequent sessions* skip the simulation
  entirely and reopen the telemetry as a memory-mapped
  :class:`~repro.telemetry.archive.TelemetryArchive`.

Cache entries are keyed by the package version plus a hash of the
simulation configuration, so a new release or a changed config never
serves stale telemetry.  Only the environmental database and the job
counters are persisted; the failure schedule, RAS log, machine, and
weather models are rebuilt from the (cheap, deterministic) engine
constructor.  Set ``REPRO_DATASET_CACHE=0`` to disable the disk layer.

Entries carry a per-file SHA-256 manifest written at store time and
verified at load time: a flipped bit or truncated column (the cache
lives for months on scratch filesystems) quarantines the entry aside
and the dataset is rematerialized from the simulation — corruption
costs a rebuild, never a silently wrong analysis.  Entries written by
older versions (no manifest) still load, unverified.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro import __version__
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import FacilityEngine, SimulationResult
from repro.simulation.scenarios import MiraScenario

#: Environment variable: set to ``0`` to disable the on-disk cache.
CACHE_ENV = "REPRO_DATASET_CACHE"
#: Environment variable: overrides the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_META_FILE = "result.json"
_TELEMETRY_DIR = "telemetry"


def cache_root() -> Path:
    """The dataset cache directory (not necessarily existing yet)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def _disk_cache_enabled() -> bool:
    return os.environ.get(CACHE_ENV, "1") != "0"


def _config_digest(config: SimulationConfig) -> str:
    """Cache key: package version + full configuration repr.

    ``SimulationConfig`` is a frozen dataclass of plain values, so its
    ``repr`` is a complete, stable description of the run.
    """
    payload = f"{__version__}\n{config!r}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _file_digest(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _manifest(entry: Path) -> Dict[str, str]:
    """Per-file SHA-256 digests of the entry's telemetry columns."""
    telemetry = entry / _TELEMETRY_DIR
    return {
        path.relative_to(entry).as_posix(): _file_digest(path)
        for path in sorted(telemetry.rglob("*"))
        if path.is_file()
    }


def _quarantine(entry: Path) -> None:
    """Move a failed-verification entry aside (best effort).

    Renaming (rather than deleting) keeps the corrupt bytes around for
    a post-mortem while immediately freeing the entry path so the next
    :func:`build_dataset` call rematerializes into a clean directory;
    ``clear_cache`` sweeps quarantined entries away.
    """
    target = entry.parent / f".quarantine-{entry.name}-{os.getpid()}"
    try:
        os.replace(entry, target)
    except OSError:
        shutil.rmtree(entry, ignore_errors=True)


def _load_from_disk(
    config: SimulationConfig, entry: Path
) -> Optional[SimulationResult]:
    """Reassemble a cached result, or ``None`` if absent/corrupt.

    A corrupt entry — checksum mismatch against the stored manifest,
    unreadable metadata, or an archive that fails to open — is
    quarantined before returning ``None``, so the caller's rebuild
    cannot collide with the bad directory.
    """
    # Imported lazily so importing this module never costs archive I/O.
    from repro.telemetry.archive import TelemetryArchive

    meta_path = entry / _META_FILE
    if not meta_path.exists():
        return None
    try:
        meta = json.loads(meta_path.read_text())
        expected = meta.get("files")
        if expected is not None and _manifest(entry) != expected:
            _quarantine(entry)
            return None
        database = TelemetryArchive.load(entry / _TELEMETRY_DIR)
    except (OSError, ValueError, KeyError):
        _quarantine(entry)
        return None
    # The engine constructor is deterministic and cheap relative to a
    # run: it regenerates the failure schedule, RAS log, machine, and
    # weather models that the archive does not persist.
    engine = FacilityEngine(config)
    return SimulationResult(
        config=config,
        database=database,
        ras_log=engine.ras_log,
        schedule=engine.schedule,
        noncmf_failures=engine.noncmf_failures,
        machine=engine.machine,
        weather=engine.weather,
        jobs_completed=int(meta["jobs_completed"]),
        jobs_killed=int(meta["jobs_killed"]),
    )


def _store_to_disk(result: SimulationResult, entry: Path) -> None:
    """Atomically publish a result into the cache (best effort).

    The archive is written to a temp directory next to the entry and
    renamed into place, so concurrent sessions never observe a
    half-written cache; any I/O failure silently skips caching.
    """
    from repro.telemetry.archive import TelemetryArchive

    try:
        entry.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(dir=entry.parent, prefix=".tmp-"))
    except OSError:
        return
    try:
        TelemetryArchive.save(result.database, tmp / _TELEMETRY_DIR)
        (tmp / _META_FILE).write_text(
            json.dumps(
                {
                    "version": __version__,
                    "jobs_completed": result.jobs_completed,
                    "jobs_killed": result.jobs_killed,
                    "files": _manifest(tmp),
                }
            )
        )
        os.replace(tmp, entry)
    except OSError:
        # Another session may have won the rename race, or the disk is
        # full/read-only; either way the in-memory result stands.
        shutil.rmtree(tmp, ignore_errors=True)


def build_dataset(config: SimulationConfig) -> SimulationResult:
    """Build (or load from the disk cache) the realization of ``config``.

    Fault-injecting configs skip the disk layer: the archive format
    persists neither quality masks nor fault ground truth, and a
    reloaded entry would silently lose :attr:`SimulationResult.fault_truth`.
    """
    if not _disk_cache_enabled() or config.faults is not None:
        return FacilityEngine(config).run()
    entry = cache_root() / _config_digest(config)
    cached = _load_from_disk(config, entry)
    if cached is not None:
        return cached
    result = FacilityEngine(config).run()
    _store_to_disk(result, entry)
    return result


def result_from_archive(
    config: SimulationConfig,
    archive_dir: Union[str, Path],
    jobs_completed: int = 0,
    jobs_killed: int = 0,
) -> SimulationResult:
    """Reassemble a result from an on-disk telemetry archive.

    The telemetry columns are reopened *memory-mapped*, so a worker
    process pays no RAM or deserialization cost for channels it never
    touches; the failure schedule, RAS log, machine, and weather models
    are regenerated by the (cheap, deterministic) engine constructor.
    This is the worker-side half of the parallel report's zero-copy
    fan-out: the parent sends the archive *path*, never the database.
    """
    from repro.telemetry.archive import TelemetryArchive

    database = TelemetryArchive.load(archive_dir, mmap=True)
    engine = FacilityEngine(config)
    return SimulationResult(
        config=config,
        database=database,
        ras_log=engine.ras_log,
        schedule=engine.schedule,
        noncmf_failures=engine.noncmf_failures,
        machine=engine.machine,
        weather=engine.weather,
        jobs_completed=int(jobs_completed),
        jobs_killed=int(jobs_killed),
    )


def materialize_archive(result: SimulationResult) -> Optional[Path]:
    """The on-disk archive directory for a result, spilling it if needed.

    Returns the directory whose columns hold exactly
    ``result.database``'s telemetry, so worker processes can reopen it
    via :func:`result_from_archive` instead of receiving the pickled
    database:

    * a database that was itself loaded from an archive answers with
      its source directory (nothing is written);
    * an in-memory pristine result is spilled once — into its dataset
      cache entry when the disk cache is enabled, otherwise into a
      fresh temporary directory;
    * faulted results return ``None``: the archive format persists
      neither quality masks nor fault ground truth, so a round-trip
      would silently change the analysis inputs.
    """
    source = getattr(result.database, "source_dir", None)
    if source is not None:
        return Path(source)
    if result.fault_truth is not None or result.config.faults is not None:
        return None
    if _disk_cache_enabled():
        entry = cache_root() / _config_digest(result.config)
        if not (entry / _META_FILE).exists():
            _store_to_disk(result, entry)
        telemetry = entry / _TELEMETRY_DIR
        if (entry / _META_FILE).exists() and telemetry.exists():
            return telemetry
    # Cache disabled (or unwritable): spill to a session-local temp dir.
    from repro.telemetry.archive import TelemetryArchive

    try:
        tmp = Path(tempfile.mkdtemp(prefix="repro-archive-"))
        return TelemetryArchive.save(result.database, tmp / _TELEMETRY_DIR)
    except OSError:
        return None


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """One on-disk dataset-cache entry (for ``repro cache info``)."""

    digest: str
    path: Path
    version: str
    size_bytes: int

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 1e6


def _tree_size(path: Path) -> int:
    return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())


def cache_entries() -> List[CacheEntry]:
    """Describe every complete dataset-cache entry, newest first."""
    root = cache_root()
    if not root.is_dir():
        return []
    entries: List[CacheEntry] = []
    for child in sorted(root.iterdir()):
        if child.name.startswith("."):  # temp or quarantined, not an entry
            continue
        meta_path = child / _META_FILE
        if not meta_path.is_file():
            continue
        try:
            version = str(json.loads(meta_path.read_text()).get("version", "?"))
            size = _tree_size(child)
        except (OSError, ValueError):
            version, size = "corrupt", 0
        entries.append(
            CacheEntry(
                digest=child.name, path=child, version=version, size_bytes=size
            )
        )
    entries.sort(key=lambda e: e.path.stat().st_mtime, reverse=True)
    return entries


def clear_cache() -> int:
    """Remove every dataset-cache entry (plus stale temp and
    quarantined dirs).

    Returns:
        The number of entries removed.
    """
    root = cache_root()
    if not root.is_dir():
        return 0
    removed = 0
    for child in root.iterdir():
        if not child.is_dir():
            continue
        stale = child.name.startswith((".tmp-", ".quarantine-"))
        is_entry = not stale and (child / _META_FILE).is_file()
        if is_entry or stale:
            shutil.rmtree(child, ignore_errors=True)
            removed += int(is_entry)
    return removed


@functools.lru_cache(maxsize=1)
def canonical_dataset() -> SimulationResult:
    """The canonical six-year Mira realization (hourly cadence).

    This is the dataset every figure reproduction runs against.  It is
    deterministic: the same package version always produces the same
    telemetry and failure schedule.
    """
    return build_dataset(MiraScenario.full_study())


@functools.lru_cache(maxsize=1)
def small_dataset() -> SimulationResult:
    """A fast ~4-month realization for unit tests (30 min cadence)."""
    return build_dataset(MiraScenario.demo(days=120, seed=11))
