"""Cached canonical datasets shared by tests, benchmarks, and examples.

The six-year simulation takes tens of seconds; analyses, benchmarks,
and examples all need the *same* realization (the study analyzed one
Mira, not fifty).  These builders memoize per process so the cost is
paid once.
"""

from __future__ import annotations

import functools

from repro.simulation.engine import FacilityEngine, SimulationResult
from repro.simulation.scenarios import MiraScenario


@functools.lru_cache(maxsize=1)
def canonical_dataset() -> SimulationResult:
    """The canonical six-year Mira realization (hourly cadence).

    This is the dataset every figure reproduction runs against.  It is
    deterministic: the same package version always produces the same
    telemetry and failure schedule.
    """
    return FacilityEngine(MiraScenario.full_study()).run()


@functools.lru_cache(maxsize=1)
def small_dataset() -> SimulationResult:
    """A fast ~4-month realization for unit tests (30 min cadence)."""
    return FacilityEngine(MiraScenario.demo(days=120, seed=11)).run()
