"""High-resolution (300 s) telemetry windows around CMF events.

The six-year canonical dataset is simulated hourly — plenty for the
trend and spatial analyses, but the lead-up study (Fig 12) and the
predictor (Fig 13) need the coolant monitor's native 300 s cadence in
the hours before each failure.  Rather than paying for a six-year
300 s run, :class:`WindowSynthesizer` re-synthesizes short windows at
full cadence:

* **positive windows** end at a CMF event.  The hourly telemetry
  around the event already carries the precursor imprint at coarse
  resolution; it is *divided out* (the injected factors are known
  exactly from the failure schedule), the clean counterfactual series
  is interpolated onto the 300 s grid, and the Fig 12 signatures are
  re-applied at full resolution.  Positives therefore inherit the
  same operational drift statistics as negatives — the only class
  difference is the physical signature.
* **negative windows** are drawn at random (time, rack) pairs far from
  any CMF on that rack, interpolating the coarse telemetry (so they
  inherit real operational variation — maintenance dips, seasonal
  drift, utilization swings) plus sensor noise.

Only samples at or before each window's end time are used, so a
window never leaks post-failure data (the rack is down and its
channels read zero after the event).

This mirrors the paper's dataset construction: positive samples from
the six hours before each CMF, negative samples evenly drawn across
the production period (Section VI-B).

Determinism and parallelism
---------------------------

Window *i* of either class draws its sensor noise from a dedicated
child generator spawned from the synthesizer seed (via
:class:`numpy.random.SeedSequence`), and the negative (time, rack)
candidates come from their own child stream drawn up front.  A
window's realization therefore depends only on its index — never on
how many windows were built before it or in which process — which is
what lets the parallel report pipeline fan ``positive_windows(lo, hi)``
slices out across workers and reassemble a list bit-identical to the
serial one.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import constants, timeutil
from repro.facility.topology import RackId
from repro.failures.cmf import CmfEvent, PrecursorSignature
from repro.simulation.engine import SimulationResult
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel


@dataclasses.dataclass(frozen=True)
class LeadupWindow:
    """One fixed-cadence telemetry window for one rack.

    Attributes:
        rack_id: The instrumented rack.
        end_epoch_s: The window's end — the CMF time for positives,
            the reference time for negatives.
        epoch_s: Sample grid (ascending, ends at ``end_epoch_s``).
        channels: Channel -> value vector over the grid.
        is_positive: Whether a CMF occurs at ``end_epoch_s``.
    """

    rack_id: RackId
    end_epoch_s: float
    epoch_s: np.ndarray
    channels: Dict[Channel, np.ndarray]
    is_positive: bool

    def value_at(self, channel: Channel, epoch_s: float) -> float:
        """Linear interpolation of one channel inside the window."""
        return float(np.interp(epoch_s, self.epoch_s, self.channels[channel]))

    def lead_value(self, channel: Channel, lead_s: float) -> float:
        """Channel value ``lead_s`` seconds before the window end."""
        return self.value_at(channel, self.end_epoch_s - lead_s)


class WindowSynthesizer:
    """Builds 300 s lead-up windows from a coarse simulation result.

    Args:
        result: A completed simulation (with its failure schedule).
        dt_s: Window cadence (the monitor's 300 s by default).
        history_s: Window length; must cover the feature lookback (6 h)
            plus the largest prediction lead (6 h).
        seed: Noise seed for the synthesized fine structure.  The
            default defines the canonical window realization; it moved
            with the 1.3 per-index reseeding (window noise now depends
            only on the window's index, see the module docstring).
    """

    def __init__(
        self,
        result: SimulationResult,
        dt_s: float = float(constants.MONITOR_SAMPLE_PERIOD_S),
        history_s: float = 12.5 * timeutil.HOUR_S,
        seed: int = 55,
    ) -> None:
        if result.schedule is None:
            raise ValueError("simulation was run without failure injection")
        if dt_s <= 0 or history_s <= dt_s:
            raise ValueError("invalid window geometry")
        self._result = result
        self.dt_s = dt_s
        self.history_s = history_s
        self._seed = seed
        #: Sequential stream for the ad-hoc single-window builders; the
        #: bulk ``*_windows`` builders use per-index child generators
        #: instead (see the module docstring).
        self._rng = np.random.default_rng(seed)
        self._db = result.database
        self._epoch = self._db.epoch_s
        #: Coarse cadence; the engine marks a rack down in the very
        #: step its CMF fires, so the last clean sample precedes the
        #: event by at least one coarse step.
        self._coarse_dt = result.config.dt_s
        self._noise = result.config.noise
        # Per-channel fine-scale noise sigmas (absolute units).
        self._noise_sigma = {
            Channel.FLOW: 0.25,
            Channel.INLET_TEMPERATURE: self._noise.inlet_noise_f,
            Channel.OUTLET_TEMPERATURE: self._noise.outlet_noise_f,
            Channel.POWER: 0.5,
            Channel.DC_TEMPERATURE: result.config.ambient.temp_noise_f,
            Channel.DC_HUMIDITY: result.config.ambient.humidity_noise_rh,
        }

    # -- internals ------------------------------------------------------------

    def _grid(self, end_epoch_s: float) -> np.ndarray:
        count = int(round(self.history_s / self.dt_s))
        return end_epoch_s - self.dt_s * np.arange(count, -1, -1, dtype="float64")

    def _coarse_series(
        self,
        channel: Channel,
        rack_index: int,
        grid: np.ndarray,
        cutoff_epoch_s: float,
        divide_factor: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Interpolate one rack's coarse channel onto a window grid.

        Only coarse samples at or before ``cutoff_epoch_s`` are used
        (no post-failure leakage); beyond the last usable sample the
        series holds its final value.  ``divide_factor``, if given,
        divides the usable coarse samples (the counterfactual
        de-imprinting of the precursor signature).
        """
        column = self._db.channel(channel).values[:, rack_index]
        usable = np.isfinite(column) & (self._epoch <= cutoff_epoch_s + 1e-6)
        if not usable.any():
            raise ValueError("no usable coarse telemetry before the window end")
        epochs = self._epoch[usable]
        values = column[usable]
        if divide_factor is not None:
            values = values / divide_factor[usable]
        return np.interp(grid, epochs, values)

    def _noisy(
        self,
        channel: Channel,
        values: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        sigma = self._noise_sigma[channel]
        generator = self._rng if rng is None else rng
        return values + sigma * generator.standard_normal(values.shape)

    def _seed_roots(self) -> Tuple[np.random.SeedSequence, ...]:
        """(positive-noise, negative-candidate, negative-noise) roots.

        Re-derived on every call: ``SeedSequence`` spawning is
        stateful, so index-stable children require starting from a
        fresh root each time.
        """
        return tuple(np.random.SeedSequence(self._seed).spawn(3))

    def _coarse_signature_factors(
        self, event: CmfEvent
    ) -> Dict[Channel, np.ndarray]:
        """The precursor factors the engine baked into the coarse data.

        Evaluated at every coarse timestamp for the event's rack; 1.0
        outside the lead-up window.
        """
        tau = event.epoch_s - self._epoch
        condensation = event.reason == "condensation_risk"
        return {
            Channel.INLET_TEMPERATURE: PrecursorSignature.inlet_factor(
                tau, event.severity
            ),
            Channel.OUTLET_TEMPERATURE: PrecursorSignature.outlet_factor(
                tau, event.severity
            ),
            Channel.FLOW: PrecursorSignature.flow_factor(tau, event.severity),
            Channel.DC_HUMIDITY: PrecursorSignature.humidity_factor(
                tau, condensation_triggered=condensation, amplitude=event.severity
            ),
        }

    # -- window construction -------------------------------------------------------

    def positive_window(
        self, event: CmfEvent, rng: Optional[np.random.Generator] = None
    ) -> LeadupWindow:
        """The lead-up window ending at one CMF event.

        Args:
            event: The terminating CMF.
            rng: Noise generator; defaults to the synthesizer's
                sequential stream (the bulk builders pass the window's
                own index-derived child instead).
        """
        grid = self._grid(event.epoch_s)
        rack = event.rack_id.flat_index
        tau = event.epoch_s - grid  # time remaining until failure
        coarse_factors = self._coarse_signature_factors(event)
        condensation = event.reason == "condensation_risk"
        fine_factors = {
            Channel.INLET_TEMPERATURE: PrecursorSignature.inlet_factor(
                tau, event.severity
            ),
            Channel.OUTLET_TEMPERATURE: PrecursorSignature.outlet_factor(
                tau, event.severity
            ),
            Channel.FLOW: PrecursorSignature.flow_factor(tau, event.severity),
            Channel.DC_HUMIDITY: PrecursorSignature.humidity_factor(
                tau, condensation_triggered=condensation, amplitude=event.severity
            ),
        }
        channels: Dict[Channel, np.ndarray] = {}
        for channel in PREDICTOR_CHANNELS:
            clean = self._coarse_series(
                channel,
                rack,
                grid,
                cutoff_epoch_s=event.epoch_s - self._coarse_dt,
                divide_factor=coarse_factors.get(channel),
            )
            series = clean * fine_factors.get(channel, 1.0)
            channels[channel] = self._noisy(channel, series, rng)
        return LeadupWindow(
            rack_id=event.rack_id,
            end_epoch_s=event.epoch_s,
            epoch_s=grid,
            channels=channels,
            is_positive=True,
        )

    def negative_window(
        self,
        rack_id: RackId,
        end_epoch_s: float,
        rng: Optional[np.random.Generator] = None,
    ) -> LeadupWindow:
        """A no-failure window for one rack ending at a reference time."""
        grid = self._grid(end_epoch_s)
        rack = rack_id.flat_index
        channels = {
            channel: self._noisy(
                channel,
                self._coarse_series(
                    channel, rack, grid, cutoff_epoch_s=end_epoch_s
                ),
                rng,
            )
            for channel in PREDICTOR_CHANNELS
        }
        return LeadupWindow(
            rack_id=rack_id,
            end_epoch_s=end_epoch_s,
            epoch_s=grid,
            channels=channels,
            is_positive=False,
        )

    # -- dataset assembly -------------------------------------------------------------

    def eligible_events(self) -> List[CmfEvent]:
        """The CMF events far enough in to carry a full lead-up window."""
        schedule = self._result.schedule
        assert schedule is not None
        start = self._result.start_epoch_s + self.history_s
        return [event for event in schedule.events if event.epoch_s >= start]

    def positive_windows(
        self, lo: int = 0, hi: Optional[int] = None
    ) -> List[LeadupWindow]:
        """One window per eligible CMF event in the schedule.

        Args:
            lo: First eligible-event index to build (inclusive).
            hi: One past the last index (default: all).  Window ``i``
                is identical whichever slice it is built in, so
                ``positive_windows(0, k) + positive_windows(k, None)``
                equals ``positive_windows()`` bit for bit — the
                parallel report relies on this to shard the synthesis.
        """
        events = self.eligible_events()
        seeds = self._seed_roots()[0].spawn(len(events))
        stop = len(events) if hi is None else min(hi, len(events))
        return [
            self.positive_window(events[i], np.random.default_rng(seeds[i]))
            for i in range(lo, stop)
        ]

    def negative_candidates(
        self, count: int, exclusion_s: float = 24 * 3600.0
    ) -> List[Tuple[RackId, float]]:
        """The deterministic (rack, end-time) pairs of the negative class.

        Candidates are rejection-sampled from a dedicated child stream
        — cheap (no window construction), so a worker building one
        slice of the negatives re-derives the full pair list and picks
        its share.

        A candidate (time, rack) is rejected if the rack has a CMF
        within ``exclusion_s`` of the window end, mirroring the paper's
        negative-class construction.
        """
        schedule = self._result.schedule
        assert schedule is not None
        per_rack_times = {
            flat: np.array(
                [e.epoch_s for e in schedule.events if e.rack_id.flat_index == flat]
            )
            for flat in range(constants.NUM_RACKS)
        }
        lo = self._result.start_epoch_s + self.history_s
        hi = self._result.end_epoch_s - 1.0
        rng = np.random.default_rng(self._seed_roots()[1])
        pairs: List[Tuple[RackId, float]] = []
        guard = 0
        while len(pairs) < count:
            guard += 1
            if guard > 50 * count:
                raise RuntimeError("negative window sampling failed to converge")
            end = float(rng.uniform(lo, hi))
            rack = int(rng.integers(constants.NUM_RACKS))
            times = per_rack_times[rack]
            if times.size and np.min(np.abs(times - end)) < exclusion_s:
                continue
            pairs.append((RackId.from_flat_index(rack), end))
        return pairs

    def negative_windows(
        self,
        count: int,
        exclusion_s: float = 24 * 3600.0,
        lo: int = 0,
        hi: Optional[int] = None,
    ) -> List[LeadupWindow]:
        """``count`` windows drawn evenly across the production period.

        Args:
            count: Total negative-class size (fixes the candidate list
                and the per-window noise seeds).
            exclusion_s: CMF exclusion radius for candidates.
            lo: First window index to build (inclusive).
            hi: One past the last index (default: all ``count``); as
                with :meth:`positive_windows`, slices concatenate to
                the full list bit for bit.
        """
        pairs = self.negative_candidates(count, exclusion_s)
        seeds = self._seed_roots()[2].spawn(count)
        stop = count if hi is None else min(hi, count)
        return [
            self.negative_window(
                pairs[i][0], pairs[i][1], np.random.default_rng(seeds[i])
            )
            for i in range(lo, stop)
        ]
