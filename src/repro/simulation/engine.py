"""The discrete-time facility engine.

Each step wires the substrate models together in physical order:

1. the **scheduler** advances (jobs finish/start, maintenance and
   reservation windows open/close) and yields per-rack utilization and
   CPU intensity,
2. scheduled **failures** fire (CMF events shut racks down via the
   solenoid-close + power-off control actions; non-CMF failures take a
   rack down for about an hour) and downed racks recover,
3. the **power model** turns utilization/intensity into per-rack AC
   draws,
4. the **cooling plant and loop** produce per-rack flow and coolant
   temperatures (with the Theta heat-load excess and the pre-failure
   precursor signatures applied),
5. the **ambient model** produces per-rack data-center temperature and
   humidity from outdoor weather, airflow blockage, rack heat, and
   excursion events, and
6. the calibrated snapshot is appended to the **environmental
   database**.

The RAS log (raw storms plus non-CMF events) is generated from the
same failure schedule, so telemetry and log lines agree.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro import constants, timeutil
from repro.cooling.loops import CoolingLoop
from repro.cooling.plant import ChilledWaterPlant
from repro.cooling.valves import FlowRegulatingValve
from repro.facility.machine import Machine
from repro.failures.cmf import CmfSchedule, PrecursorSignature
from repro.failures.noncmf import AftermathProcess, NonCmfFailure
from repro.failures.storms import StormGenerator
from repro.scheduler.scheduler import MiraScheduler
from repro.scheduler.workload import WorkloadGenerator
from repro.simulation.config import SimulationConfig
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.ras import RasLog
from repro.telemetry.records import Channel
from repro.weather.chicago import ChicagoWeather


@dataclasses.dataclass
class SimulationResult:
    """Everything a six-year run produces."""

    config: SimulationConfig
    database: EnvironmentalDatabase
    ras_log: RasLog
    schedule: Optional[CmfSchedule]
    noncmf_failures: Tuple[NonCmfFailure, ...]
    machine: Machine
    weather: ChicagoWeather
    jobs_completed: int
    jobs_killed: int

    @property
    def start_epoch_s(self) -> float:
        return timeutil.to_epoch(self.config.start)

    @property
    def end_epoch_s(self) -> float:
        return timeutil.to_epoch(self.config.end)


@dataclasses.dataclass(frozen=True)
class _Excursion:
    """One facility ambient-temperature excursion."""

    start_epoch_s: float
    end_epoch_s: float
    magnitude_f: float


class FacilityEngine:
    """Builds and runs the full facility simulation.

    Args:
        config: Simulation configuration; all component randomness is
            spawned from ``config.seed`` so runs are reproducible.
    """

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config if config is not None else SimulationConfig()
        seed_seq = np.random.SeedSequence(self.config.seed)
        (
            machine_seed,
            loop_seed,
            workload_seed,
            scheduler_seed,
            cmf_seed,
            aftermath_seed,
            storm_seed,
            noise_seed,
            excursion_seed,
        ) = seed_seq.spawn(9)

        self._start = timeutil.to_epoch(self.config.start)
        self._end = timeutil.to_epoch(self.config.end)

        self.machine = Machine(rng=np.random.default_rng(machine_seed))
        self.weather = ChicagoWeather(seed=self.config.seed % (2**31))
        self.plant = ChilledWaterPlant(self.weather)
        self.loop = CoolingLoop(rng=np.random.default_rng(loop_seed))
        self.valve = FlowRegulatingValve()
        if not self.config.theta.enabled:
            # Counterfactual: Theta never joined, so the impellers were
            # never upgraded and the setpoint never stepped.
            self.valve.set_setpoint(
                self.config.theta.addition_date, constants.FLOW_PRE_THETA_GPM
            )
        self.workload = WorkloadGenerator(
            rng=np.random.default_rng(workload_seed),
            production_start_epoch_s=self._start,
            production_end_epoch_s=self._end,
        )
        self.scheduler = MiraScheduler(
            self.workload,
            rng=np.random.default_rng(scheduler_seed),
            topology=self.machine.topology,
        )
        self._noise_rng = np.random.default_rng(noise_seed)

        if self.config.inject_failures:
            self.schedule: Optional[CmfSchedule] = CmfSchedule.generate(
                np.random.default_rng(cmf_seed), self._start, self._end
            )
            aftermath = AftermathProcess(self.machine.dependencies)
            aftermath_rng = np.random.default_rng(aftermath_seed)
            induced = aftermath.induced_failures(aftermath_rng, self.schedule.incidents)
            background = aftermath.background_failures(
                aftermath_rng, self._start, self._end
            )
            self.noncmf_failures: Tuple[NonCmfFailure, ...] = tuple(
                sorted(induced + background, key=lambda f: f.epoch_s)
            )
            self.ras_log = StormGenerator().build_ras_log(
                np.random.default_rng(storm_seed),
                self.schedule.incidents,
                self.noncmf_failures,
            )
        else:
            self.schedule = None
            self.noncmf_failures = ()
            self.ras_log = RasLog()

        self._excursions = self._generate_excursions(
            np.random.default_rng(excursion_seed)
        )
        self._airflow = self.machine.topology.airflow_factors()

    # -- pre-generated event streams ------------------------------------------------

    def _generate_excursions(self, rng: np.random.Generator) -> List[_Excursion]:
        cfg = self.config.ambient
        years = (self._end - self._start) / timeutil.YEAR_S
        count = int(rng.poisson(cfg.excursion_rate_per_year * years))
        excursions = []
        for _ in range(count):
            start = float(rng.uniform(self._start, self._end))
            duration_h = float(rng.uniform(cfg.excursion_min_h, cfg.excursion_max_h))
            excursions.append(
                _Excursion(
                    start_epoch_s=start,
                    end_epoch_s=start + duration_h * timeutil.HOUR_S,
                    magnitude_f=float(
                        rng.uniform(cfg.excursion_min_f, cfg.excursion_max_f)
                    ),
                )
            )
        excursions.sort(key=lambda e: e.start_epoch_s)
        return excursions

    def _excursion_delta_f(self, epoch_s: float) -> float:
        return sum(
            e.magnitude_f
            for e in self._excursions
            if e.start_epoch_s <= epoch_s < e.end_epoch_s
        )

    # -- Theta heat load ---------------------------------------------------------------

    def _theta_supply_excess_f(self, epoch_s: float) -> float:
        """Supply-temperature excess from Theta's early-testing heat load."""
        theta = self.config.theta
        if not theta.enabled:
            return 0.0
        added = timeutil.to_epoch(theta.addition_date)
        settled = timeutil.to_epoch(theta.settled_date)
        ramp_s = theta.ramp_days * timeutil.DAY_S
        if epoch_s < added:
            return 0.0
        if epoch_s < added + ramp_s:
            return theta.heat_excess_f * (epoch_s - added) / ramp_s
        if epoch_s < settled:
            return theta.heat_excess_f
        if epoch_s < settled + ramp_s:
            return theta.heat_excess_f * (1.0 - (epoch_s - settled) / ramp_s)
        return 0.0

    # -- the run ------------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the configured period and return all artifacts."""
        cfg = self.config
        grid = timeutil.time_grid(cfg.start, cfg.end, cfg.dt_s)
        database = EnvironmentalDatabase(capacity_hint=len(grid))

        # Failure bookkeeping.
        if self.schedule is not None:
            cmf_times, cmf_racks, _ = self.schedule.event_time_matrix()
            cmf_recoveries = np.array(
                [e.recovery_epoch_s for e in self.schedule.events]
            )
        else:
            cmf_times = np.empty(0)
            cmf_racks = np.empty(0, dtype=int)
            cmf_recoveries = np.empty(0)
        cmf_pointer = 0
        noncmf_pointer = 0
        down_until = np.zeros(constants.NUM_RACKS)
        blocked_by_failure = np.zeros(constants.NUM_RACKS, dtype=bool)

        # Precursor bookkeeping: per-rack next-event pointers.
        rack_event_times: List[np.ndarray] = []
        rack_event_condensation: List[np.ndarray] = []
        rack_event_severity: List[np.ndarray] = []
        if self.schedule is not None:
            condensation_all = np.array(
                [e.reason == "condensation_risk" for e in self.schedule.events]
            )
            severity_all = np.array([e.severity for e in self.schedule.events])
            for flat in range(constants.NUM_RACKS):
                mask = cmf_racks == flat
                rack_event_times.append(cmf_times[mask])
                rack_event_condensation.append(condensation_all[mask])
                rack_event_severity.append(severity_all[mask])
        rack_pointers = np.zeros(constants.NUM_RACKS, dtype=int)

        noise = cfg.noise
        ambient = cfg.ambient

        for t in grid:
            # 1. Failure firing and recovery -----------------------------------
            recovered = blocked_by_failure & (down_until <= t)
            if recovered.any():
                racks = tuple(int(i) for i in np.flatnonzero(recovered))
                self.scheduler.recover_racks(racks)
                blocked_by_failure[list(racks)] = False
            while cmf_pointer < len(cmf_times) and cmf_times[cmf_pointer] < t + cfg.dt_s:
                rack = int(cmf_racks[cmf_pointer])
                self.scheduler.fail_racks((rack,), float(cmf_times[cmf_pointer]))
                down_until[rack] = max(down_until[rack], cmf_recoveries[cmf_pointer])
                blocked_by_failure[rack] = True
                cmf_pointer += 1
            while (
                noncmf_pointer < len(self.noncmf_failures)
                and self.noncmf_failures[noncmf_pointer].epoch_s < t + cfg.dt_s
            ):
                failure = self.noncmf_failures[noncmf_pointer]
                rack = failure.rack_id.flat_index
                self.scheduler.fail_racks((rack,), failure.epoch_s)
                down_until[rack] = max(
                    down_until[rack], failure.epoch_s + constants.NONCMF_DEDUP_WINDOW_S
                )
                blocked_by_failure[rack] = True
                noncmf_pointer += 1
            powered = down_until <= t

            # 2. Scheduler ------------------------------------------------------
            state = self.scheduler.step(t, cfg.dt_s)
            utilization = np.where(powered, state.rack_utilization, 0.0)
            intensity = state.rack_intensity

            # 3. Power ----------------------------------------------------------
            ac_kw = self.machine.rack_ac_draw_kw(
                utilization, intensity, powered=powered
            )
            ac_kw = ac_kw * (
                1.0 + noise.power_noise * self._noise_rng.standard_normal(
                    constants.NUM_RACKS
                )
            )
            ac_kw = np.maximum(ac_kw, 0.0)

            # 4. Precursor factors ------------------------------------------------
            inlet_factor = np.ones(constants.NUM_RACKS)
            outlet_factor = np.ones(constants.NUM_RACKS)
            flow_factor = np.ones(constants.NUM_RACKS)
            humidity_factor = np.ones(constants.NUM_RACKS)
            if self.schedule is not None:
                for flat in range(constants.NUM_RACKS):
                    times = rack_event_times[flat]
                    ptr = rack_pointers[flat]
                    while ptr < len(times) and times[ptr] < t:
                        ptr += 1
                    rack_pointers[flat] = ptr
                    if ptr >= len(times):
                        continue
                    tau = times[ptr] - t
                    if tau > PrecursorSignature.WINDOW_S:
                        continue
                    severity = float(rack_event_severity[flat][ptr])
                    inlet_factor[flat] = PrecursorSignature.inlet_factor(tau, severity)
                    outlet_factor[flat] = PrecursorSignature.outlet_factor(tau, severity)
                    flow_factor[flat] = PrecursorSignature.flow_factor(tau, severity)
                    if rack_event_condensation[flat][ptr]:
                        humidity_factor[flat] = PrecursorSignature.humidity_factor(
                            tau, condensation_triggered=True, amplitude=severity
                        )

            # 5. Cooling ------------------------------------------------------------
            seasonal_trim = 1.0 + cfg.seasonal_flow_gain * (
                self.workload.seasonal_factor(t) - 1.0
            )
            total_flow = (
                self.valve.setpoint_gpm(t)
                * seasonal_trim
                * (1.0 + noise.total_flow_jitter * self._noise_rng.standard_normal())
            )
            flows = self.loop.rack_flows_gpm(
                max(total_flow, 1.0),
                solenoid_open=powered,
                flow_disturbance=flow_factor,
            )
            flows = flows * (
                1.0
                + noise.rack_flow_noise
                * self._noise_rng.standard_normal(constants.NUM_RACKS)
            )
            flows = np.maximum(flows, 0.0)

            supply_f = float(self.plant.supply_temperature_f(t)) + (
                self._theta_supply_excess_f(t)
            )
            inlet = self.loop.rack_inlet_temperatures_f(supply_f)
            inlet = inlet * inlet_factor + noise.inlet_noise_f * (
                self._noise_rng.standard_normal(constants.NUM_RACKS)
            )
            outlet = self.loop.rack_outlet_temperatures_f(inlet, ac_kw, flows)
            outlet = outlet * outlet_factor + noise.outlet_noise_f * (
                self._noise_rng.standard_normal(constants.NUM_RACKS)
            )
            outlet = np.maximum(outlet, inlet - 2.0)

            # 6. Ambient ----------------------------------------------------------------
            outdoor_rh = float(self.weather.relative_humidity(t))
            outdoor_f = float(self.weather.temperature_f(t))
            excursion = self._excursion_delta_f(t)
            dc_temp = (
                ambient.base_temp_f
                + ambient.outdoor_temp_coupling * (outdoor_f - 50.0)
                + ambient.blockage_temp_gain_f * (1.0 - self._airflow)
                + ambient.heat_coupling_f_per_kw
                * (ac_kw - ambient.nominal_rack_power_kw)
                + excursion
                + ambient.temp_noise_f
                * self._noise_rng.standard_normal(constants.NUM_RACKS)
            )
            base_rh = ambient.humidity_offset_rh + ambient.humidity_slope * outdoor_rh
            airflow_term = ambient.humidity_airflow_floor + (
                1.0 - ambient.humidity_airflow_floor
            ) * self._airflow
            dc_rh = base_rh * airflow_term * humidity_factor + (
                ambient.humidity_noise_rh
                * self._noise_rng.standard_normal(constants.NUM_RACKS)
            )
            dc_rh = np.clip(dc_rh, 5.0, 99.0)

            # 7. Store ---------------------------------------------------------------------
            database.append_snapshot(
                float(t),
                {
                    Channel.DC_TEMPERATURE: dc_temp,
                    Channel.DC_HUMIDITY: dc_rh,
                    Channel.FLOW: flows,
                    Channel.INLET_TEMPERATURE: inlet,
                    Channel.OUTLET_TEMPERATURE: outlet,
                    Channel.POWER: ac_kw,
                    Channel.UTILIZATION: utilization,
                },
            )

        database.compact()
        return SimulationResult(
            config=cfg,
            database=database,
            ras_log=self.ras_log,
            schedule=self.schedule,
            noncmf_failures=self.noncmf_failures,
            machine=self.machine,
            weather=self.weather,
            jobs_completed=self.scheduler.completed_count,
            jobs_killed=self.scheduler.killed_count,
        )
