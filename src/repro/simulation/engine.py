"""The discrete-time facility engine.

Each step wires the substrate models together in physical order:

1. the **scheduler** advances (jobs finish/start, maintenance and
   reservation windows open/close) and yields per-rack utilization and
   CPU intensity,
2. scheduled **failures** fire (CMF events shut racks down via the
   solenoid-close + power-off control actions; non-CMF failures take a
   rack down for about an hour) and downed racks recover,
3. the **power model** turns utilization/intensity into per-rack AC
   draws,
4. the **cooling plant and loop** produce per-rack flow and coolant
   temperatures (with the Theta heat-load excess and the pre-failure
   precursor signatures applied),
5. the **ambient model** produces per-rack data-center temperature and
   humidity from outdoor weather, airflow blockage, rack heat, and
   excursion events, and
6. the calibrated snapshot is appended to the **environmental
   database**.

The RAS log (raw storms plus non-CMF events) is generated from the
same failure schedule, so telemetry and log lines agree.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro import constants, timeutil
from repro.cooling.loops import CoolingLoop
from repro.cooling.plant import ChilledWaterPlant
from repro.cooling.valves import FlowRegulatingValve
from repro.facility.machine import Machine
from repro.failures.cmf import CmfSchedule, PrecursorSignature
from repro.failures.noncmf import AftermathProcess, NonCmfFailure
from repro.failures.storms import StormGenerator
from repro.faults import FaultInjector, FaultTruth
from repro.scheduler.scheduler import MiraScheduler
from repro.scheduler.workload import WorkloadGenerator
from repro.simulation.config import SimulationConfig
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.ras import RasLog
from repro.telemetry.records import Channel
from repro.weather.chicago import ChicagoWeather


@dataclasses.dataclass
class SimulationResult:
    """Everything a six-year run produces."""

    config: SimulationConfig
    database: EnvironmentalDatabase
    ras_log: RasLog
    schedule: Optional[CmfSchedule]
    noncmf_failures: Tuple[NonCmfFailure, ...]
    machine: Machine
    weather: ChicagoWeather
    jobs_completed: int
    jobs_killed: int
    #: Ground truth of injected sensor faults, or ``None`` when the
    #: run's telemetry is pristine (``config.faults is None``).
    fault_truth: Optional[FaultTruth] = None

    @property
    def start_epoch_s(self) -> float:
        return timeutil.to_epoch(self.config.start)

    @property
    def end_epoch_s(self) -> float:
        return timeutil.to_epoch(self.config.end)


@dataclasses.dataclass(frozen=True)
class _Excursion:
    """One facility ambient-temperature excursion."""

    start_epoch_s: float
    end_epoch_s: float
    magnitude_f: float


class FacilityEngine:
    """Builds and runs the full facility simulation.

    Args:
        config: Simulation configuration; all component randomness is
            spawned from ``config.seed`` so runs are reproducible.
    """

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config if config is not None else SimulationConfig()
        seed_seq = np.random.SeedSequence(self.config.seed)
        (
            machine_seed,
            loop_seed,
            workload_seed,
            scheduler_seed,
            cmf_seed,
            aftermath_seed,
            storm_seed,
            noise_seed,
            excursion_seed,
        ) = seed_seq.spawn(9)

        self._start = timeutil.to_epoch(self.config.start)
        self._end = timeutil.to_epoch(self.config.end)

        self.machine = Machine(rng=np.random.default_rng(machine_seed))
        self.weather = ChicagoWeather(seed=self.config.seed % (2**31))
        self.plant = ChilledWaterPlant(self.weather)
        self.loop = CoolingLoop(rng=np.random.default_rng(loop_seed))
        self.valve = FlowRegulatingValve()
        if not self.config.theta.enabled:
            # Counterfactual: Theta never joined, so the impellers were
            # never upgraded and the setpoint never stepped.
            self.valve.set_setpoint(
                self.config.theta.addition_date, constants.FLOW_PRE_THETA_GPM
            )
        self.workload = WorkloadGenerator(
            rng=np.random.default_rng(workload_seed),
            production_start_epoch_s=self._start,
            production_end_epoch_s=self._end,
        )
        self.scheduler = MiraScheduler(
            self.workload,
            rng=np.random.default_rng(scheduler_seed),
            topology=self.machine.topology,
        )
        self._noise_rng = np.random.default_rng(noise_seed)

        if self.config.inject_failures:
            self.schedule: Optional[CmfSchedule] = CmfSchedule.generate(
                np.random.default_rng(cmf_seed), self._start, self._end
            )
            aftermath = AftermathProcess(self.machine.dependencies)
            aftermath_rng = np.random.default_rng(aftermath_seed)
            induced = aftermath.induced_failures(aftermath_rng, self.schedule.incidents)
            background = aftermath.background_failures(
                aftermath_rng, self._start, self._end
            )
            self.noncmf_failures: Tuple[NonCmfFailure, ...] = tuple(
                sorted(induced + background, key=lambda f: f.epoch_s)
            )
            self.ras_log = StormGenerator().build_ras_log(
                np.random.default_rng(storm_seed),
                self.schedule.incidents,
                self.noncmf_failures,
            )
        else:
            self.schedule = None
            self.noncmf_failures = ()
            self.ras_log = RasLog()

        # The fault seed is spawned *after* the nine component seeds, so
        # children 0-8 — every RNG stream of the clean simulation — are
        # unchanged and a faults-off run stays byte-identical to
        # historical realizations.
        if self.config.faults is not None:
            (self._fault_seed,) = seed_seq.spawn(1)
        else:
            self._fault_seed = None

        self._excursions = self._generate_excursions(
            np.random.default_rng(excursion_seed)
        )
        self._airflow = self.machine.topology.airflow_factors()

    # -- pre-generated event streams ------------------------------------------------

    def _generate_excursions(self, rng: np.random.Generator) -> List[_Excursion]:
        cfg = self.config.ambient
        years = (self._end - self._start) / timeutil.YEAR_S
        count = int(rng.poisson(cfg.excursion_rate_per_year * years))
        excursions = []
        for _ in range(count):
            start = float(rng.uniform(self._start, self._end))
            duration_h = float(rng.uniform(cfg.excursion_min_h, cfg.excursion_max_h))
            excursions.append(
                _Excursion(
                    start_epoch_s=start,
                    end_epoch_s=start + duration_h * timeutil.HOUR_S,
                    magnitude_f=float(
                        rng.uniform(cfg.excursion_min_f, cfg.excursion_max_f)
                    ),
                )
            )
        excursions.sort(key=lambda e: e.start_epoch_s)
        return excursions

    def _excursion_delta_f(self, epoch_s: float) -> float:
        return sum(
            e.magnitude_f
            for e in self._excursions
            if e.start_epoch_s <= epoch_s < e.end_epoch_s
        )

    def _excursion_delta_grid_f(self, grid: np.ndarray) -> np.ndarray:
        """Excursion temperature deltas over a whole sorted time grid.

        A difference array over the grid replaces the per-step O(events)
        scan of :meth:`_excursion_delta_f`: each excursion contributes
        +magnitude at its first covered step and -magnitude at the
        first step past its end, and a cumulative sum recovers the
        per-step totals.
        """
        deltas = np.zeros(len(grid) + 1)
        for excursion in self._excursions:
            first = int(np.searchsorted(grid, excursion.start_epoch_s, side="left"))
            past = int(np.searchsorted(grid, excursion.end_epoch_s, side="left"))
            deltas[first] += excursion.magnitude_f
            deltas[past] -= excursion.magnitude_f
        return np.cumsum(deltas[:-1])

    # -- Theta heat load ---------------------------------------------------------------

    def _theta_supply_excess_f(self, epoch_s: float) -> float:
        """Supply-temperature excess from Theta's early-testing heat load."""
        theta = self.config.theta
        if not theta.enabled:
            return 0.0
        added = timeutil.to_epoch(theta.addition_date)
        settled = timeutil.to_epoch(theta.settled_date)
        ramp_s = theta.ramp_days * timeutil.DAY_S
        if epoch_s < added:
            return 0.0
        if epoch_s < added + ramp_s:
            return theta.heat_excess_f * (epoch_s - added) / ramp_s
        if epoch_s < settled:
            return theta.heat_excess_f
        if epoch_s < settled + ramp_s:
            return theta.heat_excess_f * (1.0 - (epoch_s - settled) / ramp_s)
        return 0.0

    def _theta_supply_excess_grid_f(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_theta_supply_excess_f` over a time grid."""
        theta = self.config.theta
        if not theta.enabled:
            return np.zeros(len(grid))
        added = timeutil.to_epoch(theta.addition_date)
        settled = timeutil.to_epoch(theta.settled_date)
        ramp_s = max(theta.ramp_days * timeutil.DAY_S, 1e-9)
        knots_t = np.array([added, added + ramp_s, settled, settled + ramp_s])
        knots_v = np.array([0.0, theta.heat_excess_f, theta.heat_excess_f, 0.0])
        return np.interp(grid, knots_t, knots_v, left=0.0, right=0.0)

    # -- precursor signatures -----------------------------------------------------------

    @staticmethod
    def _precursor_factors_block(
        times: np.ndarray,
        rack_events: Optional[List[Tuple[np.ndarray, np.ndarray, np.ndarray]]],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-rack precursor factors for a block of timestamps.

        For each rack, the precursor signature is driven by the *next*
        scheduled CMF event at or after each timestamp, provided it
        falls within :attr:`PrecursorSignature.WINDOW_S`.  A
        ``searchsorted`` next-event lookup replaces the per-step
        pointer walk of the scalar engine.

        Args:
            times: Sorted timestamps, shape ``(steps,)``.
            rack_events: Per-rack ``(event_times, severities,
                condensation_flags)`` tuples, or ``None`` when failure
                injection is disabled.

        Returns:
            ``(inlet, outlet, flow, humidity)`` factor matrices, each
            of shape ``(steps, racks)`` and defaulting to 1.0.
        """
        m = len(times)
        inlet = np.ones((m, constants.NUM_RACKS))
        outlet = np.ones((m, constants.NUM_RACKS))
        flow = np.ones((m, constants.NUM_RACKS))
        humidity = np.ones((m, constants.NUM_RACKS))
        if rack_events is None:
            return inlet, outlet, flow, humidity
        window_s = PrecursorSignature.WINDOW_S
        for flat, (event_times, severities, condensation) in enumerate(rack_events):
            if len(event_times) == 0 or times[0] > event_times[-1]:
                continue
            next_idx = np.searchsorted(event_times, times, side="left")
            clipped = np.minimum(next_idx, len(event_times) - 1)
            tau = event_times[clipped] - times
            active = (next_idx < len(event_times)) & (tau <= window_s)
            if not active.any():
                continue
            rows = np.flatnonzero(active)
            tau_active = tau[rows]
            severity = severities[clipped[rows]]
            inlet[rows, flat] = PrecursorSignature.inlet_factor(tau_active, severity)
            outlet[rows, flat] = PrecursorSignature.outlet_factor(tau_active, severity)
            flow[rows, flat] = PrecursorSignature.flow_factor(tau_active, severity)
            condensing = condensation[clipped[rows]]
            if condensing.any():
                crows = rows[condensing]
                humidity[crows, flat] = PrecursorSignature.humidity_factor(
                    tau[crows],
                    condensation_triggered=True,
                    amplitude=severities[clipped[crows]],
                )
        return inlet, outlet, flow, humidity

    # -- the run ------------------------------------------------------------------------

    #: Steps per vectorized telemetry chunk.  Large enough to amortize
    #: numpy call overhead, small enough that the per-chunk noise and
    #: factor matrices stay cache- and memory-friendly at 300 s cadence.
    CHUNK_STEPS = 2560

    def run(self) -> SimulationResult:
        """Execute the configured period and return all artifacts.

        The run is organized as *precompute + chunked vector steps*
        rather than one scalar pass per timestamp:

        1. **Driver tables** — every pure function of the timestamp
           (outdoor weather, plant supply temperature, valve setpoint,
           Theta excess, seasonal trim, arrival rates, excursion
           deltas) is evaluated once over the whole grid.
        2. **Sequential pass** — the stateful scheduler and the failure
           processes advance step by step (they must: job placement and
           rack outages feed back), writing per-rack utilization,
           intensity, and power state into preallocated
           ``(steps, racks)`` buffers.
        3. **Vector pass** — power, precursor factors, cooling, and
           ambient telemetry are computed over ``CHUNK_STEPS``-sized
           blocks with per-chunk batched noise draws, and bulk-ingested
           into the environmental database.
        """
        cfg = self.config
        grid = timeutil.time_grid(cfg.start, cfg.end, cfg.dt_s)
        num_steps = len(grid)
        num_racks = constants.NUM_RACKS
        database = EnvironmentalDatabase(capacity_hint=num_steps)

        # -- Phase 1: whole-grid driver tables ------------------------------
        outdoor_f, outdoor_rh = self.weather.conditions(grid)
        supply_f = np.asarray(
            self.plant.supply_temperature_f(grid, outdoor_f=outdoor_f)
        ) + self._theta_supply_excess_grid_f(grid)
        setpoint_gpm = np.asarray(self.valve.setpoint_gpm(grid))
        seasonal = np.asarray(self.workload.seasonal_factor(grid))
        seasonal_trim = 1.0 + cfg.seasonal_flow_gain * (seasonal - 1.0)
        arrival_rates = self.workload.arrival_rate_per_hour(grid, seasonal=seasonal)
        excursion_f = self._excursion_delta_grid_f(grid)
        arrivals_by_step = self.workload.pregenerate_arrivals(
            grid, cfg.dt_s, rates_per_hour=arrival_rates
        )

        # Failure bookkeeping.
        if self.schedule is not None:
            cmf_times, cmf_racks, _ = self.schedule.event_time_matrix()
            cmf_recoveries = np.array(
                [e.recovery_epoch_s for e in self.schedule.events]
            )
        else:
            cmf_times = np.empty(0)
            cmf_racks = np.empty(0, dtype=int)
            cmf_recoveries = np.empty(0)
        cmf_pointer = 0
        noncmf_pointer = 0
        down_until = np.zeros(num_racks)
        blocked_by_failure = np.zeros(num_racks, dtype=bool)

        # Per-rack precursor event tables for the vector pass.
        rack_events: Optional[List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = None
        if self.schedule is not None:
            condensation_all = np.array(
                [e.reason == "condensation_risk" for e in self.schedule.events]
            )
            severity_all = np.array([e.severity for e in self.schedule.events])
            rack_events = []
            for flat in range(num_racks):
                mask = cmf_racks == flat
                rack_events.append(
                    (cmf_times[mask], severity_all[mask], condensation_all[mask])
                )

        # -- Phase 2: sequential scheduler/failure pass ----------------------
        utilization = np.empty((num_steps, num_racks))
        intensity = np.empty((num_steps, num_racks))
        powered_mask = np.empty((num_steps, num_racks), dtype=bool)
        num_cmfs = len(cmf_times)
        num_noncmf = len(self.noncmf_failures)

        for index in range(num_steps):
            t = grid[index]
            # Failure firing and recovery.
            recovered = blocked_by_failure & (down_until <= t)
            if recovered.any():
                racks = tuple(int(i) for i in np.flatnonzero(recovered))
                self.scheduler.recover_racks(racks)
                blocked_by_failure[list(racks)] = False
            while cmf_pointer < num_cmfs and cmf_times[cmf_pointer] < t + cfg.dt_s:
                rack = int(cmf_racks[cmf_pointer])
                self.scheduler.fail_racks((rack,), float(cmf_times[cmf_pointer]))
                down_until[rack] = max(down_until[rack], cmf_recoveries[cmf_pointer])
                blocked_by_failure[rack] = True
                cmf_pointer += 1
            while (
                noncmf_pointer < num_noncmf
                and self.noncmf_failures[noncmf_pointer].epoch_s < t + cfg.dt_s
            ):
                failure = self.noncmf_failures[noncmf_pointer]
                rack = failure.rack_id.flat_index
                self.scheduler.fail_racks((rack,), failure.epoch_s)
                down_until[rack] = max(
                    down_until[rack], failure.epoch_s + constants.NONCMF_DEDUP_WINDOW_S
                )
                blocked_by_failure[rack] = True
                noncmf_pointer += 1
            powered = down_until <= t

            state = self.scheduler.step(
                t, cfg.dt_s, arrivals=arrivals_by_step[index]
            )
            utilization[index] = np.where(powered, state.rack_utilization, 0.0)
            intensity[index] = state.rack_intensity
            powered_mask[index] = powered

        # -- Phase 3: chunked vector telemetry -------------------------------
        noise = cfg.noise
        ambient = cfg.ambient
        airflow = self._airflow
        rng = self._noise_rng
        airflow_term = ambient.humidity_airflow_floor + (
            1.0 - ambient.humidity_airflow_floor
        ) * airflow

        for start in range(0, num_steps, self.CHUNK_STEPS):
            end = min(start + self.CHUNK_STEPS, num_steps)
            m = end - start
            chunk_times = grid[start:end]
            powered = powered_mask[start:end]

            # Power, with batched per-chunk noise.
            ac_kw = self.machine.rack_ac_draw_kw(
                utilization[start:end], intensity[start:end], powered=powered
            )
            ac_kw = ac_kw * (
                1.0 + noise.power_noise * rng.standard_normal((m, num_racks))
            )
            ac_kw = np.maximum(ac_kw, 0.0)

            # Precursor factors over the block.
            (
                inlet_factor,
                outlet_factor,
                flow_factor,
                humidity_factor,
            ) = self._precursor_factors_block(chunk_times, rack_events)

            # Cooling.
            total_flow = (
                setpoint_gpm[start:end]
                * seasonal_trim[start:end]
                * (1.0 + noise.total_flow_jitter * rng.standard_normal(m))
            )
            total_flow = np.maximum(total_flow, 1.0)
            flows = self.loop.rack_flows_gpm_block(
                total_flow, solenoid_open=powered, flow_disturbance=flow_factor
            )
            flows = flows * (
                1.0 + noise.rack_flow_noise * rng.standard_normal((m, num_racks))
            )
            flows = np.maximum(flows, 0.0)

            inlet = self.loop.rack_inlet_temperatures_f(supply_f[start:end, None])
            inlet = inlet * inlet_factor + noise.inlet_noise_f * rng.standard_normal(
                (m, num_racks)
            )
            outlet = self.loop.rack_outlet_temperatures_f(inlet, ac_kw, flows)
            outlet = outlet * outlet_factor + noise.outlet_noise_f * (
                rng.standard_normal((m, num_racks))
            )
            outlet = np.maximum(outlet, inlet - 2.0)

            # Ambient.
            dc_temp = (
                ambient.base_temp_f
                + ambient.outdoor_temp_coupling * (outdoor_f[start:end, None] - 50.0)
                + ambient.blockage_temp_gain_f * (1.0 - airflow)
                + ambient.heat_coupling_f_per_kw
                * (ac_kw - ambient.nominal_rack_power_kw)
                + excursion_f[start:end, None]
                + ambient.temp_noise_f * rng.standard_normal((m, num_racks))
            )
            base_rh = (
                ambient.humidity_offset_rh
                + ambient.humidity_slope * outdoor_rh[start:end, None]
            )
            dc_rh = base_rh * airflow_term * humidity_factor + (
                ambient.humidity_noise_rh * rng.standard_normal((m, num_racks))
            )
            dc_rh = np.clip(dc_rh, 5.0, 99.0)

            database.append_block(
                chunk_times,
                {
                    Channel.DC_TEMPERATURE: dc_temp,
                    Channel.DC_HUMIDITY: dc_rh,
                    Channel.FLOW: flows,
                    Channel.INLET_TEMPERATURE: inlet,
                    Channel.OUTLET_TEMPERATURE: outlet,
                    Channel.POWER: ac_kw,
                    Channel.UTILIZATION: utilization[start:end],
                },
            )

        database.compact()

        # -- optional post-run sensor-fault injection ------------------------
        fault_truth: Optional[FaultTruth] = None
        if cfg.faults is not None:
            injector = FaultInjector(cfg.faults, self._fault_seed)
            events = [
                (float(t), int(r)) for t, r in zip(cmf_times, cmf_racks)
            ]
            database, fault_truth = injector.apply(
                database, cfg.dt_s, cmf_events=events
            )

        return SimulationResult(
            config=cfg,
            database=database,
            ras_log=self.ras_log,
            schedule=self.schedule,
            noncmf_failures=self.noncmf_failures,
            machine=self.machine,
            weather=self.weather,
            jobs_completed=self.scheduler.completed_count,
            jobs_killed=self.scheduler.killed_count,
            fault_truth=fault_truth,
        )
