"""Proactive mitigation: is checkpoint-on-alert worth it?

The paper's opportunity (Sections VI-B/VI-D): a predicted CMF buys
time to checkpoint active jobs — but "any proactive measure ... is
likely to incur high overhead since a CMF impacts the whole rack",
so false positives must be priced in.  This module runs exactly that
trade study as a cost/benefit ledger in compute core-hours:

* **without mitigation**, a CMF kills every job on the rack and all
  work since each job's start is lost;
* **with checkpoint-on-alert**, jobs lose only the work since the
  checkpoint plus the checkpoint overhead;
* **every alert** (true or false) costs the checkpoint overhead on
  that rack.

:func:`evaluate_mitigation` replays a simulation's telemetry through
the streaming predictor, applies an alert policy, and fills the
ledger — the ablation benchmark sweeps the policy threshold to find
the operating point.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants, timeutil
from repro.facility.topology import RackId
from repro.monitoring.alerts import Alert, AlertEngine, AlertLog, AlertPolicy, MatchReport
from repro.monitoring.online import OnlineCmfPredictor
from repro.simulation.engine import SimulationResult
from repro.simulation.windows import WindowSynthesizer
from repro.telemetry.records import Channel


@dataclasses.dataclass(frozen=True)
class CheckpointPolicy:
    """Cost model for checkpoint-on-alert.

    Attributes:
        checkpoint_overhead_node_h: Node-hours consumed by taking one
            rack-level checkpoint (I/O stall across 1,024 nodes).
        mean_inflight_loss_h: Expected hours of work lost per busy
            node when a rack dies *without* a recent checkpoint
            (half the mean job runtime).
        residual_loss_h: Hours of work lost per busy node even *with*
            a checkpoint (progress since the checkpoint was taken).
    """

    checkpoint_overhead_node_h: float = 40.0
    mean_inflight_loss_h: float = 3.0
    residual_loss_h: float = 0.25

    def __post_init__(self) -> None:
        if self.checkpoint_overhead_node_h < 0:
            raise ValueError("overhead cannot be negative")
        if self.residual_loss_h > self.mean_inflight_loss_h:
            raise ValueError("residual loss cannot exceed in-flight loss")


@dataclasses.dataclass(frozen=True)
class MitigationLedger:
    """The core-hours cost/benefit outcome of one policy."""

    policy: CheckpointPolicy
    alert_policy: AlertPolicy
    match: MatchReport
    #: Core-hours lost to CMFs with no mitigation at all.
    baseline_loss_core_h: float
    #: Core-hours lost with checkpoint-on-alert in force.
    mitigated_loss_core_h: float
    #: Core-hours spent taking checkpoints (true + false alerts).
    checkpoint_cost_core_h: float

    @property
    def net_saving_core_h(self) -> float:
        """Positive when the mitigation pays for itself."""
        return (
            self.baseline_loss_core_h
            - self.mitigated_loss_core_h
            - self.checkpoint_cost_core_h
        )

    @property
    def worthwhile(self) -> bool:
        return self.net_saving_core_h > 0


#: Cores per node on Mira.
_CORES = constants.COMPUTE_CORES_PER_NODE

#: Nodes per rack.
_NODES = constants.NODES_PER_RACK


def _rack_utilization_before(
    result: SimulationResult, rack_id: RackId, epoch_s: float
) -> float:
    """The rack's utilization just before a moment (for loss sizing)."""
    series = result.database.rack_channel(Channel.UTILIZATION, rack_id)
    index = int(np.searchsorted(series.epoch_s, epoch_s)) - 1
    window = series.values[max(0, index - 6) : max(1, index + 1)]
    finite = window[np.isfinite(window)]
    return float(finite.mean()) if finite.size else 0.0


def evaluate_mitigation(
    result: SimulationResult,
    predictor: OnlineCmfPredictor,
    alert_policy: Optional[AlertPolicy] = None,
    checkpoint_policy: Optional[CheckpointPolicy] = None,
    synthesizer: Optional[WindowSynthesizer] = None,
    negative_windows_per_positive: float = 2.0,
    max_positive_windows: Optional[int] = None,
    seed: int = 31,
) -> MitigationLedger:
    """Replay telemetry through the predictor and fill the ledger.

    The replay covers every failure's lead-up window (where detections
    can happen) plus a proportional sample of no-failure windows
    (where false alerts can happen); the false-alert rate is then
    extrapolated to the full observation period.

    Args:
        max_positive_windows: Optionally cap the replayed failures (a
            uniform subsample) to bound the cost on long datasets; the
            ledger then refers to the sampled population.

    Raises:
        ValueError: if the result carries no failure schedule.
    """
    if result.schedule is None:
        raise ValueError("simulation was run without failure injection")
    alert_policy = alert_policy if alert_policy is not None else AlertPolicy()
    checkpoint_policy = (
        checkpoint_policy if checkpoint_policy is not None else CheckpointPolicy()
    )
    synthesizer = (
        synthesizer if synthesizer is not None else WindowSynthesizer(result, seed=seed)
    )

    positives = synthesizer.positive_windows()
    if max_positive_windows is not None and len(positives) > max_positive_windows:
        stride = len(positives) / max_positive_windows
        positives = [
            positives[int(i * stride)] for i in range(max_positive_windows)
        ]
    negatives = synthesizer.negative_windows(
        int(round(negative_windows_per_positive * len(positives)))
    )

    engine = AlertEngine(alert_policy)
    log = AlertLog()
    for window in positives + negatives:
        predictor.reset(window.rack_id)
        for prediction in predictor.consume_window(window):
            alert = engine.process(prediction)
            if alert is not None:
                log.record(alert)
        predictor.reset(window.rack_id)

    replayed_ends = {window.end_epoch_s for window in positives}
    eligible = [
        e
        for e in result.schedule.events
        if e.epoch_s >= result.start_epoch_s + synthesizer.history_s
        and e.epoch_s in replayed_ends
    ]
    window_days = synthesizer.history_s / timeutil.DAY_S
    observation_rack_days = window_days * (len(positives) + len(negatives))
    match = log.match(eligible, observation_rack_days=observation_rack_days)

    # -- the ledger -------------------------------------------------------------
    baseline = 0.0
    mitigated = 0.0
    detected_count = match.detected
    for index, failure in enumerate(eligible):
        utilization = _rack_utilization_before(result, failure.rack_id, failure.epoch_s)
        busy_nodes = utilization * _NODES
        baseline += busy_nodes * checkpoint_policy.mean_inflight_loss_h * _CORES
    # Detected failures lose only the residual; missed ones the full loss.
    if eligible:
        mean_busy = baseline / (
            len(eligible) * checkpoint_policy.mean_inflight_loss_h * _CORES
        )
    else:
        mean_busy = 0.0
    mitigated = (
        (len(eligible) - detected_count)
        * mean_busy
        * checkpoint_policy.mean_inflight_loss_h
        * _CORES
        + detected_count * mean_busy * checkpoint_policy.residual_loss_h * _CORES
    )
    checkpoint_cost = (
        len(log) * checkpoint_policy.checkpoint_overhead_node_h * _CORES
    )
    return MitigationLedger(
        policy=checkpoint_policy,
        alert_policy=alert_policy,
        match=match,
        baseline_loss_core_h=baseline,
        mitigated_loss_core_h=mitigated,
        checkpoint_cost_core_h=checkpoint_cost,
    )


def sweep_thresholds(
    result: SimulationResult,
    predictor: OnlineCmfPredictor,
    thresholds: Sequence[float] = (0.5, 0.7, 0.8, 0.9, 0.95),
    checkpoint_policy: Optional[CheckpointPolicy] = None,
    max_positive_windows: Optional[int] = None,
    seed: int = 31,
) -> List[MitigationLedger]:
    """The threshold trade study (one shared window synthesis)."""
    synthesizer = WindowSynthesizer(result, seed=seed)
    ledgers = []
    for threshold in thresholds:
        ledgers.append(
            evaluate_mitigation(
                result,
                predictor,
                alert_policy=AlertPolicy(threshold=threshold),
                checkpoint_policy=checkpoint_policy,
                synthesizer=synthesizer,
                max_positive_windows=max_positive_windows,
                seed=seed,
            )
        )
    return ledgers
