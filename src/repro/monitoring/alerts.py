"""Alert policies and alert/failure matching.

A probability stream is not an operational tool until it is turned
into *alerts* with a controlled false-alarm rate.  The policy here is
the standard one: alert when the probability exceeds a threshold for
``persistence`` consecutive samples, then hold off re-alerting on the
same rack for a cooldown period.

:meth:`AlertLog.match` scores an alert stream against the true failure
schedule: achieved lead times, detection recall, and the false-alarm
rate per rack-day — the quantities a facility operator would demand
before wiring alerts to anything expensive.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import timeutil
from repro.facility.topology import RackId
from repro.failures.cmf import CmfEvent
from repro.monitoring.online import Prediction


@dataclasses.dataclass(frozen=True)
class Alert:
    """One raised alert."""

    epoch_s: float
    rack_id: RackId
    probability: float


@dataclasses.dataclass(frozen=True)
class AlertPolicy:
    """Threshold + persistence + cooldown alerting.

    Attributes:
        threshold: Probability above which a sample counts as a hit.
        persistence: Consecutive hits required before alerting.
        cooldown_s: Minimum spacing between alerts on one rack.
    """

    threshold: float = 0.9
    persistence: int = 4
    cooldown_s: float = 2 * timeutil.HOUR_S

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {self.threshold}")
        if self.persistence < 1:
            raise ValueError("persistence must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown cannot be negative")


class AlertEngine:
    """Applies an :class:`AlertPolicy` to a prediction stream."""

    def __init__(self, policy: Optional[AlertPolicy] = None) -> None:
        self.policy = policy if policy is not None else AlertPolicy()
        self._streak: Dict[RackId, int] = {}
        self._last_alert: Dict[RackId, float] = {}

    def process(self, prediction: Prediction) -> Optional[Alert]:
        """Feed one prediction; returns an alert when the policy fires."""
        rack = prediction.rack_id
        if prediction.probability >= self.policy.threshold:
            self._streak[rack] = self._streak.get(rack, 0) + 1
        else:
            self._streak[rack] = 0
            return None
        if self._streak[rack] < self.policy.persistence:
            return None
        last = self._last_alert.get(rack)
        if last is not None and prediction.epoch_s - last < self.policy.cooldown_s:
            return None
        self._last_alert[rack] = prediction.epoch_s
        return Alert(
            epoch_s=prediction.epoch_s,
            rack_id=rack,
            probability=prediction.probability,
        )

    def process_many(self, predictions: Sequence[Prediction]) -> List[Alert]:
        """Feed predictions in order; returns the alerts that fired.

        Identical to calling :meth:`process` per prediction — the
        streak/cooldown state machine is inherently sequential per
        rack, so this is a convenience for chunked consumers, not a
        semantic change.
        """
        alerts = []
        for prediction in predictions:
            alert = self.process(prediction)
            if alert is not None:
                alerts.append(alert)
        return alerts

    # -- durability ---------------------------------------------------------------

    def get_state(self) -> Dict[str, Dict]:
        """A picklable copy of the streak/cooldown state machine."""
        return {
            "streak": dict(self._streak),
            "last_alert": dict(self._last_alert),
        }

    def set_state(self, state: Dict[str, Dict]) -> None:
        """Restore a :meth:`get_state` copy."""
        self._streak = dict(state["streak"])
        self._last_alert = dict(state["last_alert"])


@dataclasses.dataclass(frozen=True)
class MatchReport:
    """How an alert stream lines up with the true failures."""

    detected: int
    missed: int
    false_alerts: int
    lead_times_s: Tuple[float, ...]
    observation_rack_days: float

    @property
    def recall(self) -> float:
        total = self.detected + self.missed
        return self.detected / total if total else 0.0

    @property
    def median_lead_h(self) -> float:
        if not self.lead_times_s:
            return 0.0
        return float(np.median(self.lead_times_s) / timeutil.HOUR_S)

    @property
    def false_alerts_per_rack_day(self) -> float:
        if self.observation_rack_days <= 0:
            return 0.0
        return self.false_alerts / self.observation_rack_days


class AlertLog:
    """An accumulating record of raised alerts."""

    def __init__(self) -> None:
        self._alerts: List[Alert] = []

    def record(self, alert: Alert) -> None:
        self._alerts.append(alert)

    def restore(self, alerts: Sequence[Alert]) -> None:
        """Replace the log's contents (recovery from a snapshot)."""
        self._alerts = list(alerts)

    @property
    def alerts(self) -> Tuple[Alert, ...]:
        return tuple(self._alerts)

    def __len__(self) -> int:
        return len(self._alerts)

    def match(
        self,
        failures: Sequence[CmfEvent],
        horizon_s: float = 8 * timeutil.HOUR_S,
        observation_rack_days: float = 0.0,
    ) -> MatchReport:
        """Score the alerts against the true failure schedule.

        A failure is *detected* when any alert fired on its rack
        within ``horizon_s`` before it; the earliest such alert
        defines the achieved lead time.  An alert is *false* when it
        lies within the horizon of no failure on its rack (repeat
        alerts inside one lead-up are neither detections nor false —
        they are re-confirmations and only cost checkpoint overhead).
        """
        matched_failures: Dict[int, float] = {}
        justified_alerts: set = set()
        for index, failure in enumerate(failures):
            best: Optional[float] = None
            for alert_index, alert in enumerate(self._alerts):
                if alert.rack_id != failure.rack_id:
                    continue
                lead = failure.epoch_s - alert.epoch_s
                if 0.0 <= lead <= horizon_s:
                    justified_alerts.add(alert_index)
                    if best is None or lead > best:
                        best = lead
            if best is not None:
                matched_failures[index] = best
        false_alerts = len(self._alerts) - len(justified_alerts)
        return MatchReport(
            detected=len(matched_failures),
            missed=len(failures) - len(matched_failures),
            false_alerts=false_alerts,
            lead_times_s=tuple(sorted(matched_failures.values())),
            observation_rack_days=observation_rack_days,
        )
