"""CMF localization: predicting *which rack* will fail.

The paper (Section VI-B limitations): "operationally it will be even
more useful to have a predictor which even predicts the location of an
impending CMF from the overall coolant telemetry of the datacenter."

This module implements that predictor.  At any instant the per-rack
streaming model scores all 48 racks; the localizer turns the score
vector into a ranked suspicion list and is evaluated with the natural
metrics for the task:

* **top-k accuracy** — for lead-up snapshots, how often the failing
  rack appears among the k most-suspicious racks,
* **mean reciprocal rank** of the true rack,
* the **false-suspicion rate** — how often a healthy floor produces a
  rack whose score clears the alert bar.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants, timeutil
from repro.core.prediction import window_features
from repro.facility.topology import RackId
from repro.ml.train import TrainResult
from repro.simulation.windows import LeadupWindow


@dataclasses.dataclass(frozen=True)
class SuspicionRanking:
    """All racks ranked by failure probability at one instant."""

    epoch_s: float
    #: (rack, probability) pairs, most suspicious first.
    ranked: Tuple[Tuple[RackId, float], ...]

    def rank_of(self, rack_id: RackId) -> int:
        """1-based rank of a rack (49 if absent)."""
        for position, (rack, _) in enumerate(self.ranked, start=1):
            if rack == rack_id:
                return position
        return constants.NUM_RACKS + 1

    def top(self, k: int) -> Tuple[RackId, ...]:
        return tuple(rack for rack, _ in self.ranked[:k])

    @property
    def top_probability(self) -> float:
        return self.ranked[0][1] if self.ranked else 0.0


class CmfLocalizer:
    """Ranks racks by failure suspicion from per-rack change features.

    Args:
        model: A trained window classifier (the Fig 13 model or the
            pooled online model) — its probabilities are the rack
            scores.
    """

    def __init__(self, model: TrainResult) -> None:
        self.model = model

    def rank_windows(
        self, windows_by_rack: Dict[RackId, LeadupWindow], lead_h: float
    ) -> SuspicionRanking:
        """Score a floor snapshot given per-rack history windows.

        Each rack's window must end at the same evaluation instant.

        Raises:
            ValueError: if no windows are given.
        """
        if not windows_by_rack:
            raise ValueError("no rack windows supplied")
        racks = list(windows_by_rack)
        features = np.vstack(
            [window_features(windows_by_rack[r], lead_h) for r in racks]
        )
        probabilities = self.model.predict_proba(features)
        order = np.argsort(-probabilities)
        epoch = next(iter(windows_by_rack.values())).end_epoch_s
        return SuspicionRanking(
            epoch_s=epoch,
            ranked=tuple((racks[i], float(probabilities[i])) for i in order),
        )


@dataclasses.dataclass(frozen=True)
class LocalizationReport:
    """Evaluation of the localizer over many failure snapshots."""

    lead_h: float
    snapshots: int
    top1_accuracy: float
    top3_accuracy: float
    mean_reciprocal_rank: float
    #: Fraction of healthy-floor snapshots whose top score clears the
    #: alert threshold (spurious suspicion).
    false_suspicion_rate: float

    def as_row(self) -> str:
        return (
            f"lead={self.lead_h:.1f}h top1={self.top1_accuracy:.3f} "
            f"top3={self.top3_accuracy:.3f} mrr={self.mean_reciprocal_rank:.3f} "
            f"false_suspicion={self.false_suspicion_rate:.3f} n={self.snapshots}"
        )


def evaluate_localization(
    localizer: CmfLocalizer,
    positive_windows: Sequence[LeadupWindow],
    negative_windows: Sequence[LeadupWindow],
    lead_h: float = 2.0,
    alert_threshold: float = 0.9,
    floor_size: int = 12,
    seed: int = 7,
) -> LocalizationReport:
    """Monte-Carlo evaluation over synthetic floor snapshots.

    Each *failure snapshot* places one failing rack's lead-up window
    among ``floor_size - 1`` healthy racks' windows (distinct racks,
    drawn from the negative pool); the localizer must single out the
    failing rack.  *Healthy snapshots* contain only negative windows
    and measure spurious suspicion.

    Raises:
        ValueError: if the pools are too small for the floor size.
    """
    if len(negative_windows) < floor_size:
        raise ValueError("not enough negative windows for the floor size")
    if not positive_windows:
        raise ValueError("no positive windows to evaluate")
    rng = np.random.default_rng(seed)
    negatives_by_rack: Dict[RackId, List[LeadupWindow]] = {}
    for window in negative_windows:
        negatives_by_rack.setdefault(window.rack_id, []).append(window)

    def healthy_floor(exclude: Optional[RackId]) -> Dict[RackId, LeadupWindow]:
        available = [r for r in negatives_by_rack if r != exclude]
        rng.shuffle(available)
        floor: Dict[RackId, LeadupWindow] = {}
        for rack in available[: floor_size - (1 if exclude is not None else 0)]:
            pool = negatives_by_rack[rack]
            floor[rack] = pool[int(rng.integers(len(pool)))]
        return floor

    ranks: List[int] = []
    for window in positive_windows:
        floor = healthy_floor(exclude=window.rack_id)
        floor[window.rack_id] = window
        ranking = localizer.rank_windows(floor, lead_h)
        ranks.append(ranking.rank_of(window.rack_id))

    false_suspicions = 0
    healthy_trials = max(10, len(positive_windows) // 2)
    for _ in range(healthy_trials):
        floor = healthy_floor(exclude=None)
        if len(floor) < 2:
            continue
        ranking = localizer.rank_windows(floor, lead_h)
        false_suspicions += ranking.top_probability >= alert_threshold

    rank_array = np.array(ranks, dtype="float64")
    return LocalizationReport(
        lead_h=lead_h,
        snapshots=len(ranks),
        top1_accuracy=float(np.mean(rank_array == 1)),
        top3_accuracy=float(np.mean(rank_array <= 3)),
        mean_reciprocal_rank=float(np.mean(1.0 / rank_array)),
        false_suspicion_rate=false_suspicions / healthy_trials,
    )
