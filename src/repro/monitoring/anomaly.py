"""Classical change detection: EWMA residuals and CUSUM.

Section VI-D's argument — "not only the level of cooling metrics, but
more importantly the change in their values are key features" — makes
the CUSUM statistic the natural non-ML baseline: it accumulates
deviations of a channel from its running mean and alarms when the
accumulation escapes a band, detecting *sustained drifts* that a fixed
level threshold misses.  :class:`CusumDetector` tracks every predictor
channel per rack; its alarms can be compared head-to-head with the
MLP's (see the ablation example).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.facility.topology import RackId
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel


@dataclasses.dataclass(frozen=True)
class CusumConfig:
    """CUSUM parameters (in units of the channel's running sigma).

    Attributes:
        drift: The slack ``k``: deviations below this (in sigmas) do
            not accumulate.  Standard practice is half the shift one
            wants to detect.
        decision: The decision interval ``h``: alarm when either
            accumulator exceeds it (in sigmas).
        ewma_alpha: Smoothing factor of the running mean/variance
            estimates.
        warmup_samples: Samples per rack before alarms may fire
            (running statistics need to settle).
    """

    drift: float = 0.5
    decision: float = 6.0
    ewma_alpha: float = 0.02
    warmup_samples: int = 24

    def __post_init__(self) -> None:
        if self.drift < 0 or self.decision <= 0:
            raise ValueError("drift must be >= 0 and decision > 0")
        if not 0.0 < self.ewma_alpha < 1.0:
            raise ValueError("ewma_alpha must be in (0, 1)")


@dataclasses.dataclass
class _ChannelState:
    mean: float = 0.0
    variance: float = 1.0
    positive_sum: float = 0.0
    negative_sum: float = 0.0
    samples: int = 0


@dataclasses.dataclass(frozen=True)
class CusumAlarm:
    """One CUSUM alarm."""

    epoch_s: float
    rack_id: RackId
    channel: Channel
    statistic: float


class CusumDetector:
    """Per-rack, per-channel two-sided CUSUM over streaming telemetry.

    State lives in dense ``(racks, channels)`` arrays so whole
    telemetry chunks advance the recurrence with one vectorized step
    per timestep (:meth:`consume_block`); :meth:`consume` runs the
    identical arithmetic on single cells, so the two paths produce the
    same alarms bit for bit.
    """

    def __init__(self, config: Optional[CusumConfig] = None) -> None:
        self.config = config if config is not None else CusumConfig()
        self._racks = 0
        self._allocate(0)

    def _allocate(self, racks: int) -> None:
        shape = (racks, len(PREDICTOR_CHANNELS))
        self._mean = np.zeros(shape)
        self._variance = np.zeros(shape)
        self._positive = np.zeros(shape)
        self._negative = np.zeros(shape)
        self._samples = np.zeros(shape, dtype="int64")
        self._active = np.zeros(shape, dtype=bool)
        self._racks = racks

    def _ensure_racks(self, racks: int) -> None:
        if racks <= self._racks:
            return
        old = (
            self._mean,
            self._variance,
            self._positive,
            self._negative,
            self._samples,
            self._active,
        )
        size = self._racks
        self._allocate(racks)
        for new, previous in zip(
            (
                self._mean,
                self._variance,
                self._positive,
                self._negative,
                self._samples,
                self._active,
            ),
            old,
        ):
            new[:size] = previous

    @property
    def _state(self) -> Dict[Tuple[RackId, Channel], _ChannelState]:
        """Initialized cells as the historical dict view (tests only)."""
        state = {}
        for rack_index, channel_index in np.argwhere(self._active):
            key = (
                RackId.from_flat_index(int(rack_index)),
                PREDICTOR_CHANNELS[channel_index],
            )
            state[key] = _ChannelState(
                mean=float(self._mean[rack_index, channel_index]),
                variance=float(self._variance[rack_index, channel_index]),
                positive_sum=float(self._positive[rack_index, channel_index]),
                negative_sum=float(self._negative[rack_index, channel_index]),
                samples=int(self._samples[rack_index, channel_index]),
            )
        return state

    def _update_channel(
        self, rack_index: int, channel_index: int, value: float
    ) -> Optional[float]:
        """Update one cell; return the alarm statistic if tripped."""
        cfg = self.config
        cell = (rack_index, channel_index)
        if not self._active[cell]:
            # Start the variance estimate *high* (5 % of the level) so
            # early z-scores are conservative; the EWMA converges down
            # to the channel's true noise during warmup.
            self._mean[cell] = value
            self._variance[cell] = max((0.05 * abs(value)) ** 2, 1e-6)
            self._positive[cell] = 0.0
            self._negative[cell] = 0.0
            self._samples[cell] = 0
            self._active[cell] = True
        self._samples[cell] += 1
        mean = float(self._mean[cell])
        variance = float(self._variance[cell])
        sigma = max(np.sqrt(variance), 1e-9)
        z = (value - mean) / sigma
        # Update the running statistics *after* scoring the sample.
        delta = value - mean
        self._mean[cell] = mean + cfg.ewma_alpha * delta
        self._variance[cell] = (1 - cfg.ewma_alpha) * (
            variance + cfg.ewma_alpha * delta * delta
        )
        if self._samples[cell] <= cfg.warmup_samples:
            return None
        positive = max(0.0, float(self._positive[cell]) + z - cfg.drift)
        negative = max(0.0, float(self._negative[cell]) - z - cfg.drift)
        statistic = max(positive, negative)
        if statistic > cfg.decision:
            self._positive[cell] = 0.0
            self._negative[cell] = 0.0
            return statistic
        self._positive[cell] = positive
        self._negative[cell] = negative
        return None

    def consume(
        self,
        epoch_s: float,
        rack_id: RackId,
        channel_values: Dict[Channel, float],
    ) -> Tuple[CusumAlarm, ...]:
        """Feed one telemetry sample; returns any alarms raised."""
        rack_index = rack_id.flat_index
        self._ensure_racks(rack_index + 1)
        alarms = []
        for channel_index, channel in enumerate(PREDICTOR_CHANNELS):
            if channel not in channel_values:
                continue
            statistic = self._update_channel(
                rack_index, channel_index, float(channel_values[channel])
            )
            if statistic is not None:
                alarms.append(
                    CusumAlarm(
                        epoch_s=epoch_s,
                        rack_id=rack_id,
                        channel=channel,
                        statistic=statistic,
                    )
                )
        return tuple(alarms)

    def consume_block(
        self,
        epoch_s: np.ndarray,
        values: "Dict[Channel, np.ndarray]",
    ) -> Tuple[CusumAlarm, ...]:
        """Advance every rack x channel recurrence over a whole block.

        Equivalent to calling :meth:`consume` per timestep and rack
        with each rack's *finite* channel values (non-finite cells do
        not advance their recurrence, exactly like an absent dict key).
        The recurrence is sequential in time but vectorized across all
        ``racks x channels`` cells per step; alarms come back in the
        per-sample order (time-major, then rack, then channel).

        Args:
            epoch_s: ``(timesteps,)`` sample timestamps.
            values: Channel -> ``(timesteps, racks)`` block; channels
                outside ``PREDICTOR_CHANNELS`` are ignored.
        """
        present = [ch for ch in PREDICTOR_CHANNELS if ch in values]
        if not present:
            return ()
        if len(present) < len(PREDICTOR_CHANNELS):
            # Partial channel sets take the scalar path (state columns
            # must not be advanced for absent channels).
            alarms: list = []
            racks = next(iter(values.values())).shape[1]
            for t, epoch in enumerate(epoch_s):
                for rack_index in range(racks):
                    sample = {
                        ch: float(values[ch][t, rack_index]) for ch in present
                    }
                    sample = {
                        ch: v for ch, v in sample.items() if np.isfinite(v)
                    }
                    if sample:
                        alarms.extend(
                            self.consume(
                                float(epoch),
                                RackId.from_flat_index(rack_index),
                                sample,
                            )
                        )
            return tuple(alarms)

        cube = np.stack([values[ch] for ch in PREDICTOR_CHANNELS], axis=2)
        steps, racks, _ = cube.shape
        self._ensure_racks(racks)
        finite = np.isfinite(cube)
        cfg = self.config
        alpha, drift, decision = cfg.ewma_alpha, cfg.drift, cfg.decision
        mean = self._mean[:racks]
        variance = self._variance[:racks]
        positive = self._positive[:racks]
        negative = self._negative[:racks]
        samples = self._samples[:racks]
        active = self._active[:racks]
        rack_ids = [RackId.from_flat_index(r) for r in range(racks)]
        alarms = []
        for t in range(steps):
            observed = finite[t]
            if not observed.any():
                continue
            value = cube[t]
            fresh = observed & ~active
            if fresh.any():
                mean[fresh] = value[fresh]
                variance[fresh] = np.maximum(
                    (0.05 * np.abs(value[fresh])) ** 2, 1e-6
                )
                positive[fresh] = 0.0
                negative[fresh] = 0.0
                samples[fresh] = 0
                active[fresh] = True
            samples += observed
            sigma = np.maximum(np.sqrt(variance), 1e-9)
            z = (value - mean) / sigma
            delta = value - mean
            mean[...] = np.where(observed, mean + alpha * delta, mean)
            variance[...] = np.where(
                observed,
                (1 - alpha) * (variance + alpha * delta * delta),
                variance,
            )
            warm = observed & (samples > cfg.warmup_samples)
            if not warm.any():
                continue
            positive[...] = np.where(
                warm, np.maximum(0.0, positive + z - drift), positive
            )
            negative[...] = np.where(
                warm, np.maximum(0.0, negative - z - drift), negative
            )
            statistic = np.maximum(positive, negative)
            tripped = warm & (statistic > decision)
            if tripped.any():
                epoch = float(epoch_s[t])
                for rack_index, channel_index in np.argwhere(tripped):
                    alarms.append(
                        CusumAlarm(
                            epoch_s=epoch,
                            rack_id=rack_ids[rack_index],
                            channel=PREDICTOR_CHANNELS[channel_index],
                            statistic=float(statistic[rack_index, channel_index]),
                        )
                    )
                positive[tripped] = 0.0
                negative[tripped] = 0.0
        return tuple(alarms)

    def reset(self, rack_id: Optional[RackId] = None) -> None:
        """Drop state for one rack (or all racks)."""
        if rack_id is None:
            self._active[...] = False
        elif rack_id.flat_index < self._racks:
            self._active[rack_id.flat_index] = False

    # -- durability ---------------------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        """A picklable deep copy of the recurrence state."""
        return {
            "racks": self._racks,
            "mean": self._mean.copy(),
            "variance": self._variance.copy(),
            "positive": self._positive.copy(),
            "negative": self._negative.copy(),
            "samples": self._samples.copy(),
            "active": self._active.copy(),
        }

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`get_state` copy bit for bit."""
        self._allocate(int(state["racks"]))
        self._mean[...] = state["mean"]
        self._variance[...] = state["variance"]
        self._positive[...] = state["positive"]
        self._negative[...] = state["negative"]
        self._samples[...] = state["samples"]
        self._active[...] = state["active"]
