"""Classical change detection: EWMA residuals and CUSUM.

Section VI-D's argument — "not only the level of cooling metrics, but
more importantly the change in their values are key features" — makes
the CUSUM statistic the natural non-ML baseline: it accumulates
deviations of a channel from its running mean and alarms when the
accumulation escapes a band, detecting *sustained drifts* that a fixed
level threshold misses.  :class:`CusumDetector` tracks every predictor
channel per rack; its alarms can be compared head-to-head with the
MLP's (see the ablation example).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.facility.topology import RackId
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel


@dataclasses.dataclass(frozen=True)
class CusumConfig:
    """CUSUM parameters (in units of the channel's running sigma).

    Attributes:
        drift: The slack ``k``: deviations below this (in sigmas) do
            not accumulate.  Standard practice is half the shift one
            wants to detect.
        decision: The decision interval ``h``: alarm when either
            accumulator exceeds it (in sigmas).
        ewma_alpha: Smoothing factor of the running mean/variance
            estimates.
        warmup_samples: Samples per rack before alarms may fire
            (running statistics need to settle).
    """

    drift: float = 0.5
    decision: float = 6.0
    ewma_alpha: float = 0.02
    warmup_samples: int = 24

    def __post_init__(self) -> None:
        if self.drift < 0 or self.decision <= 0:
            raise ValueError("drift must be >= 0 and decision > 0")
        if not 0.0 < self.ewma_alpha < 1.0:
            raise ValueError("ewma_alpha must be in (0, 1)")


@dataclasses.dataclass
class _ChannelState:
    mean: float = 0.0
    variance: float = 1.0
    positive_sum: float = 0.0
    negative_sum: float = 0.0
    samples: int = 0


@dataclasses.dataclass(frozen=True)
class CusumAlarm:
    """One CUSUM alarm."""

    epoch_s: float
    rack_id: RackId
    channel: Channel
    statistic: float


class CusumDetector:
    """Per-rack, per-channel two-sided CUSUM over streaming telemetry."""

    def __init__(self, config: Optional[CusumConfig] = None) -> None:
        self.config = config if config is not None else CusumConfig()
        self._state: Dict[Tuple[RackId, Channel], _ChannelState] = {}

    def _update_channel(
        self, key: Tuple[RackId, Channel], value: float
    ) -> Optional[float]:
        """Update one channel; return the alarm statistic if tripped."""
        cfg = self.config
        state = self._state.get(key)
        if state is None:
            # Start the variance estimate *high* (5 % of the level) so
            # early z-scores are conservative; the EWMA converges down
            # to the channel's true noise during warmup.
            initial_variance = max((0.05 * abs(value)) ** 2, 1e-6)
            state = _ChannelState(mean=value, variance=initial_variance)
            self._state[key] = state
        state.samples += 1
        sigma = max(np.sqrt(state.variance), 1e-9)
        z = (value - state.mean) / sigma
        # Update the running statistics *after* scoring the sample.
        delta = value - state.mean
        state.mean += cfg.ewma_alpha * delta
        state.variance = (1 - cfg.ewma_alpha) * (
            state.variance + cfg.ewma_alpha * delta * delta
        )
        if state.samples <= cfg.warmup_samples:
            return None
        state.positive_sum = max(0.0, state.positive_sum + z - cfg.drift)
        state.negative_sum = max(0.0, state.negative_sum - z - cfg.drift)
        statistic = max(state.positive_sum, state.negative_sum)
        if statistic > cfg.decision:
            state.positive_sum = 0.0
            state.negative_sum = 0.0
            return statistic
        return None

    def consume(
        self,
        epoch_s: float,
        rack_id: RackId,
        channel_values: Dict[Channel, float],
    ) -> Tuple[CusumAlarm, ...]:
        """Feed one telemetry sample; returns any alarms raised."""
        alarms = []
        for channel in PREDICTOR_CHANNELS:
            if channel not in channel_values:
                continue
            statistic = self._update_channel(
                (rack_id, channel), float(channel_values[channel])
            )
            if statistic is not None:
                alarms.append(
                    CusumAlarm(
                        epoch_s=epoch_s,
                        rack_id=rack_id,
                        channel=channel,
                        statistic=statistic,
                    )
                )
        return tuple(alarms)

    def reset(self, rack_id: Optional[RackId] = None) -> None:
        """Drop state for one rack (or all racks)."""
        if rack_id is None:
            self._state.clear()
        else:
            for key in [k for k in self._state if k[0] == rack_id]:
                del self._state[key]
