"""Online operations: streaming CMF prediction and proactive mitigation.

The paper closes with opportunities: use the coolant telemetry for
"low-overhead operationally useful tasks" — predict CMFs hours ahead,
checkpoint the jobs at risk, and build CMF-aware resource management
(Section VI-D).  This package implements that stack:

* :mod:`repro.monitoring.online` — a streaming per-rack predictor that
  consumes monitor readings and emits failure probabilities,
* :mod:`repro.monitoring.alerts` — alert policies (threshold +
  persistence) and alert/failure matching with achieved lead times,
* :mod:`repro.monitoring.mitigation` — checkpoint-on-alert policies
  and the core-hours cost/benefit ledger that decides whether a
  predictor is operationally worth deploying.
"""

from repro.monitoring.online import (
    OnlineCmfPredictor,
    PredictorCounters,
    train_online_predictor,
)
from repro.monitoring.alerts import Alert, AlertLog, AlertPolicy
from repro.monitoring.anomaly import CusumAlarm, CusumConfig, CusumDetector
from repro.monitoring.localization import (
    CmfLocalizer,
    LocalizationReport,
    SuspicionRanking,
    evaluate_localization,
)
from repro.monitoring.mitigation import (
    CheckpointPolicy,
    MitigationLedger,
    evaluate_mitigation,
)

__all__ = [
    "OnlineCmfPredictor",
    "PredictorCounters",
    "train_online_predictor",
    "Alert",
    "AlertLog",
    "AlertPolicy",
    "CusumAlarm",
    "CusumConfig",
    "CusumDetector",
    "CheckpointPolicy",
    "MitigationLedger",
    "evaluate_mitigation",
    "CmfLocalizer",
    "LocalizationReport",
    "SuspicionRanking",
    "evaluate_localization",
]
