"""The streaming CMF predictor.

The offline pipeline (:mod:`repro.core.prediction`) evaluates windows
*around known failures*.  Operations need the opposite direction: a
predictor that rides along with the live telemetry, maintaining a
rolling history per rack and emitting a failure probability every time
a new coolant monitor sample arrives.

:func:`train_online_predictor` fits the paper's MLP on change features
pooled across prediction leads (so the model fires progressively as a
failure approaches rather than being tuned to one horizon), and
:class:`OnlineCmfPredictor` serves it over per-rack ring buffers.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants, timeutil
from repro.core.prediction import FEATURE_LAGS_H, build_dataset, window_features
from repro.facility.topology import RackId
from repro.ml.network import NeuralNetwork
from repro.ml.train import TrainConfig, TrainResult, train_classifier
from repro.simulation.windows import LeadupWindow
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel


def train_online_predictor(
    positive_windows: Sequence[LeadupWindow],
    negative_windows: Sequence[LeadupWindow],
    leads_h: Sequence[float] = (6.0, 4.0, 2.0, 1.0, 0.5),
    hidden: Sequence[int] = constants.PREDICTOR_HIDDEN_LAYERS,
    epochs: int = constants.PREDICTOR_EPOCHS,
    seed: int = 9,
) -> TrainResult:
    """Fit the streaming model on change features pooled across leads.

    Raises:
        ValueError: if either window class is empty.
    """
    if not positive_windows or not negative_windows:
        raise ValueError("both window classes are required for training")
    features: List[np.ndarray] = []
    labels: List[int] = []
    for lead_h in leads_h:
        dataset = build_dataset(positive_windows, negative_windows, lead_h)
        features.append(dataset.features)
        labels.append(dataset.labels)
    x = np.vstack(features)
    y = np.concatenate(labels)
    rng = np.random.default_rng(seed)
    network = NeuralNetwork.mlp(x.shape[1], tuple(hidden), rng=rng)
    return train_classifier(
        network, x, y, config=TrainConfig(epochs=epochs), rng=rng
    )


@dataclasses.dataclass(frozen=True)
class Prediction:
    """One streaming evaluation."""

    epoch_s: float
    rack_id: RackId
    probability: float


class OnlineCmfPredictor:
    """Per-rack rolling-history inference.

    Feed it monitor samples via :meth:`consume`; once a rack's history
    spans the longest feature lag (six hours) it returns failure
    probabilities.

    Args:
        model: A trained classifier from
            :func:`train_online_predictor` (or the offline pipeline).
        sample_period_s: Expected cadence; history is pruned to the
            feature span plus slack.
    """

    #: Extra history retained beyond the longest lag, seconds.
    HISTORY_SLACK_S = 30 * 60

    def __init__(
        self,
        model: TrainResult,
        sample_period_s: float = float(constants.MONITOR_SAMPLE_PERIOD_S),
    ) -> None:
        if sample_period_s <= 0:
            raise ValueError("sample period must be positive")
        self.model = model
        self.sample_period_s = sample_period_s
        self._span_s = max(FEATURE_LAGS_H) * timeutil.HOUR_S + self.HISTORY_SLACK_S
        self._history: Dict[RackId, Deque[Tuple[float, Dict[Channel, float]]]] = (
            collections.defaultdict(collections.deque)
        )

    # -- history management ------------------------------------------------------

    def _prune(self, rack_id: RackId, now_s: float) -> None:
        history = self._history[rack_id]
        while history and history[0][0] < now_s - self._span_s:
            history.popleft()

    def history_span_s(self, rack_id: RackId) -> float:
        """Seconds of history currently held for a rack."""
        history = self._history[rack_id]
        if len(history) < 2:
            return 0.0
        return history[-1][0] - history[0][0]

    def ready(self, rack_id: RackId) -> bool:
        """Whether the rack has enough history for a prediction."""
        return self.history_span_s(rack_id) >= max(FEATURE_LAGS_H) * timeutil.HOUR_S

    # -- inference ---------------------------------------------------------------

    def _value_at(self, rack_id: RackId, channel: Channel, epoch_s: float) -> float:
        history = self._history[rack_id]
        times = np.array([t for t, _ in history])
        values = np.array([sample[channel] for _, sample in history])
        return float(np.interp(epoch_s, times, values))

    def _features(self, rack_id: RackId, now_s: float) -> np.ndarray:
        features: List[float] = []
        for channel in PREDICTOR_CHANNELS:
            now_value = self._value_at(rack_id, channel, now_s)
            for lag_h in FEATURE_LAGS_H:
                then = self._value_at(
                    rack_id, channel, now_s - lag_h * timeutil.HOUR_S
                )
                denominator = abs(then) if abs(then) > 1e-9 else 1.0
                features.append((now_value - then) / denominator)
        return np.array(features)

    def consume(
        self,
        epoch_s: float,
        rack_id: RackId,
        channel_values: Dict[Channel, float],
    ) -> Optional[Prediction]:
        """Ingest one sample; return a prediction once history suffices.

        Raises:
            ValueError: if a predictor channel is missing.
        """
        missing = [ch for ch in PREDICTOR_CHANNELS if ch not in channel_values]
        if missing:
            raise ValueError(f"missing channels: {[m.column for m in missing]}")
        history = self._history[rack_id]
        if history and epoch_s < history[-1][0]:
            raise ValueError("samples must arrive in time order per rack")
        history.append((epoch_s, dict(channel_values)))
        self._prune(rack_id, epoch_s)
        if not self.ready(rack_id):
            return None
        probability = float(
            self.model.predict_proba(self._features(rack_id, epoch_s)[None, :])[0]
        )
        return Prediction(epoch_s=epoch_s, rack_id=rack_id, probability=probability)

    def consume_window(self, window: LeadupWindow) -> List[Prediction]:
        """Replay a synthesized window through the streaming path.

        Useful for testing that the online path agrees with the
        offline feature extraction on identical data.
        """
        predictions = []
        for i, epoch in enumerate(window.epoch_s):
            sample = {
                channel: float(window.channels[channel][i])
                for channel in PREDICTOR_CHANNELS
            }
            prediction = self.consume(float(epoch), window.rack_id, sample)
            if prediction is not None:
                predictions.append(prediction)
        return predictions

    def reset(self, rack_id: Optional[RackId] = None) -> None:
        """Drop history for one rack (after an outage) or all racks."""
        if rack_id is None:
            self._history.clear()
        else:
            self._history.pop(rack_id, None)
