"""The streaming CMF predictor.

The offline pipeline (:mod:`repro.core.prediction`) evaluates windows
*around known failures*.  Operations need the opposite direction: a
predictor that rides along with the live telemetry, maintaining a
rolling history per rack and emitting a failure probability every time
a new coolant monitor sample arrives.

:func:`train_online_predictor` fits the paper's MLP on change features
pooled across prediction leads (so the model fires progressively as a
failure approaches rather than being tuned to one horizon), and
:class:`OnlineCmfPredictor` serves it over per-rack ring buffers.

Degraded-stream tolerance
-------------------------

Production telemetry arrives with holes, duplicates, and gaps (see
:mod:`repro.faults`).  By default the predictor *absorbs* delivery
problems instead of raising:

* missing or NaN channels are filled by last-observation-carried-
  forward, capped at :attr:`~OnlineCmfPredictor.locf_staleness_s`;
  samples too incomplete to repair are dropped,
* late or duplicate-timestamp samples are dropped,
* a rack whose stream goes silent longer than
  :attr:`~OnlineCmfPredictor.gap_reset_s` has its history reset, so
  features never interpolate across an outage.

Every such decision increments :class:`PredictorCounters`.  Passing
``strict=True`` restores the historical contract: missing channels and
out-of-order samples raise ``ValueError``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import constants, timeutil
from repro.core.prediction import FEATURE_LAGS_H, build_dataset
from repro.facility.topology import RackId
from repro.ml.network import NeuralNetwork
from repro.ml.train import TrainConfig, TrainResult, train_classifier
from repro.simulation.windows import LeadupWindow
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel


def train_online_predictor(
    positive_windows: Sequence[LeadupWindow],
    negative_windows: Sequence[LeadupWindow],
    leads_h: Sequence[float] = (6.0, 4.0, 2.0, 1.0, 0.5),
    hidden: Sequence[int] = constants.PREDICTOR_HIDDEN_LAYERS,
    epochs: int = constants.PREDICTOR_EPOCHS,
    seed: int = 9,
) -> TrainResult:
    """Fit the streaming model on change features pooled across leads.

    Raises:
        ValueError: if either window class is empty.
    """
    if not positive_windows or not negative_windows:
        raise ValueError("both window classes are required for training")
    features: List[np.ndarray] = []
    labels: List[int] = []
    for lead_h in leads_h:
        dataset = build_dataset(positive_windows, negative_windows, lead_h)
        features.append(dataset.features)
        labels.append(dataset.labels)
    x = np.vstack(features)
    y = np.concatenate(labels)
    rng = np.random.default_rng(seed)
    network = NeuralNetwork.mlp(x.shape[1], tuple(hidden), rng=rng)
    return train_classifier(
        network, x, y, config=TrainConfig(epochs=epochs), rng=rng
    )


@dataclasses.dataclass(frozen=True)
class Prediction:
    """One streaming evaluation."""

    epoch_s: float
    rack_id: RackId
    probability: float


@dataclasses.dataclass
class PredictorCounters:
    """Observability counters for every degraded-stream decision."""

    #: Samples offered via :meth:`OnlineCmfPredictor.consume`.
    consumed: int = 0
    #: Predictions emitted.
    predictions: int = 0
    #: Individual channel values filled by carry-forward.
    locf_fills: int = 0
    #: Samples dropped because too stale/incomplete to repair.
    dropped_incomplete: int = 0
    #: Samples dropped for arriving behind the rack's newest timestamp.
    dropped_late: int = 0
    #: Samples dropped for duplicating the rack's newest timestamp.
    dropped_duplicate: int = 0
    #: Rack histories reset after a silent gap.
    gap_resets: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class _RackHistory:
    """A growable (times, values) window with O(1) amortized append.

    Replaces the old per-sample ``Deque[Tuple[float, Dict]]`` whose
    every feature evaluation rebuilt full numpy arrays — O(history)
    per sample.  Here interpolation reads contiguous array views
    directly, so a sample costs O(channels x lags x log history).
    """

    __slots__ = ("times", "values", "start", "size")

    def __init__(self, num_channels: int, capacity: int = 128) -> None:
        self.times = np.empty(capacity, dtype="float64")
        self.values = np.empty((capacity, num_channels), dtype="float64")
        self.start = 0
        self.size = 0

    def append(self, epoch_s: float, row: np.ndarray) -> None:
        end = self.start + self.size
        if end == len(self.times):
            if self.start > 0:
                # Slide the live window back to the front.
                self.times[: self.size] = self.times[self.start : end]
                self.values[: self.size] = self.values[self.start : end]
                self.start = 0
                end = self.size
            if end == len(self.times):
                self.times = np.concatenate([self.times, np.empty_like(self.times)])
                self.values = np.concatenate(
                    [self.values, np.empty_like(self.values)]
                )
        self.times[end] = epoch_s
        self.values[end] = row
        self.size += 1

    def prune_before(self, cutoff_s: float) -> None:
        times = self.times
        while self.size and times[self.start] < cutoff_s:
            self.start += 1
            self.size -= 1

    def reserve(self, count: int) -> None:
        """Guarantee ``count`` appends without compaction or realloc.

        Called once before a block of appends so that ``(start, size)``
        snapshots taken mid-block keep referencing the same arrays —
        the batched feature pass reads them after the block completes.
        """
        needed = self.start + self.size + count
        if needed <= len(self.times):
            return
        if self.start > 0:
            end = self.start + self.size
            self.times[: self.size] = self.times[self.start : end]
            self.values[: self.size] = self.values[self.start : end]
            self.start = 0
            needed = self.size + count
        while needed > len(self.times):
            self.times = np.concatenate([self.times, np.empty_like(self.times)])
            self.values = np.concatenate([self.values, np.empty_like(self.values)])

    @property
    def times_view(self) -> np.ndarray:
        return self.times[self.start : self.start + self.size]

    @property
    def values_view(self) -> np.ndarray:
        return self.values[self.start : self.start + self.size]

    @property
    def last_time(self) -> float:
        return float(self.times[self.start + self.size - 1])

    @property
    def last_row(self) -> np.ndarray:
        return self.values[self.start + self.size - 1]


class OnlineCmfPredictor:
    """Per-rack rolling-history inference.

    Feed it monitor samples via :meth:`consume`; once a rack's history
    spans the longest feature lag (six hours) it returns failure
    probabilities.

    Args:
        model: A trained classifier from
            :func:`train_online_predictor` (or the offline pipeline).
        sample_period_s: Expected cadence; history is pruned to the
            feature span plus slack, and the tolerance defaults below
            scale with it.
        strict: Restore the historical contract — missing channels and
            out-of-order arrivals raise ``ValueError`` instead of
            being repaired/dropped.
        locf_staleness_s: How old the rack's newest sample may be and
            still donate carry-forward values (default: six sample
            periods).
        gap_reset_s: Silent gap after which a rack's history is
            discarded rather than interpolated across (default: the
            larger of two hours and eight sample periods).
    """

    #: Extra history retained beyond the longest lag, seconds.
    HISTORY_SLACK_S = 30 * 60

    def __init__(
        self,
        model: TrainResult,
        sample_period_s: float = float(constants.MONITOR_SAMPLE_PERIOD_S),
        strict: bool = False,
        locf_staleness_s: Optional[float] = None,
        gap_reset_s: Optional[float] = None,
    ) -> None:
        if sample_period_s <= 0:
            raise ValueError("sample period must be positive")
        self.model = model
        self.sample_period_s = sample_period_s
        self.strict = strict
        self.locf_staleness_s = (
            6.0 * sample_period_s if locf_staleness_s is None else locf_staleness_s
        )
        self.gap_reset_s = (
            max(2.0 * timeutil.HOUR_S, 8.0 * sample_period_s)
            if gap_reset_s is None
            else gap_reset_s
        )
        if self.locf_staleness_s < 0 or self.gap_reset_s <= 0:
            raise ValueError("tolerance windows must be positive")
        self.counters = PredictorCounters()
        self._span_s = max(FEATURE_LAGS_H) * timeutil.HOUR_S + self.HISTORY_SLACK_S
        self._lag_offsets_s = np.array(FEATURE_LAGS_H) * timeutil.HOUR_S
        self._history: Dict[RackId, _RackHistory] = {}

    # -- history management ------------------------------------------------------

    def _rack(self, rack_id: RackId) -> Optional[_RackHistory]:
        return self._history.get(rack_id)

    def history_span_s(self, rack_id: RackId) -> float:
        """Seconds of history currently held for a rack."""
        history = self._rack(rack_id)
        if history is None or history.size < 2:
            return 0.0
        return history.last_time - float(history.times[history.start])

    def ready(self, rack_id: RackId) -> bool:
        """Whether the rack has enough history for a prediction."""
        return self.history_span_s(rack_id) >= max(FEATURE_LAGS_H) * timeutil.HOUR_S

    # -- inference ---------------------------------------------------------------

    @staticmethod
    def _values_at(history: _RackHistory, query_times: np.ndarray) -> np.ndarray:
        """Linearly interpolated rows at each query time, ``np.interp``
        clip semantics (before-first -> first row, after-last -> last)."""
        times = history.times_view
        values = history.values_view
        n = len(times)
        indices = np.searchsorted(times, query_times, side="left")
        out = np.empty((len(query_times), values.shape[1]))
        for k, (query, i) in enumerate(zip(query_times, indices)):
            if i <= 0:
                out[k] = values[0]
            elif i >= n:
                out[k] = values[-1]
            elif times[i] == query:
                out[k] = values[i]
            else:
                left = times[i - 1]
                weight = (query - left) / (times[i] - left)
                out[k] = values[i - 1] + weight * (values[i] - values[i - 1])
        return out

    def _features(self, history: _RackHistory, now_s: float) -> np.ndarray:
        now_values = self._values_at(history, np.array([now_s]))[0]
        then_values = self._values_at(history, now_s - self._lag_offsets_s)
        denominator = np.where(
            np.abs(then_values) > 1e-9, np.abs(then_values), 1.0
        )
        # (lags, channels) -> channel-major/lag-minor, matching
        # repro.core.prediction.window_features.
        return ((now_values[None, :] - then_values) / denominator).T.ravel()

    def consume(
        self,
        epoch_s: float,
        rack_id: RackId,
        channel_values: Dict[Channel, float],
    ) -> Optional[Prediction]:
        """Ingest one sample; return a prediction once history suffices.

        Missing or NaN predictor channels are repaired by carry-forward
        when recent history allows; late and duplicate samples are
        dropped.  With ``strict=True`` missing channels and late
        arrivals raise ``ValueError`` as they historically did.

        Raises:
            ValueError: strict mode only — on missing channels or
                out-of-order arrival.
        """
        self.counters.consumed += 1
        row = np.array(
            [float(channel_values.get(ch, np.nan)) for ch in PREDICTOR_CHANNELS]
        )
        holes = ~np.isfinite(row)
        if self.strict:
            missing = [ch for ch in PREDICTOR_CHANNELS if ch not in channel_values]
            if missing:
                raise ValueError(
                    f"missing channels: {[m.column for m in missing]}"
                )
        history = self._rack(rack_id)

        if history is not None and history.size:
            last = history.last_time
            if epoch_s < last:
                if self.strict:
                    raise ValueError("samples must arrive in time order per rack")
                self.counters.dropped_late += 1
                return None
            if not self.strict and epoch_s == last:
                self.counters.dropped_duplicate += 1
                return None
            if epoch_s - last > self.gap_reset_s:
                # The stream went silent; interpolating across the gap
                # would fabricate six hours of physics.  Start over.
                self.reset(rack_id)
                history = None
                self.counters.gap_resets += 1

        if holes.any():
            filled = False
            if (
                history is not None
                and history.size
                and epoch_s - history.last_time <= self.locf_staleness_s
            ):
                donor = history.last_row
                if np.isfinite(donor[holes]).all():
                    row = np.where(holes, donor, row)
                    self.counters.locf_fills += int(holes.sum())
                    filled = True
            if not filled:
                self.counters.dropped_incomplete += 1
                return None

        if history is None:
            history = _RackHistory(len(PREDICTOR_CHANNELS))
            self._history[rack_id] = history
        history.append(epoch_s, row)
        history.prune_before(epoch_s - self._span_s)
        if not self.ready(rack_id):
            return None
        probability = float(
            self.model.predict_proba(self._features(history, epoch_s)[None, :])[0]
        )
        self.counters.predictions += 1
        return Prediction(epoch_s=epoch_s, rack_id=rack_id, probability=probability)

    def consume_block(
        self,
        epoch_s: np.ndarray,
        rack_id: RackId,
        values: np.ndarray,
    ) -> List[Prediction]:
        """Ingest a block of one rack's samples; return its predictions.

        Equivalent to calling :meth:`consume` once per row with every
        predictor channel present (missing measurements as NaN) — the
        late/duplicate/gap/carry-forward state machine runs per row in
        arrival order, so counters and emitted predictions are
        *identical* to the per-sample path.  Only the expensive parts
        are batched: lag interpolation and feature assembly happen in
        one vectorized pass per block, and each emission still runs a
        single-row ``predict_proba`` so probabilities match the scalar
        path bit for bit.

        Args:
            epoch_s: ``(timesteps,)`` sample timestamps.
            values: ``(timesteps, len(PREDICTOR_CHANNELS))`` rows in
                :data:`~repro.telemetry.records.PREDICTOR_CHANNELS`
                order.
        """
        epochs = np.asarray(epoch_s, dtype="float64")
        block = np.asarray(values, dtype="float64")
        n = len(epochs)
        if block.shape != (n, len(PREDICTOR_CHANNELS)):
            raise ValueError(
                f"values must have shape ({n}, {len(PREDICTOR_CHANNELS)}), "
                f"got {block.shape}"
            )
        counters = self.counters
        history = self._rack(rack_id)
        if history is not None:
            history.reserve(n)
        # (history, start, end, epoch) snapshots; feature extraction is
        # deferred so it can run batched once the block is absorbed.
        pending: List[tuple] = []
        for i in range(n):
            epoch = float(epochs[i])
            counters.consumed += 1
            row = block[i]
            holes = ~np.isfinite(row)
            if history is not None and history.size:
                last = history.last_time
                if epoch < last:
                    if self.strict:
                        raise ValueError(
                            "samples must arrive in time order per rack"
                        )
                    counters.dropped_late += 1
                    continue
                if not self.strict and epoch == last:
                    counters.dropped_duplicate += 1
                    continue
                if epoch - last > self.gap_reset_s:
                    self.reset(rack_id)
                    history = None
                    counters.gap_resets += 1
            if holes.any():
                filled = False
                if (
                    history is not None
                    and history.size
                    and epoch - history.last_time <= self.locf_staleness_s
                ):
                    donor = history.last_row
                    if np.isfinite(donor[holes]).all():
                        row = np.where(holes, donor, row)
                        counters.locf_fills += int(holes.sum())
                        filled = True
                if not filled:
                    counters.dropped_incomplete += 1
                    continue
            if history is None:
                history = _RackHistory(len(PREDICTOR_CHANNELS))
                history.reserve(n - i)
                self._history[rack_id] = history
            history.append(epoch, row)
            history.prune_before(epoch - self._span_s)
            if self.ready(rack_id):
                counters.predictions += 1
                pending.append(
                    (history, history.start, history.start + history.size, epoch)
                )
        if not pending:
            return []
        predictions: List[Prediction] = []
        lo = 0
        while lo < len(pending):  # contiguous runs share a history object
            hi = lo
            while hi < len(pending) and pending[hi][0] is pending[lo][0]:
                hi += 1
            group = pending[lo:hi]
            features = self._batch_features(pending[lo][0], group)
            for (_, _, _, epoch), feats in zip(group, features):
                probability = float(self.model.predict_proba(feats[None, :])[0])
                predictions.append(
                    Prediction(
                        epoch_s=epoch, rack_id=rack_id, probability=probability
                    )
                )
            lo = hi
        return predictions

    def _batch_features(
        self, history: _RackHistory, group: List[tuple]
    ) -> np.ndarray:
        """Features for a group of emission snapshots, one vector each.

        Replicates :meth:`_values_at` per snapshot view exactly: the
        "now" query is always an exact hit on the view's last row, and
        lag queries interpolate with the same elementwise arithmetic
        (exact hits and before-view clamps handled by mask, not by
        re-deriving through the interpolation formula).
        """
        starts = np.array([g[1] for g in group], dtype=np.intp)
        ends = np.array([g[2] for g in group], dtype=np.intp)
        nows = np.array([g[3] for g in group], dtype="float64")
        times, rows = history.times, history.values
        now_values = rows[ends - 1]  # (E, C): exact hit on the newest row
        queries = nows[:, None] - self._lag_offsets_s[None, :]  # (E, L)
        upper = int(ends.max())
        # Lag queries satisfy q < now == times[end-1] <= times[upper-1],
        # so the global insertion point already respects each view's
        # right edge; only the left edge needs clamping per view.
        index = np.searchsorted(times[:upper], queries.ravel()).reshape(
            queries.shape
        )
        before = index <= starts[:, None]
        safe = np.clip(index, 1, upper - 1)
        x0, x1 = times[safe - 1], times[safe]
        exact = x1 == queries
        weight = (queries - x0) / (x1 - x0)
        v0, v1 = rows[safe - 1], rows[safe]
        then_values = v0 + weight[:, :, None] * (v1 - v0)
        then_values = np.where(exact[:, :, None], v1, then_values)
        then_values = np.where(
            before[:, :, None], rows[starts][:, None, :], then_values
        )
        denominator = np.where(
            np.abs(then_values) > 1e-9, np.abs(then_values), 1.0
        )
        fractions = (now_values[:, None, :] - then_values) / denominator
        # (E, lags, channels) -> channel-major/lag-minor per emission.
        return np.transpose(fractions, (0, 2, 1)).reshape(len(group), -1)

    def consume_window(self, window: LeadupWindow) -> List[Prediction]:
        """Replay a synthesized window through the streaming path.

        Useful for testing that the online path agrees with the
        offline feature extraction on identical data.
        """
        predictions = []
        for i, epoch in enumerate(window.epoch_s):
            sample = {
                channel: float(window.channels[channel][i])
                for channel in PREDICTOR_CHANNELS
            }
            prediction = self.consume(float(epoch), window.rack_id, sample)
            if prediction is not None:
                predictions.append(prediction)
        return predictions

    def reset(self, rack_id: Optional[RackId] = None) -> None:
        """Drop history for one rack (after an outage) or all racks."""
        if rack_id is None:
            self._history.clear()
        else:
            self._history.pop(rack_id, None)

    # -- durability ---------------------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        """Picklable per-rack history windows plus counters.

        The trained model is deliberately **excluded**: recovery
        constructs the predictor with the same model object and
        restores only the streaming state around it.
        """
        return {
            "counters": dataclasses.replace(self.counters),
            "history": {
                rack_id: (history.times_view.copy(), history.values_view.copy())
                for rack_id, history in self._history.items()
            },
        }

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`get_state` copy.

        Feature interpolation reads only the live ``(times, values)``
        window, so rebuilding each ring buffer front-aligned is
        bit-identical to the pre-crash layout.
        """
        self.counters = dataclasses.replace(state["counters"])
        self._history = {}
        for rack_id, (times, values) in state["history"].items():
            n = len(times)
            history = _RackHistory(values.shape[1], capacity=max(128, n))
            history.times[:n] = times
            history.values[:n] = values
            history.start = 0
            history.size = n
            self._history[rack_id] = history
