"""A persistent on-disk telemetry archive.

Mira's environmental data lived in an IBM DB2 database; six years at
monitor cadence is far too large to re-simulate for every analysis
session.  :class:`TelemetryArchive` is the persistence layer: it
stores an :class:`~repro.telemetry.database.EnvironmentalDatabase` as
a directory of raw ``float64`` matrices plus a JSON manifest, and
reopens them *memory-mapped*, so loading a multi-gigabyte archive
costs no RAM until columns are touched.

Layout::

    archive_dir/
      manifest.json        # schema, shapes, dtype, format version
      epoch_s.npy          # (n,) float64 timestamps
      <channel>.npy        # (n, racks) float64 per channel

Files are plain ``.npy`` (readable by any numpy) and the manifest is
human-readable; nothing is pickled.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.telemetry.database import (
    EnvironmentalDatabase,
    IngestCounters,
    IngestPolicy,
)
from repro.telemetry.records import CHANNELS, Channel

PathLike = Union[str, Path]

#: Format version written into every manifest.
FORMAT_VERSION = 1

_MANIFEST = "manifest.json"


class ArchiveError(ValueError):
    """A telemetry archive is inconsistent with its manifest.

    Raised when the manifest's channel list disagrees with the schema
    or with the ``.npy`` files actually on disk, so a stale or
    half-copied archive fails at load time with the offending column
    named, rather than as a bare ``FileNotFoundError`` halfway through
    an analysis.  Subclasses ``ValueError`` so the dataset cache treats
    a bad entry as corrupt and rebuilds it.
    """


class TelemetryArchive:
    """Save/load environmental databases as memory-mapped archives."""

    @staticmethod
    def save(database: EnvironmentalDatabase, directory: PathLike) -> Path:
        """Write a database to ``directory`` (created if needed).

        Returns:
            The archive directory path.

        Raises:
            ValueError: if the database is empty.
        """
        if database.num_samples == 0:
            raise ValueError("refusing to archive an empty database")
        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        np.save(out / "epoch_s.npy", np.asarray(database.epoch_s, dtype="float64"))
        for channel in CHANNELS:
            values = database.channel(channel).values.astype("float64")
            np.save(out / f"{channel.column}.npy", values)
        manifest = {
            "format_version": FORMAT_VERSION,
            "num_samples": database.num_samples,
            "num_racks": database.num_racks,
            "channels": [channel.column for channel in CHANNELS],
        }
        (out / _MANIFEST).write_text(json.dumps(manifest, indent=2))
        return out

    @staticmethod
    def load(directory: PathLike, mmap: bool = True) -> EnvironmentalDatabase:
        """Reopen an archive as an :class:`EnvironmentalDatabase`.

        Args:
            directory: Archive directory written by :meth:`save`.
            mmap: Memory-map the column files (default) instead of
                reading them into RAM.

        Raises:
            FileNotFoundError: if the manifest is missing.
            ArchiveError: if the manifest's channel list disagrees with
                the schema or with the ``.npy`` files present.
            ValueError: on version/shape mismatches.
        """
        root = Path(directory)
        manifest_path = root / _MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(f"no telemetry manifest in {root}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported archive format {manifest.get('format_version')}"
            )
        _validate_channels(root, manifest)
        mmap_mode = "r" if mmap else None
        epoch = np.load(root / "epoch_s.npy", mmap_mode=mmap_mode)
        num_samples = int(manifest["num_samples"])
        num_racks = int(manifest["num_racks"])
        if epoch.shape != (num_samples,):
            raise ValueError("epoch column does not match the manifest")
        columns: Dict[Channel, np.ndarray] = {}
        for channel in CHANNELS:
            path = root / f"{channel.column}.npy"
            values = np.load(path, mmap_mode=mmap_mode)
            if values.shape != (num_samples, num_racks):
                raise ValueError(f"{path.name} does not match the manifest")
            columns[channel] = values
        return _ArchivedDatabase(epoch, columns, num_racks, source_dir=root)


def _validate_channels(root: Path, manifest: dict) -> None:
    """Cross-check the manifest's channel list against schema and disk.

    Raises:
        ArchiveError: naming the first missing/extra column found.
    """
    listed = list(manifest.get("channels", []))
    expected = [channel.column for channel in CHANNELS]
    missing_from_manifest = sorted(set(expected) - set(listed))
    if missing_from_manifest:
        raise ArchiveError(
            f"archive {root} manifest is missing channel "
            f"{missing_from_manifest[0]!r} (schema expects {expected})"
        )
    extra_in_manifest = sorted(set(listed) - set(expected))
    if extra_in_manifest:
        raise ArchiveError(
            f"archive {root} manifest lists unknown channel "
            f"{extra_in_manifest[0]!r} (schema expects {expected})"
        )
    if not (root / "epoch_s.npy").exists():
        raise ArchiveError(f"archive {root} is missing the epoch_s column file")
    for column in expected:
        if not (root / f"{column}.npy").exists():
            raise ArchiveError(
                f"archive {root} is missing the {column!r} column file "
                "listed in its manifest"
            )


class _ArchivedDatabase(EnvironmentalDatabase):
    """A read-only database view over memory-mapped columns.

    Attributes:
        source_dir: The archive directory this view was loaded from
            (``None`` for views constructed directly).  Lets the
            parallel report fan workers out with the *path* and have
            each reopen the columns memory-mapped instead of pickling
            the matrices.
    """

    def __init__(
        self,
        epoch: np.ndarray,
        columns: Dict[Channel, np.ndarray],
        num_racks: int,
        source_dir: Optional[Path] = None,
    ) -> None:
        # Bypass the parent's buffer allocation entirely.
        self._num_racks = num_racks
        self._size = int(epoch.shape[0])
        self._capacity = self._size
        self._epoch = epoch
        self._columns = columns
        # Archives carry no quality files; flags are derived from
        # NaN-ness on demand (see EnvironmentalDatabase._quality_matrix).
        self._quality = None
        self._derived_quality = {}
        self.policy = IngestPolicy()
        self.counters = IngestCounters()
        self._pending = []
        self._watermark = float(epoch[-1]) if self._size else -np.inf
        self.source_dir = source_dir

    def append_snapshot(self, epoch_s, channel_values) -> None:
        raise TypeError("archived databases are read-only")

    def append_block(self, epoch_s, channel_values) -> None:
        raise TypeError("archived databases are read-only")

    def ingest_reading(self, reading, utilization=np.nan) -> None:
        raise TypeError("archived databases are read-only")

    def compact(self) -> None:
        """No-op: an archive is already exactly sized."""
