"""The RAS (reliability/availability/serviceability) event log.

Mira's RAS log records events affecting system reliability with a
severity of *warn* (low-risk) or *fatal* (rack-level failure).  It
captures coolant monitor failures as well as failures of BPMs, compute
cards (BQC), link modules (BQL), clock cards, software, and background
processes (Sections II and VI-C).

During a CMF the log fills with a **RAS storm**: upwards of ten
thousand messages within minutes across many racks.  The analysis in
:mod:`repro.core.failure_analysis` must therefore deduplicate raw
events using the paper's methodology; this module stores the raw
stream faithfully and provides the query primitives the dedup needs.
"""

from __future__ import annotations

import bisect
import dataclasses
import enum
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.facility.topology import RackId


class Severity(enum.Enum):
    """RAS event severity."""

    WARN = "warn"
    FATAL = "fatal"


#: Event category for coolant monitor failures.
CMF_CATEGORY = "coolant_monitor"

#: Non-CMF failure categories tracked by the paper (Fig 14b).
NONCMF_CATEGORIES: Tuple[str, ...] = (
    "ac_dc_power",
    "bqc",
    "bql",
    "card",
    "software",
    "process",
)


@dataclasses.dataclass(frozen=True, order=True)
class RasEvent:
    """One RAS log entry.

    Ordering is by timestamp (then the remaining fields), so sorted
    containers of events are time-ordered.
    """

    epoch_s: float
    rack_id: RackId = dataclasses.field(compare=False)
    severity: Severity = dataclasses.field(compare=False)
    category: str = dataclasses.field(compare=False)
    message: str = dataclasses.field(compare=False, default="")

    @property
    def is_cmf(self) -> bool:
        return self.category == CMF_CATEGORY

    @property
    def is_fatal(self) -> bool:
        return self.severity is Severity.FATAL


class RasLog:
    """Append-mostly, time-indexed RAS event store."""

    def __init__(self, events: Optional[Iterable[RasEvent]] = None) -> None:
        self._events: List[RasEvent] = sorted(events) if events else []
        self._times: List[float] = [e.epoch_s for e in self._events]

    # -- ingest -----------------------------------------------------------------

    def record(self, event: RasEvent) -> None:
        """Insert an event, maintaining time order."""
        index = bisect.bisect_right(self._times, event.epoch_s)
        self._events.insert(index, event)
        self._times.insert(index, event.epoch_s)

    def extend(self, events: Iterable[RasEvent]) -> None:
        """Bulk-insert events (re-sorts once; cheaper than repeated record)."""
        self._events.extend(events)
        self._events.sort()
        self._times = [e.epoch_s for e in self._events]

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[RasEvent]:
        return iter(self._events)

    @property
    def events(self) -> Tuple[RasEvent, ...]:
        return tuple(self._events)

    def between(self, start_epoch_s: float, end_epoch_s: float) -> Tuple[RasEvent, ...]:
        """Events with ``start <= t < end``."""
        lo = bisect.bisect_left(self._times, start_epoch_s)
        hi = bisect.bisect_left(self._times, end_epoch_s)
        return tuple(self._events[lo:hi])

    def filter(
        self,
        category: Optional[str] = None,
        severity: Optional[Severity] = None,
        rack_id: Optional[RackId] = None,
        cmf: Optional[bool] = None,
    ) -> Tuple[RasEvent, ...]:
        """Events matching all the given criteria."""
        out = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if severity is not None and event.severity is not severity:
                continue
            if rack_id is not None and event.rack_id != rack_id:
                continue
            if cmf is not None and event.is_cmf != cmf:
                continue
            out.append(event)
        return tuple(out)

    def fatal_cmf_events(self) -> Tuple[RasEvent, ...]:
        """All fatal coolant-monitor events (the raw storm stream)."""
        return self.filter(cmf=True, severity=Severity.FATAL)

    def fatal_noncmf_events(self) -> Tuple[RasEvent, ...]:
        """All fatal non-CMF events."""
        return tuple(
            e for e in self._events if e.is_fatal and not e.is_cmf
        )

    def categories(self) -> Tuple[str, ...]:
        """Distinct categories present, sorted."""
        return tuple(sorted({e.category for e in self._events}))
