"""The canonical wire/file schema for telemetry channels.

Every serializer that leaves the process — the CSV exporter, the HTTP
JSON API, the collector adapters — must agree on channel column names,
quality-column naming, and units.  This module is the single source of
truth they all import; nothing here is derived independently anywhere
else.

The schema is generated from :data:`repro.telemetry.records.CHANNELS`
(canonical storage order), so adding a channel to the enum propagates
to every exporter and parser automatically.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.telemetry.records import CHANNELS, Channel

#: Suffix appended to a channel column to name its quality column.
QUALITY_SUFFIX = "_q"

#: Channel value columns in canonical storage order.
TELEMETRY_COLUMNS: Tuple[str, ...] = tuple(ch.column for ch in CHANNELS)

#: Column name -> :class:`Channel`, for parsers.
CHANNEL_BY_COLUMN: Dict[str, Channel] = {ch.column: ch for ch in CHANNELS}

#: Column name -> human-readable unit string, for serializers.
CHANNEL_UNITS: Dict[str, str] = {ch.column: ch.unit for ch in CHANNELS}


def quality_column(channel: Channel) -> str:
    """The quality-flag column paired with ``channel``'s value column."""
    return channel.column + QUALITY_SUFFIX


def telemetry_header(include_quality: bool = True) -> List[str]:
    """The canonical flat-file header: epoch, rack, values[, qualities]."""
    header = ["epoch_s", "rack"] + list(TELEMETRY_COLUMNS)
    if include_quality:
        header += [quality_column(ch) for ch in CHANNELS]
    return header


def channel_for_column(column: str) -> Channel:
    """Resolve a wire/file column name to its :class:`Channel`.

    Raises:
        ValueError: naming the unknown column and listing the valid
            ones, so API error payloads can forward the message
            verbatim.
    """
    channel = CHANNEL_BY_COLUMN.get(column)
    if channel is None:
        valid = ", ".join(TELEMETRY_COLUMNS)
        raise ValueError(f"unknown channel {column!r}; choose one of: {valid}")
    return channel
