"""NaN-aware reductions that stay silent on empty slices.

Real facility telemetry has holes: a rack's monitor goes dark, a whole
floor snapshot is lost, a scrubber masks a stuck sensor.  Every
analysis in this package reduces over such data with the ``nan*``
family, and numpy emits ``RuntimeWarning: Mean of empty slice`` (or
``All-NaN slice encountered``) whenever a reduction slice holds no
finite value.  Under partial coverage that is the *expected* case, not
an anomaly — and the test suite promotes ``RuntimeWarning`` to an
error precisely so that unexpected numerical warnings cannot slip by.

These wrappers return NaN for empty slices, exactly like their numpy
counterparts, but without the warning.  Use them anywhere an all-NaN
slice is a legitimate input.
"""

from __future__ import annotations

import warnings

import numpy as np

__all__ = ["nanmean", "nanmedian", "nanstd", "nansum", "nanmin", "nanmax"]


def _silent(func, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        return func(*args, **kwargs)


def _nan_like_reduction(a, **kwargs):
    """The NaN result a reduction of a zero-size array should produce.

    ``np.nanmin``/``np.nanmax`` raise ``ValueError`` ("zero-size array
    to reduction operation") instead of warning, so empty time windows
    (a legitimate query) would crash.  ``np.nanmean`` already has the
    right shape semantics for every ``axis``/``keepdims`` combination,
    so delegate to it for the empty case.
    """
    return _silent(np.nanmean, np.asarray(a, dtype="float64"), **kwargs)


def nanmean(a, **kwargs):
    """``np.nanmean`` that returns NaN for empty slices without warning."""
    return _silent(np.nanmean, a, **kwargs)


def nanmedian(a, **kwargs):
    """``np.nanmedian`` that returns NaN for empty slices without warning."""
    return _silent(np.nanmedian, a, **kwargs)


def nanstd(a, **kwargs):
    """``np.nanstd`` that returns NaN for empty slices without warning."""
    return _silent(np.nanstd, a, **kwargs)


def nansum(a, **kwargs):
    """``np.nansum`` (kept for symmetry; numpy's never warns)."""
    return np.nansum(a, **kwargs)


def nanmin(a, **kwargs):
    """``np.nanmin`` that returns NaN for empty slices without warning.

    Zero-size inputs (an empty time window) return NaN instead of
    raising ``ValueError`` as numpy does.
    """
    if np.asarray(a).size == 0:
        return _nan_like_reduction(a, **kwargs)
    return _silent(np.nanmin, a, **kwargs)


def nanmax(a, **kwargs):
    """``np.nanmax`` that returns NaN for empty slices without warning.

    Zero-size inputs (an empty time window) return NaN instead of
    raising ``ValueError`` as numpy does.
    """
    if np.asarray(a).size == 0:
        return _nan_like_reduction(a, **kwargs)
    return _silent(np.nanmax, a, **kwargs)
