"""Time-series container and statistics used by every analysis.

:class:`TimeSeries` wraps a timestamp vector plus a value array that is
either 1-D (system-level series) or 2-D ``(time, rack)`` (per-rack
series).  It offers exactly the operations the paper's analyses need:

* bucketed resampling (mean/median) onto coarser grids,
* calendar group-bys (by year, month, weekday, hour),
* linear trend fits (the red lines of Fig 2),
* rolling means, and
* reduction across the rack axis.

All operations return new objects; series are immutable by convention.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro import timeutil
from repro.telemetry import nanstats


@dataclasses.dataclass(frozen=True)
class LinearFit:
    """A least-squares line ``value = slope * t + intercept``.

    ``slope`` is per *year* when fitted via :func:`linear_fit` on epoch
    timestamps, which is the natural unit for the Fig 2 trends.
    """

    slope_per_year: float
    intercept_at_start: float
    start_epoch_s: float

    def predict(self, epoch_s: np.ndarray) -> np.ndarray:
        """Evaluate the fitted line at the given timestamps."""
        t_years = (np.asarray(epoch_s) - self.start_epoch_s) / timeutil.YEAR_S
        return self.intercept_at_start + self.slope_per_year * t_years


def linear_fit(epoch_s: np.ndarray, values: np.ndarray) -> LinearFit:
    """Least-squares linear trend of a series against time.

    Raises:
        ValueError: if fewer than two finite points are available.
    """
    t = np.asarray(epoch_s, dtype="float64")
    v = np.asarray(values, dtype="float64")
    mask = np.isfinite(v)
    if mask.sum() < 2:
        raise ValueError("need at least two finite points for a linear fit")
    t, v = t[mask], v[mask]
    start = float(t[0])
    t_years = (t - start) / timeutil.YEAR_S
    slope, intercept = np.polyfit(t_years, v, 1)
    return LinearFit(
        slope_per_year=float(slope),
        intercept_at_start=float(intercept),
        start_epoch_s=start,
    )


class TimeSeries:
    """An immutable (timestamps, values) pair with analysis helpers.

    Args:
        epoch_s: Monotonically non-decreasing timestamps, shape (n,).
        values: Shape (n,) for a system-level series or (n, racks) for
            a per-rack series.
        name: Optional label carried through operations.
        unit: Optional unit string carried through operations.
    """

    def __init__(
        self,
        epoch_s: np.ndarray,
        values: np.ndarray,
        name: str = "",
        unit: str = "",
    ) -> None:
        epoch = np.asarray(epoch_s, dtype="float64")
        vals = np.asarray(values, dtype="float64")
        if epoch.ndim != 1:
            raise ValueError(f"timestamps must be 1-D, got shape {epoch.shape}")
        if vals.shape[0] != epoch.shape[0]:
            raise ValueError(
                f"length mismatch: {epoch.shape[0]} timestamps vs "
                f"{vals.shape[0]} values"
            )
        if vals.ndim not in (1, 2):
            raise ValueError(f"values must be 1-D or 2-D, got shape {vals.shape}")
        if epoch.size > 1 and np.any(np.diff(epoch) < 0):
            raise ValueError("timestamps must be non-decreasing")
        self._epoch = epoch
        self._values = vals
        self.name = name
        self.unit = unit

    # -- basic access ---------------------------------------------------------

    @property
    def epoch_s(self) -> np.ndarray:
        return self._epoch

    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def is_per_rack(self) -> bool:
        return self._values.ndim == 2

    def __len__(self) -> int:
        return int(self._epoch.shape[0])

    def _like(self, epoch: np.ndarray, values: np.ndarray) -> "TimeSeries":
        return TimeSeries(epoch, values, name=self.name, unit=self.unit)

    # -- slicing --------------------------------------------------------------

    def between(self, start_epoch_s: float, end_epoch_s: float) -> "TimeSeries":
        """Restrict to ``start <= t < end``."""
        mask = (self._epoch >= start_epoch_s) & (self._epoch < end_epoch_s)
        return self._like(self._epoch[mask], self._values[mask])

    def rack(self, flat_index: int) -> "TimeSeries":
        """Extract one rack's 1-D series from a per-rack series."""
        if not self.is_per_rack:
            raise ValueError("series is not per-rack")
        return self._like(self._epoch, self._values[:, flat_index])

    # -- reductions -----------------------------------------------------------

    def across_racks(self, reducer: str = "mean") -> "TimeSeries":
        """Reduce the rack axis, keeping the time axis.

        Args:
            reducer: "mean", "median", "sum", "min", or "max".
        """
        if not self.is_per_rack:
            raise ValueError("series is not per-rack")
        func = _REDUCERS[reducer]
        return self._like(self._epoch, func(self._values, axis=1))

    def per_rack_mean(self) -> np.ndarray:
        """Time-average of each rack: the spatial profile (Figs 6/7/9)."""
        if not self.is_per_rack:
            raise ValueError("series is not per-rack")
        return nanstats.nanmean(self._values, axis=0)

    def overall_std(self) -> float:
        """Standard deviation over all samples (the Fig 3/8 captions)."""
        return float(nanstats.nanstd(self._values))

    def overall_mean(self) -> float:
        """Mean over all samples."""
        return float(nanstats.nanmean(self._values))

    def coverage(self) -> float:
        """Fraction of cells holding a finite value (data completeness)."""
        if self._values.size == 0:
            return 0.0
        return float(np.isfinite(self._values).mean())

    # -- resampling -----------------------------------------------------------

    def resample(self, bucket_s: float, reducer: str = "mean") -> "TimeSeries":
        """Bucket the series onto a coarser regular grid.

        Bucket timestamps are the bucket starts.  Empty buckets are
        dropped.
        """
        if bucket_s <= 0:
            raise ValueError(f"bucket must be positive, got {bucket_s}")
        if len(self) == 0:
            return self._like(self._epoch, self._values)
        start = self._epoch[0]
        bucket_index = ((self._epoch - start) // bucket_s).astype(np.int64)
        return self._group_reduce(
            bucket_index, reducer, lambda b: start + b * bucket_s
        )

    def _group_reduce(
        self,
        keys: np.ndarray,
        reducer: str,
        key_to_epoch: Callable[[np.ndarray], np.ndarray],
    ) -> "TimeSeries":
        unique_keys, reduced = _reduce_by_key(keys, self._values, reducer)
        new_epoch = np.asarray(key_to_epoch(unique_keys), dtype="float64")
        return self._like(new_epoch, reduced)

    # -- calendar group-bys -----------------------------------------------------

    def groupby_calendar(
        self, field: str, reducer: str = "median"
    ) -> Dict[int, float]:
        """Reduce the series by a calendar field of its timestamps.

        Args:
            field: "year", "month" (1..12), "weekday" (0=Monday), or
                "hour" (0..23).
            reducer: "mean", "median", "sum", "min", or "max".

        Returns:
            Mapping from field value to the reduced scalar.  Per-rack
            series are first averaged across racks.
        """
        values = (
            nanstats.nanmean(self._values, axis=1) if self.is_per_rack else self._values
        )
        if len(self) == 0:
            return {}
        keys = _CALENDAR_FIELDS[field](self._epoch)
        unique_keys, reduced = _reduce_by_key(keys, values, reducer)
        return {int(k): float(v) for k, v in zip(unique_keys, reduced)}

    # -- smoothing and trends -----------------------------------------------------

    def rolling_mean(self, window: int) -> "TimeSeries":
        """Centered rolling mean over ``window`` samples (edges shrink)."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if len(self) == 0 or window == 1:
            return self._like(self._epoch, self._values)
        half = window // 2
        values = self._values
        if values.ndim == 1:
            values = values[:, None]
        csum = np.cumsum(np.vstack([np.zeros((1, values.shape[1])), values]), axis=0)
        n = len(self)
        lo = np.clip(np.arange(n) - half, 0, n)
        hi = np.clip(np.arange(n) + half + 1, 0, n)
        out = (csum[hi] - csum[lo]) / (hi - lo)[:, None]
        if self._values.ndim == 1:
            out = out[:, 0]
        return self._like(self._epoch, out)

    def trend(self) -> LinearFit:
        """Linear trend of the (rack-averaged) series (the Fig 2 red line)."""
        values = (
            nanstats.nanmean(self._values, axis=1) if self.is_per_rack else self._values
        )
        return linear_fit(self._epoch, values)


def reduce_by_calendar(
    epoch_s: np.ndarray, values: np.ndarray, field: str, reducer: str
) -> Dict[int, np.ndarray]:
    """Calendar group-by of a value matrix over a shared timestamp vector.

    The multi-channel sibling of :meth:`TimeSeries.groupby_calendar`:
    ``values`` may be ``(n,)`` or ``(n, k)`` — with one column per
    channel — and the calendar keys, the stable sort, and the group
    boundaries are computed *once* for all columns.

    Returns:
        Mapping from calendar field value to the reduced row (scalar
        for 1-D input, ``(k,)`` for matrix input).
    """
    epoch = np.asarray(epoch_s, dtype="float64")
    if epoch.size == 0:
        return {}
    keys = _CALENDAR_FIELDS[field](epoch)
    unique_keys, reduced = _reduce_by_key(keys, np.asarray(values, dtype="float64"), reducer)
    return {int(k): reduced[i] for i, k in enumerate(unique_keys)}


def _reduce_by_key(
    keys: np.ndarray, values: np.ndarray, reducer: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Group ``values`` rows by ``keys`` and reduce each group.

    One stable sort + ``ufunc.reduceat`` over the group boundaries
    replaces the per-key boolean-mask scan (O(n · groups)) the
    calendar group-bys and resampling used to do.  Median has no
    reduceat ufunc, so it keeps a per-*group* loop over the sorted
    slabs (still one pass over the data).

    Semantics match the ``nanstats`` reducers: NaNs are ignored, a
    group with no finite value reduces to NaN (``sum``: 0), and no
    RuntimeWarning is ever emitted.

    Returns:
        (unique keys ascending, reduced rows aligned to them).
    """
    if reducer not in _REDUCERS:
        raise KeyError(reducer)
    if keys.size == 0:
        return keys, values
    order = np.argsort(keys, kind="stable")
    sorted_vals = values[order]
    unique_keys, starts = np.unique(keys[order], return_index=True)
    if reducer == "median":
        boundaries = np.append(starts, len(keys))
        reduced = np.stack(
            [
                nanstats.nanmedian(sorted_vals[boundaries[i] : boundaries[i + 1]], axis=0)
                for i in range(len(unique_keys))
            ],
            axis=0,
        )
        return unique_keys, reduced
    finite = np.isfinite(sorted_vals)
    counts = np.add.reduceat(finite.astype("float64"), starts, axis=0)
    if reducer in ("sum", "mean"):
        sums = np.add.reduceat(np.where(finite, sorted_vals, 0.0), starts, axis=0)
        if reducer == "sum":
            return unique_keys, sums
        return unique_keys, np.divide(
            sums, counts, out=np.full_like(sums, np.nan), where=counts > 0
        )
    fill = np.inf if reducer == "min" else -np.inf
    ufunc = np.minimum if reducer == "min" else np.maximum
    extremes = ufunc.reduceat(np.where(finite, sorted_vals, fill), starts, axis=0)
    return unique_keys, np.where(counts > 0, extremes, np.nan)


_REDUCERS: Dict[str, Callable[..., np.ndarray]] = {
    "mean": nanstats.nanmean,
    "median": nanstats.nanmedian,
    "sum": nanstats.nansum,
    "min": nanstats.nanmin,
    "max": nanstats.nanmax,
}

_CALENDAR_FIELDS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "year": timeutil.years,
    "month": timeutil.months,
    "weekday": timeutil.weekdays,
    "hour": timeutil.hours_of_day,
}
