"""Chunked content addressing for telemetry stores.

The incremental-analytics layer needs a cheap, stable answer to "is
this exact dataset the one my cached result was computed from?".  A
single sha256 over every column would answer it, but would cost a full
rehash after every append — the common case for a live store is *new
rows at the tail, nothing else changed*.

So the address is Merkle-style: the row axis is cut into fixed
``DIGEST_CHUNK_ROWS`` ranges, each chunk is hashed over the timestamp
vector plus every channel's values *and quality flags* for those rows,
and the root digest hashes the ordered chunk digests plus the store
geometry.  Full chunks are immutable under append-only growth, so
their digests are cached on the database and appending N rows rehashes
only the (partial) tail chunk.  Mutating an already-committed cell —
a scrubber escalating quality, a lenient-ingest duplicate merge —
invalidates exactly the chunks it touched.

The functions here are pure (array slices in, hex digests out); the
chunk cache and its invalidation live on
:class:`~repro.telemetry.database.EnvironmentalDatabase`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.telemetry.records import CHANNELS, Channel

#: Rows per digest chunk.  Hourly cadence makes this ~5.6 months per
#: chunk; a six-year canonical run is 13 chunks.
DIGEST_CHUNK_ROWS = 4096

#: Bump when the hash layout changes: every digest becomes new, every
#: cached section entry keyed by an old root silently misses.
DIGEST_VERSION = 1


@dataclasses.dataclass(frozen=True)
class DigestInfo:
    """One content address of a telemetry store, with its chunk layout.

    Attributes:
        root: The root digest (hex) — the dataset's content address.
        rows: Committed rows covered by the digest.
        num_racks: Width of the rack axis.
        chunk_rows: Rows per chunk.
        chunk_hashes: Per-chunk digests in row order; the last entry
            covers the partial tail chunk when ``rows`` is not a
            multiple of ``chunk_rows``.
        hashed_chunks: Chunks actually rehashed by this call.
        reused_chunks: Chunks answered from the database's chunk cache.
    """

    root: str
    rows: int
    num_racks: int
    chunk_rows: int
    chunk_hashes: Tuple[str, ...]
    hashed_chunks: int
    reused_chunks: int

    @property
    def num_chunks(self) -> int:
        return len(self.chunk_hashes)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (for ``/metrics`` and ``--stats``)."""
        return {
            "root": self.root,
            "rows": self.rows,
            "chunk_rows": self.chunk_rows,
            "chunks": self.num_chunks,
            "hashed_chunks": self.hashed_chunks,
            "reused_chunks": self.reused_chunks,
        }


def chunk_count(rows: int, chunk_rows: int) -> int:
    """Number of chunks covering ``rows`` (0 rows -> 0 chunks)."""
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    return (rows + chunk_rows - 1) // chunk_rows


def hash_block(
    epoch_s: np.ndarray,
    values: Dict[Channel, np.ndarray],
    quality: Dict[Channel, np.ndarray],
    ) -> str:
    """sha256 over one contiguous row range of the whole store.

    Hashes the raw little-endian bytes of the timestamp slice and, per
    channel in canonical schema order, the value matrix slice and the
    parallel quality-flag slice.  Quality is part of the address on
    purpose: a scrubber pass changes what every coverage-aware
    aggregate computes, so it must change the dataset identity even
    though no float moved.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(epoch_s, dtype="<f8").tobytes())
    for channel in CHANNELS:
        digest.update(np.ascontiguousarray(values[channel], dtype="<f8").tobytes())
        digest.update(np.ascontiguousarray(quality[channel], dtype=np.uint8).tobytes())
    return digest.hexdigest()


def root_digest(
    rows: int, num_racks: int, chunk_rows: int, chunk_hashes: Sequence[str]
) -> str:
    """Combine ordered chunk digests and store geometry into the root."""
    digest = hashlib.sha256()
    header = (
        f"repro-dataset-digest-v{DIGEST_VERSION}\n"
        f"rows={rows}\nracks={num_racks}\nchunk_rows={chunk_rows}\n"
        f"channels={','.join(ch.column for ch in CHANNELS)}\n"
    )
    digest.update(header.encode())
    for chunk in chunk_hashes:
        digest.update(bytes.fromhex(chunk))
    return digest.hexdigest()
