"""Data-quality scrubbing for facility telemetry.

Operational-data-analytics deployments report that real facility
streams are full of *plausible-looking garbage*: sensors stick at the
last value before dying, transient electrical noise produces
single-sample spikes, and whole collection windows go missing.  This
module detects those patterns and records the verdicts in the
database's per-channel quality masks
(:meth:`~repro.telemetry.database.EnvironmentalDatabase.update_quality`):

* **stuck runs** — ``min_run`` or more consecutive *identical* values
  on one rack-channel (real sensors always jitter) — flagged
  ``SUSPECT``;
* **transient spikes** — a single sample deviating from *both*
  neighbors in the same direction by more than ``spike_threshold_sigma``
  robust standard deviations — flagged ``SCRUBBED``;
* **gaps** — sample spacing larger than ``gap_factor`` times the
  nominal cadence — reported (a gap has no cells to flag; the missing
  rows simply do not exist).

Detection is intentionally conservative: the thresholds are calibrated
so that the simulator's own sensor noise is essentially never flagged
(false-positive rate well under 0.1 %), while injected faults at the
magnitudes of :mod:`repro.faults` are caught at high rates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.telemetry import nanstats
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import CHANNELS, Channel, Quality


@dataclasses.dataclass(frozen=True)
class ScrubPolicy:
    """Detection thresholds for the telemetry scrubber."""

    #: Minimum length (in samples) of an identical-value run to flag.
    stuck_min_run: int = 6
    #: Spike threshold in robust (MAD-based) standard deviations.
    spike_threshold_sigma: float = 6.0
    #: A sample gap longer than this multiple of the nominal cadence
    #: is reported as a telemetry gap.
    gap_factor: float = 1.5
    #: Floor on the per-rack noise scale, guarding against zero-MAD
    #: channels (e.g. a constant utilization column).
    min_sigma: float = 1e-6

    def __post_init__(self) -> None:
        if self.stuck_min_run < 2:
            raise ValueError("stuck_min_run must be at least 2")
        if self.spike_threshold_sigma <= 0:
            raise ValueError("spike threshold must be positive")
        if self.gap_factor <= 1.0:
            raise ValueError("gap_factor must exceed 1.0")


@dataclasses.dataclass(frozen=True)
class Gap:
    """One detected telemetry gap."""

    start_epoch_s: float
    end_epoch_s: float
    #: Estimated number of whole-floor samples lost in the gap.
    missing_samples: int

    @property
    def duration_s(self) -> float:
        return self.end_epoch_s - self.start_epoch_s


@dataclasses.dataclass(frozen=True)
class ChannelScrubStats:
    """Per-channel outcome of one scrub pass."""

    channel: Channel
    stuck_cells: int
    spike_cells: int
    missing_cells: int


@dataclasses.dataclass(frozen=True)
class ScrubReport:
    """Everything one scrub pass found and recorded."""

    per_channel: Dict[Channel, ChannelScrubStats]
    gaps: List[Gap]

    @property
    def stuck_cells(self) -> int:
        return sum(s.stuck_cells for s in self.per_channel.values())

    @property
    def spike_cells(self) -> int:
        return sum(s.spike_cells for s in self.per_channel.values())

    @property
    def missing_cells(self) -> int:
        return sum(s.missing_cells for s in self.per_channel.values())

    def summary(self) -> str:
        lines = [
            f"scrub: {self.stuck_cells} stuck, {self.spike_cells} spike, "
            f"{self.missing_cells} missing cells; {len(self.gaps)} gaps"
        ]
        for channel, stats in self.per_channel.items():
            lines.append(
                f"  {channel.column}: stuck={stats.stuck_cells} "
                f"spikes={stats.spike_cells} missing={stats.missing_cells}"
            )
        return "\n".join(lines)


def stuck_mask(values: np.ndarray, min_run: int) -> np.ndarray:
    """Cells belonging to an identical-value run of ``min_run``+ samples.

    NaNs break runs (a missing sample is not *stuck*, it is missing).
    Works on ``(n,)`` or ``(n, racks)`` arrays; returns a boolean mask
    of the same shape.
    """
    v = np.asarray(values, dtype="float64")
    flat = v.ndim == 1
    if flat:
        v = v[:, None]
    n, racks = v.shape
    mask = np.zeros((n, racks), dtype=bool)
    pairs_needed = min_run - 1
    if n >= min_run:
        eq = np.zeros((n, racks), dtype=bool)
        eq[1:] = v[1:] == v[:-1]  # NaN == NaN is False: runs break at holes
        run = np.zeros(racks, dtype=np.int64)
        for i in range(1, n):
            run = np.where(eq[i], run + 1, 0)
            crossing = run == pairs_needed
            if crossing.any():
                # The run just reached threshold: backfill its start.
                for column in np.flatnonzero(crossing):
                    mask[i - pairs_needed : i + 1, column] = True
            mask[i, run > pairs_needed] = True
    return mask[:, 0] if flat else mask


def spike_mask(
    values: np.ndarray,
    threshold_sigma: float = 6.0,
    min_sigma: float = 1e-6,
) -> np.ndarray:
    """Single-sample transients deviating from both neighbors.

    A cell is a spike when it differs from its previous *and* next
    sample in the same direction by more than ``threshold_sigma``
    robust standard deviations (1.4826 x median absolute first
    difference, per rack).  Endpoints are never flagged (no second
    neighbor to confirm against).
    """
    v = np.asarray(values, dtype="float64")
    flat = v.ndim == 1
    if flat:
        v = v[:, None]
    n, racks = v.shape
    mask = np.zeros((n, racks), dtype=bool)
    if n >= 3:
        diffs = np.diff(v, axis=0)
        # Robust per-rack noise scale from first differences; a step of
        # white noise has sqrt(2) the sample sigma.
        sigma = 1.4826 * nanstats.nanmedian(np.abs(diffs), axis=0) / np.sqrt(2.0)
        threshold = threshold_sigma * np.maximum(sigma, min_sigma)
        to_prev = v[1:-1] - v[:-2]
        to_next = v[1:-1] - v[2:]
        mask[1:-1] = (
            (np.abs(to_prev) > threshold)
            & (np.abs(to_next) > threshold)
            & (to_prev * to_next > 0)
        )
    return mask[:, 0] if flat else mask


def find_gaps(
    epoch_s: np.ndarray,
    gap_factor: float = 1.5,
    nominal_dt_s: Optional[float] = None,
) -> List[Gap]:
    """Sample-spacing gaps in a timestamp vector.

    Args:
        epoch_s: Ascending sample timestamps.
        gap_factor: Spacings beyond ``gap_factor * nominal`` are gaps.
        nominal_dt_s: The expected cadence; the median spacing when
            omitted.
    """
    t = np.asarray(epoch_s, dtype="float64")
    if t.shape[0] < 2:
        return []
    dt = np.diff(t)
    nominal = float(nominal_dt_s) if nominal_dt_s else float(np.median(dt))
    if nominal <= 0:
        return []
    gaps = []
    for index in np.flatnonzero(dt > gap_factor * nominal):
        gaps.append(
            Gap(
                start_epoch_s=float(t[index]),
                end_epoch_s=float(t[index + 1]),
                missing_samples=max(int(round(dt[index] / nominal)) - 1, 1),
            )
        )
    return gaps


def scrub_database(
    database: EnvironmentalDatabase,
    policy: Optional[ScrubPolicy] = None,
    channels: Optional[Sequence[Channel]] = None,
) -> ScrubReport:
    """Run the full scrub pass and record verdicts in the quality masks.

    Stuck runs are escalated to ``SUSPECT``, spikes to ``SCRUBBED``;
    cells already flagged (e.g. ``MISSING``) are never relabeled.

    Args:
        database: The store to scrub (masks are updated in place).
        policy: Detection thresholds.
        channels: Channels to scrub; defaults to the sensor channels
            (utilization comes from the scheduler join, not a sensor).

    Returns:
        A :class:`ScrubReport` with per-channel counts and gap list.
    """
    policy = policy if policy is not None else ScrubPolicy()
    if channels is None:
        channels = [ch for ch in CHANNELS if ch.is_sensor]
    per_channel: Dict[Channel, ChannelScrubStats] = {}
    for channel in channels:
        values = database.channel(channel).values
        stuck = stuck_mask(values, policy.stuck_min_run)
        stuck_applied = database.update_quality(channel, stuck, Quality.SUSPECT)
        spikes = spike_mask(
            values, policy.spike_threshold_sigma, policy.min_sigma
        )
        spike_applied = database.update_quality(channel, spikes, Quality.SCRUBBED)
        per_channel[channel] = ChannelScrubStats(
            channel=channel,
            stuck_cells=stuck_applied,
            spike_cells=spike_applied,
            missing_cells=database.missing_cells(channel),
        )
    gaps = find_gaps(database.epoch_s, gap_factor=policy.gap_factor)
    return ScrubReport(per_channel=per_channel, gaps=gaps)
