"""The environmental database: a columnar store for monitor telemetry.

Stands in for Mira's IBM DB2 environmental database.  Samples arrive as
*blocks*: one timestamp plus a vector of 48 per-rack values for each
channel (the vectorized simulator emits whole-floor snapshots).  The
store keeps each channel as a growable ``(time, rack)`` matrix and
serves the query shapes the analyses need: whole-channel
:class:`~repro.telemetry.series.TimeSeries`, single-rack series, time
windows, and system-level aggregates.

Single :class:`~repro.cooling.monitor.SensorReading` records can also
be ingested (the slow path used when exercising the monitor objects
directly).

Data quality
------------

Production facility telemetry is not pristine: readings arrive late,
twice, or never.  Two mechanisms make the store robust to that:

* an **ingest policy** (:class:`IngestPolicy`).  The default,
  *strict*, policy preserves the historical contract — out-of-order
  samples raise ``ValueError``.  A *lenient* policy instead holds
  late-but-close samples in a bounded reorder buffer, resolves
  duplicate timestamps (first/last/merge), drops hopelessly late rows,
  and counts every degraded decision in :class:`IngestCounters`;
* per-channel **quality masks** — a ``uint8``
  :class:`~repro.telemetry.records.Quality` matrix parallel to each
  value matrix, marking every cell ``ok``/``missing`` at ingest and
  letting the scrubber (:mod:`repro.telemetry.quality`) escalate cells
  to ``suspect``/``scrubbed`` later.

All query accessors return arrays with ``writeable=False`` so callers
cannot silently corrupt the store.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import constants
from repro.facility.topology import RackId
from repro.telemetry import nanstats
from repro.telemetry.digest import (
    DIGEST_CHUNK_ROWS,
    DigestInfo,
    chunk_count,
    hash_block,
    root_digest,
)
from repro.telemetry.records import CHANNELS, Channel, Quality
from repro.telemetry.series import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # Imported only for annotations: a module-level import would close
    # the cycle telemetry.database -> cooling -> cooling.balancer ->
    # telemetry.database and make ``import repro.telemetry`` order-
    # dependent.
    from repro.cooling.monitor import SensorReading

#: Duplicate-timestamp resolutions available to a lenient policy.
_DUPLICATE_POLICIES = ("first", "last", "merge")


@dataclasses.dataclass(frozen=True)
class IngestPolicy:
    """How the database treats imperfectly delivered samples.

    Attributes:
        strict: With the default strict policy the database behaves as
            it always has: out-of-order samples raise ``ValueError``
            and equal timestamps append as distinct rows.  A lenient
            policy (``strict=False``) never raises on delivery-order
            problems.
        reorder_window_s: Lenient only — samples no older than the
            newest seen timestamp minus this window are buffered and
            committed in timestamp order; older samples are dropped
            (and counted).
        duplicate_policy: Lenient only — what to do when a sample's
            timestamp matches a stored or buffered row: ``"first"``
            keeps the original, ``"last"`` overwrites with the new
            values, ``"merge"`` fills only the cells the original is
            missing.
    """

    strict: bool = True
    reorder_window_s: float = 0.0
    duplicate_policy: str = "merge"

    def __post_init__(self) -> None:
        if self.reorder_window_s < 0:
            raise ValueError("reorder window cannot be negative")
        if self.duplicate_policy not in _DUPLICATE_POLICIES:
            raise ValueError(
                f"duplicate_policy must be one of {_DUPLICATE_POLICIES}, "
                f"got {self.duplicate_policy!r}"
            )

    @staticmethod
    def lenient(
        reorder_window_s: float = 0.0, duplicate_policy: str = "merge"
    ) -> "IngestPolicy":
        """A non-raising policy for realistically faulty streams."""
        return IngestPolicy(
            strict=False,
            reorder_window_s=reorder_window_s,
            duplicate_policy=duplicate_policy,
        )


@dataclasses.dataclass
class IngestCounters:
    """Observability counters for every degraded ingest decision."""

    #: Rows committed to the store (pending rows count on commit).
    accepted_rows: int = 0
    #: Rows that arrived behind a newer timestamp and were re-sorted.
    reordered_rows: int = 0
    #: Rows whose timestamp matched an existing row and were resolved.
    duplicate_rows: int = 0
    #: Rows older than the reorder window, dropped outright.
    dropped_late_rows: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


def _readonly(array: np.ndarray) -> np.ndarray:
    """A non-writable view of ``array`` (the base stays writable)."""
    view = array[...]
    view.flags.writeable = False
    return view


class EnvironmentalDatabase:
    """In-memory columnar telemetry store.

    Args:
        num_racks: Width of the rack axis (48 for Mira).
        capacity_hint: Expected number of samples; preallocating
            avoids repeated growth for long simulations.
        policy: Ingest policy; defaults to the historical strict
            contract.
    """

    def __init__(
        self,
        num_racks: int = constants.NUM_RACKS,
        capacity_hint: int = 1024,
        policy: Optional[IngestPolicy] = None,
    ) -> None:
        if num_racks <= 0:
            raise ValueError("num_racks must be positive")
        self._num_racks = num_racks
        self._capacity = max(16, capacity_hint)
        self._size = 0
        self._epoch = np.empty(self._capacity, dtype="float64")
        self._columns: Dict[Channel, np.ndarray] = {
            ch: np.full((self._capacity, num_racks), np.nan) for ch in CHANNELS
        }
        self._quality: Optional[Dict[Channel, np.ndarray]] = {
            ch: np.full(
                (self._capacity, num_racks), int(Quality.MISSING), dtype=np.uint8
            )
            for ch in CHANNELS
        }
        self._derived_quality: Dict[Channel, np.ndarray] = {}
        self.policy = policy if policy is not None else IngestPolicy()
        self.counters = IngestCounters()
        #: Arrived-but-uncommitted rows (lenient reorder buffer).
        self._pending: List[Tuple[float, Dict[Channel, np.ndarray]]] = []
        #: Newest timestamp ever seen (committed or pending).
        self._watermark = -np.inf

    # -- ingest ---------------------------------------------------------------

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        new_epoch = np.empty(new_capacity, dtype="float64")
        new_epoch[: self._size] = self._epoch[: self._size]
        self._epoch = new_epoch
        for channel, column in self._columns.items():
            new_column = np.full((new_capacity, self._num_racks), np.nan)
            new_column[: self._size] = column[: self._size]
            self._columns[channel] = new_column
        if self._quality is not None:
            for channel, matrix in self._quality.items():
                new_matrix = np.full(
                    (new_capacity, self._num_racks),
                    int(Quality.MISSING),
                    dtype=np.uint8,
                )
                new_matrix[: self._size] = matrix[: self._size]
                self._quality[channel] = new_matrix
        self._capacity = new_capacity

    def _validate_row(
        self, channel_values: Dict[Channel, np.ndarray]
    ) -> Dict[Channel, np.ndarray]:
        validated = {}
        for channel, vector in channel_values.items():
            values = np.array(vector, dtype="float64", copy=True)
            if values.shape != (self._num_racks,):
                raise ValueError(
                    f"{channel}: expected shape ({self._num_racks},), got {values.shape}"
                )
            validated[channel] = values
        return validated

    def _append_row(
        self, epoch_s: float, channel_values: Dict[Channel, np.ndarray]
    ) -> None:
        """Commit one validated row at the end of the store."""
        if self._size == self._capacity:
            self._grow()
        index = self._size
        self._epoch[index] = epoch_s
        for channel, values in channel_values.items():
            self._columns[channel][index] = values
            if self._quality is not None:
                self._quality[channel][index] = np.where(
                    np.isfinite(values), int(Quality.OK), int(Quality.MISSING)
                )
        self._size += 1
        self.counters.accepted_rows += 1

    def append_snapshot(
        self, epoch_s: float, channel_values: Dict[Channel, np.ndarray]
    ) -> None:
        """Append one whole-floor sample.

        Args:
            epoch_s: Sample timestamp.  Under the strict policy it must
                not precede the last one; a lenient policy buffers,
                reorders, deduplicates, or drops it instead.
            channel_values: Per-channel vectors of length ``num_racks``.
                Channels not supplied are stored as NaN (quality
                ``missing``).

        Raises:
            ValueError: on wrong-width vectors; under the strict
                policy, also on out-of-order timestamps.
        """
        validated = self._validate_row(channel_values)
        if self.policy.strict:
            if self._size > 0 and epoch_s < self._epoch[self._size - 1]:
                raise ValueError(
                    f"out-of-order snapshot: {epoch_s} after "
                    f"{self._epoch[self._size - 1]}"
                )
            self._append_row(epoch_s, validated)
            self._watermark = max(self._watermark, epoch_s)
            return
        self._lenient_ingest(float(epoch_s), validated)

    def _lenient_ingest(
        self, epoch_s: float, validated: Dict[Channel, np.ndarray]
    ) -> None:
        # Duplicate of a buffered row?
        for i, (pending_epoch, pending_values) in enumerate(self._pending):
            if pending_epoch == epoch_s:
                self._pending[i] = (
                    pending_epoch,
                    self._merge_rows(pending_values, validated),
                )
                self.counters.duplicate_rows += 1
                return
        last_committed = self._epoch[self._size - 1] if self._size else -np.inf
        if epoch_s <= last_committed:
            # Duplicate of a committed row, or hopelessly late.
            index = int(np.searchsorted(self._epoch[: self._size], epoch_s))
            if index < self._size and self._epoch[index] == epoch_s:
                self._merge_committed(index, validated)
                self.counters.duplicate_rows += 1
            else:
                self.counters.dropped_late_rows += 1
            return
        if epoch_s < self._watermark:
            self.counters.reordered_rows += 1
        self._pending.append((epoch_s, validated))
        self._watermark = max(self._watermark, epoch_s)
        self._commit_ready()

    def _merge_rows(
        self,
        existing: Dict[Channel, np.ndarray],
        incoming: Dict[Channel, np.ndarray],
    ) -> Dict[Channel, np.ndarray]:
        """Resolve two rows with the same timestamp per the policy."""
        mode = self.policy.duplicate_policy
        if mode == "first":
            return existing
        if mode == "last":
            merged = dict(existing)
            merged.update(incoming)
            return merged
        merged = dict(existing)
        for channel, values in incoming.items():
            current = merged.get(channel)
            if current is None:
                merged[channel] = values
            else:
                holes = ~np.isfinite(current)
                if holes.any():
                    filled = current.copy()
                    filled[holes] = values[holes]
                    merged[channel] = filled
        return merged

    def _merge_committed(
        self, index: int, incoming: Dict[Channel, np.ndarray]
    ) -> None:
        """Resolve a duplicate against an already-committed row."""
        mode = self.policy.duplicate_policy
        if mode == "first":
            return
        for channel, values in incoming.items():
            column = self._columns[channel]
            if mode == "last":
                column[index] = values
            else:  # merge: fill only the holes
                holes = ~np.isfinite(column[index])
                if holes.any():
                    column[index, holes] = values[holes]
            if self._quality is not None:
                self._quality[channel][index] = np.where(
                    np.isfinite(column[index]),
                    int(Quality.OK),
                    int(Quality.MISSING),
                )
        self._invalidate_digest_rows(index, index + 1)

    def _commit_ready(self, force: bool = False) -> None:
        """Commit buffered rows that can no longer be reordered."""
        if not self._pending:
            return
        cutoff = (
            np.inf if force else self._watermark - self.policy.reorder_window_s
        )
        ready = [row for row in self._pending if row[0] <= cutoff]
        if not ready:
            return
        self._pending = [row for row in self._pending if row[0] > cutoff]
        ready.sort(key=lambda row: row[0])
        for epoch_s, values in ready:
            self._append_row(epoch_s, values)

    def flush(self) -> None:
        """Commit every buffered row (end of stream, or before a query)."""
        self._commit_ready(force=True)

    def append_block(
        self, epoch_s: np.ndarray, channel_values: Dict[Channel, np.ndarray]
    ) -> None:
        """Append a whole block of samples in one bulk write.

        The fast path for the vectorized simulation engine: one call
        ingests ``(steps, racks)`` matrices per channel instead of
        ``steps`` dict-validated rows.  Under a lenient policy the
        block is routed row-by-row through the reorder/duplicate
        machinery instead.

        Args:
            epoch_s: Sample timestamps, shape ``(steps,)``; under the
                strict policy they must be ascending and the first must
                not precede the last stored sample.
            channel_values: Per-channel matrices of shape
                ``(steps, num_racks)``.  Channels not supplied are
                stored as NaN.

        Raises:
            ValueError: on wrong-shape matrices; under the strict
                policy, also on out-of-order timestamps.
        """
        epochs = np.asarray(epoch_s, dtype="float64")
        if epochs.ndim != 1:
            raise ValueError(f"epoch_s must be 1-D, got shape {epochs.shape}")
        count = epochs.shape[0]
        if count == 0:
            return
        matrices = {}
        for channel, values in channel_values.items():
            matrix = np.asarray(values, dtype="float64")
            if matrix.shape != (count, self._num_racks):
                raise ValueError(
                    f"{channel}: expected shape ({count}, {self._num_racks}), "
                    f"got {matrix.shape}"
                )
            matrices[channel] = matrix
        if not self.policy.strict:
            for i in range(count):
                self._lenient_ingest(
                    float(epochs[i]),
                    {ch: matrix[i].copy() for ch, matrix in matrices.items()},
                )
            return
        if np.any(np.diff(epochs) < 0):
            raise ValueError("block timestamps must be non-decreasing")
        if self._size > 0 and epochs[0] < self._epoch[self._size - 1]:
            raise ValueError(
                f"out-of-order block: {epochs[0]} after {self._epoch[self._size - 1]}"
            )
        while self._size + count > self._capacity:
            self._grow()
        start, end = self._size, self._size + count
        self._epoch[start:end] = epochs
        for channel, matrix in matrices.items():
            self._columns[channel][start:end] = matrix
            if self._quality is not None:
                self._quality[channel][start:end] = np.where(
                    np.isfinite(matrix), int(Quality.OK), int(Quality.MISSING)
                )
        self._size = end
        self.counters.accepted_rows += count
        self._watermark = max(self._watermark, float(epochs[-1]))

    def ingest_reading(
        self, reading: "SensorReading", utilization: float = np.nan
    ) -> None:
        """Ingest a single-rack :class:`SensorReading` (slow path).

        Creates a new snapshot row in which all racks other than the
        reading's are NaN.  Under a lenient ``merge`` policy, readings
        from *different* racks at the same timestamp merge into one
        row.  Intended for unit tests and small-scale monitor
        exercises, not the bulk simulation path.
        """
        row = {
            Channel.DC_TEMPERATURE: reading.dc_temperature_f,
            Channel.DC_HUMIDITY: reading.dc_humidity_rh,
            Channel.FLOW: reading.flow_gpm,
            Channel.INLET_TEMPERATURE: reading.inlet_temperature_f,
            Channel.OUTLET_TEMPERATURE: reading.outlet_temperature_f,
            Channel.POWER: reading.power_kw,
            Channel.UTILIZATION: utilization,
        }
        snapshot = {}
        for channel, value in row.items():
            vector = np.full(self._num_racks, np.nan)
            vector[reading.rack_id.flat_index] = value
            snapshot[channel] = vector
        self.append_snapshot(reading.epoch_s, snapshot)

    # -- queries ---------------------------------------------------------------

    @property
    def num_samples(self) -> int:
        self.flush()
        return self._size

    @property
    def committed_samples(self) -> int:
        """Rows committed so far, **without** flushing the reorder buffer.

        :attr:`num_samples` force-commits pending rows first, which is
        right for end-of-stream queries but wrong for a live ingest
        path that must let the reorder window keep doing its job.  The
        HTTP ingest gateway polls this to learn how many rows are
        final and safe to fold into downstream rollups.
        """
        return self._size

    def committed_rows(
        self, start: int, stop: int
    ) -> Tuple[np.ndarray, Dict[Channel, np.ndarray], Dict[Channel, np.ndarray]]:
        """Read-only views of committed rows ``[start, stop)``, no flush.

        Returns ``(epoch_s, values, quality)`` shaped like one
        :meth:`iter_blocks` item.  Unlike the query accessors this does
        not force-commit the lenient reorder buffer, so a live ingest
        path can hand finalized rows to rollups while late samples are
        still in flight.

        Raises:
            IndexError: when the range reaches past the committed rows.
        """
        if not 0 <= start <= stop <= self._size:
            raise IndexError(
                f"committed rows [{start}, {stop}) out of range "
                f"(committed: {self._size})"
            )
        epochs = _readonly(self._epoch[start:stop])
        values = {ch: _readonly(self._columns[ch][start:stop]) for ch in CHANNELS}
        quality = {
            ch: _readonly(self._quality_matrix(ch)[start:stop]) for ch in CHANNELS
        }
        return epochs, values, quality

    @property
    def num_racks(self) -> int:
        return self._num_racks

    def __len__(self) -> int:
        return self.num_samples

    @property
    def epoch_s(self) -> np.ndarray:
        """All sample timestamps (read-only)."""
        self.flush()
        return _readonly(self._epoch[: self._size])

    def channel(self, channel: Channel) -> TimeSeries:
        """Full per-rack series for one channel (values read-only)."""
        self.flush()
        return TimeSeries(
            _readonly(self._epoch[: self._size]),
            _readonly(self._columns[channel][: self._size]),
            name=channel.column,
            unit=channel.unit,
        )

    def rack_channel(self, channel: Channel, rack_id: RackId) -> TimeSeries:
        """One rack's series for one channel (values read-only)."""
        self.flush()
        return TimeSeries(
            _readonly(self._epoch[: self._size]),
            _readonly(self._columns[channel][: self._size, rack_id.flat_index]),
            name=f"{channel.column}@{rack_id.label}",
            unit=channel.unit,
        )

    def window(
        self, channel: Channel, start_epoch_s: float, end_epoch_s: float
    ) -> TimeSeries:
        """Per-rack series for a channel restricted to a time window.

        An empty window (no samples in ``[start, end)``) returns an
        empty series; downstream aggregates reduce it to NaN without
        raising or warning.
        """
        return self.channel(channel).between(start_epoch_s, end_epoch_s)

    def iter_snapshots(
        self,
        start_epoch_s: float = -np.inf,
        end_epoch_s: float = np.inf,
    ) -> Iterator[Tuple[float, Dict[Channel, np.ndarray], Dict[Channel, np.ndarray]]]:
        """Yield committed rows in timestamp order as whole-floor snapshots.

        Each item is ``(epoch_s, values, quality)`` where ``values``
        maps every channel to its length-``num_racks`` vector and
        ``quality`` to the parallel :class:`Quality` flags.  Vectors
        are read-only views into the store — consumers that hold onto
        them across iterations must copy.

        This is the replay surface used by
        :class:`repro.service.ReplayBus` to re-stream a finished
        realization as live telemetry.
        """
        self.flush()
        epochs = self._epoch[: self._size]
        lo = int(np.searchsorted(epochs, start_epoch_s, side="left"))
        hi = int(np.searchsorted(epochs, end_epoch_s, side="left"))
        columns = {ch: self._columns[ch] for ch in CHANNELS}
        qualities = {ch: self._quality_matrix(ch) for ch in CHANNELS}
        for i in range(lo, hi):
            values = {ch: _readonly(columns[ch][i]) for ch in CHANNELS}
            quality = {ch: _readonly(qualities[ch][i]) for ch in CHANNELS}
            yield float(epochs[i]), values, quality

    def iter_blocks(
        self,
        block_size: int,
        start_epoch_s: float = -np.inf,
        end_epoch_s: float = np.inf,
    ) -> Iterator[
        Tuple[np.ndarray, Dict[Channel, np.ndarray], Dict[Channel, np.ndarray]]
    ]:
        """Yield committed rows as contiguous columnar blocks.

        Each item is ``(epoch_s, values, quality)`` where ``epoch_s``
        is a ``(timesteps,)`` slice of the timestamp column and
        ``values``/``quality`` map every channel to the matching
        ``(timesteps, num_racks)`` slice of its column matrix.  All
        arrays are zero-copy read-only views into the store — no row
        materialization, no dict-per-sample allocation.

        This is the chunked replay surface used by
        :class:`repro.service.ReplayBus`;
        :meth:`iter_snapshots` remains the per-row equivalent.
        """
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.flush()
        epochs = self._epoch[: self._size]
        lo = int(np.searchsorted(epochs, start_epoch_s, side="left"))
        hi = int(np.searchsorted(epochs, end_epoch_s, side="left"))
        columns = {ch: self._columns[ch] for ch in CHANNELS}
        qualities = {ch: self._quality_matrix(ch) for ch in CHANNELS}
        for i in range(lo, hi, block_size):
            j = min(i + block_size, hi)
            values = {ch: _readonly(columns[ch][i:j]) for ch in CHANNELS}
            quality = {ch: _readonly(qualities[ch][i:j]) for ch in CHANNELS}
            yield _readonly(epochs[i:j]), values, quality

    # -- quality ---------------------------------------------------------------

    def _quality_matrix(self, channel: Channel) -> np.ndarray:
        """The live (writable) quality matrix for one channel."""
        if self._quality is not None:
            return self._quality[channel][: self._size]
        # Archived stores carry no quality files; derive from NaN-ness
        # once and cache so scrubbers can still annotate in memory.
        cached = self._derived_quality.get(channel)
        if cached is None or cached.shape[0] != self._size:
            values = self._columns[channel][: self._size]
            cached = np.where(
                np.isfinite(values), int(Quality.OK), int(Quality.MISSING)
            ).astype(np.uint8)
            self._derived_quality[channel] = cached
        return cached

    def quality(self, channel: Channel) -> np.ndarray:
        """Per-cell :class:`Quality` flags, shape ``(n, racks)`` (read-only)."""
        self.flush()
        return _readonly(self._quality_matrix(channel))

    def rack_quality(self, channel: Channel, rack_id: RackId) -> np.ndarray:
        """One rack's :class:`Quality` flags, shape ``(n,)`` (read-only)."""
        self.flush()
        return _readonly(self._quality_matrix(channel)[:, rack_id.flat_index])

    def update_quality(
        self,
        channel: Channel,
        mask: np.ndarray,
        quality: Quality,
        only_ok: bool = True,
    ) -> int:
        """Escalate quality flags for the cells selected by ``mask``.

        Args:
            channel: The channel whose flags to update.
            mask: Boolean matrix of shape ``(num_samples, num_racks)``.
            quality: The flag to write (typically ``SUSPECT`` or
                ``SCRUBBED``).
            only_ok: Only escalate cells currently flagged ``OK`` —
                never relabel a cell already known missing or worse.

        Returns:
            The number of cells updated.
        """
        self.flush()
        matrix = self._quality_matrix(channel)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != matrix.shape:
            raise ValueError(
                f"mask shape {mask.shape} does not match quality shape {matrix.shape}"
            )
        if only_ok:
            mask = mask & (matrix == int(Quality.OK))
        matrix[mask] = int(quality)
        touched = np.flatnonzero(mask.any(axis=1))
        if touched.size:
            self._invalidate_digest_rows(int(touched[0]), int(touched[-1]) + 1)
        return int(mask.sum())

    def overwrite_quality(
        self, channel: Channel, start_row: int, flags: np.ndarray
    ) -> None:
        """Replace quality flags for committed rows starting at ``start_row``.

        Unlike :meth:`update_quality` this neither flushes the reorder
        buffer nor masks by current flag — it is the ingest gateway's
        path for applying a collector's explicit per-cell verdicts to
        rows it just committed (e.g. re-posting a scrubbed export with
        its SUSPECT/SCRUBBED cells intact).

        Raises:
            IndexError: when the block reaches past the committed rows.
            ValueError: on a wrong-width block.
        """
        block = np.asarray(flags, dtype=np.uint8)
        if block.ndim != 2 or block.shape[1] != self._num_racks:
            raise ValueError(
                f"flags must be (rows, {self._num_racks}), got {block.shape}"
            )
        stop = start_row + block.shape[0]
        if not 0 <= start_row <= stop <= self._size:
            raise IndexError(
                f"quality rows [{start_row}, {stop}) out of range "
                f"(committed: {self._size})"
            )
        if self._quality is not None:
            self._quality[channel][start_row:stop] = block
        else:
            # Archived store: annotate the derived-quality cache.
            self._quality_matrix(channel)[start_row:stop] = block
        self._invalidate_digest_rows(start_row, stop)

    def missing_cells(self, channel: Channel) -> int:
        """Number of cells flagged ``MISSING`` for one channel."""
        return int(np.count_nonzero(self.quality(channel) == int(Quality.MISSING)))

    def coverage(self, channel: Channel) -> TimeSeries:
        """Fraction of racks with a usable value per sample.

        Usable means quality ``OK`` or ``SUSPECT`` — present and not
        scrubbed.  This is what the system-level aggregates report
        alongside their values under partial coverage.
        """
        self.flush()
        flags = self._quality_matrix(channel)
        usable = (flags == int(Quality.OK)) | (flags == int(Quality.SUSPECT))
        return TimeSeries(
            _readonly(self._epoch[: self._size]),
            usable.mean(axis=1) if self._size else np.empty(0),
            name=f"{channel.column}_coverage",
            unit="fraction",
        )

    # -- system-level aggregates -------------------------------------------------

    def _covered_sum(self, channel: Channel) -> Tuple[TimeSeries, np.ndarray]:
        """Coverage-corrected across-rack sum.

        Missing racks are estimated at the mean of the reporting racks
        (the sum is scaled by ``racks / reporting``), so partial sensor
        dropout does not deflate facility totals.  Fully-covered
        samples are exactly the plain sum; samples where *no* rack
        reported are NaN rather than a silent zero.
        """
        series = self.channel(channel)
        finite = np.isfinite(series.values)
        counts = finite.sum(axis=1)
        total = np.nansum(series.values, axis=1)
        scale = np.divide(
            float(self._num_racks),
            counts,
            out=np.full(len(counts), np.nan),
            where=counts > 0,
        )
        return series, total * scale

    def system_power_mw(self) -> TimeSeries:
        """Total facility power (MW) over time (Fig 2a).

        Coverage-corrected: non-reporting racks are estimated at the
        reporting-rack mean, and samples with no coverage are NaN.
        """
        power, total_kw = self._covered_sum(Channel.POWER)
        return TimeSeries(power.epoch_s, total_kw / 1000.0, name="system_power", unit="MW")

    def system_utilization(self) -> TimeSeries:
        """System utilization (fraction of nodes busy) over time (Fig 2b).

        Coverage-aware: samples where every rack is NaN yield NaN
        without a ``Mean of empty slice`` warning.
        """
        util = self.channel(Channel.UTILIZATION)
        return TimeSeries(
            util.epoch_s,
            nanstats.nanmean(util.values, axis=1),
            name="system_utilization",
            unit="fraction",
        )

    def total_flow_gpm(self) -> TimeSeries:
        """Total facility coolant flow (GPM) over time (Fig 3a).

        Coverage-corrected like :meth:`system_power_mw`.
        """
        flow, total = self._covered_sum(Channel.FLOW)
        return TimeSeries(flow.epoch_s, total, name="total_flow", unit="GPM")

    # -- content addressing --------------------------------------------------------

    def _digest_cache_for(self, chunk_rows: int) -> Dict[int, str]:
        """The per-chunk digest cache, reset on a chunk-size change.

        Lazily attached so subclasses that bypass ``__init__`` (the
        memory-mapped archive view) get one too.
        """
        cache: Optional[Dict[int, str]] = getattr(self, "_digest_chunks", None)
        if cache is None or getattr(self, "_digest_chunk_rows", None) != chunk_rows:
            cache = {}
            self._digest_chunks = cache
            self._digest_chunk_rows = chunk_rows
        return cache

    def _invalidate_digest_rows(self, start: int, stop: int) -> None:
        """Drop cached chunk digests overlapping rows ``[start, stop)``."""
        cache: Optional[Dict[int, str]] = getattr(self, "_digest_chunks", None)
        if not cache or stop <= start:
            return
        chunk_rows = self._digest_chunk_rows
        for index in range(start // chunk_rows, (stop - 1) // chunk_rows + 1):
            cache.pop(index, None)

    def hash_row_range(self, start: int, stop: int) -> str:
        """Content hash of committed rows ``[start, stop)`` (no flush).

        The row-range primitive behind :meth:`digest_info`; the
        incremental-analytics layer also calls it directly to validate
        that a cached reducer state's fold watermark still addresses a
        prefix of this store.

        Raises:
            IndexError: when the range reaches past the committed rows.
        """
        if not 0 <= start <= stop <= self._size:
            raise IndexError(
                f"hash rows [{start}, {stop}) out of range "
                f"(committed: {self._size})"
            )
        values = {ch: self._columns[ch][start:stop] for ch in CHANNELS}
        quality = {ch: self._quality_matrix(ch)[start:stop] for ch in CHANNELS}
        return hash_block(self._epoch[start:stop], values, quality)

    def digest_info(
        self, flush: bool = True, chunk_rows: int = DIGEST_CHUNK_ROWS
    ) -> DigestInfo:
        """The store's Merkle-style content address, with chunk layout.

        Chunks whose digests were computed before are answered from an
        in-memory cache; only chunks never hashed — or invalidated by a
        quality escalation or duplicate merge — are rehashed.  The
        partial tail chunk is always rehashed, so appending rows costs
        one tail chunk, never a full-store pass.

        Args:
            flush: Commit the lenient reorder buffer first (the right
                call at a query boundary).  ``flush=False`` addresses
                only the committed rows — what a live ingest path wants
                while late samples are still in flight.
            chunk_rows: Rows per chunk; changing it resets the cache.
        """
        if flush:
            self.flush()
        cache = self._digest_cache_for(chunk_rows)
        rows = self._size
        hashes: List[str] = []
        hashed = reused = 0
        for index in range(chunk_count(rows, chunk_rows)):
            lo = index * chunk_rows
            hi = min(rows, lo + chunk_rows)
            full = hi - lo == chunk_rows
            cached = cache.get(index) if full else None
            if cached is not None:
                hashes.append(cached)
                reused += 1
                continue
            chunk = self.hash_row_range(lo, hi)
            if full:
                cache[index] = chunk
            hashes.append(chunk)
            hashed += 1
        return DigestInfo(
            root=root_digest(rows, self._num_racks, chunk_rows, hashes),
            rows=rows,
            num_racks=self._num_racks,
            chunk_rows=chunk_rows,
            chunk_hashes=tuple(hashes),
            hashed_chunks=hashed,
            reused_chunks=reused,
        )

    def dataset_digest(self, flush: bool = True) -> str:
        """The root content address of the store (hex sha256)."""
        return self.digest_info(flush=flush).root

    # -- maintenance ---------------------------------------------------------------

    def compact(self) -> None:
        """Shrink internal buffers to the exact data size."""
        self.flush()
        self._epoch = self._epoch[: self._size].copy()
        for channel in list(self._columns):
            self._columns[channel] = self._columns[channel][: self._size].copy()
        if self._quality is not None:
            for channel in list(self._quality):
                self._quality[channel] = self._quality[channel][: self._size].copy()
        self._capacity = max(1, self._size)
