"""The environmental database: a columnar store for monitor telemetry.

Stands in for Mira's IBM DB2 environmental database.  Samples arrive as
*blocks*: one timestamp plus a vector of 48 per-rack values for each
channel (the vectorized simulator emits whole-floor snapshots).  The
store keeps each channel as a growable ``(time, rack)`` matrix and
serves the query shapes the analyses need: whole-channel
:class:`~repro.telemetry.series.TimeSeries`, single-rack series, time
windows, and system-level aggregates.

Single :class:`~repro.cooling.monitor.SensorReading` records can also
be ingested (the slow path used when exercising the monitor objects
directly).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro import constants
from repro.cooling.monitor import SensorReading
from repro.facility.topology import RackId
from repro.telemetry.records import CHANNELS, Channel
from repro.telemetry.series import TimeSeries


class EnvironmentalDatabase:
    """In-memory columnar telemetry store.

    Args:
        num_racks: Width of the rack axis (48 for Mira).
        capacity_hint: Expected number of samples; preallocating
            avoids repeated growth for long simulations.
    """

    def __init__(
        self,
        num_racks: int = constants.NUM_RACKS,
        capacity_hint: int = 1024,
    ) -> None:
        if num_racks <= 0:
            raise ValueError("num_racks must be positive")
        self._num_racks = num_racks
        self._capacity = max(16, capacity_hint)
        self._size = 0
        self._epoch = np.empty(self._capacity, dtype="float64")
        self._columns: Dict[Channel, np.ndarray] = {
            ch: np.full((self._capacity, num_racks), np.nan) for ch in CHANNELS
        }

    # -- ingest ---------------------------------------------------------------

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        new_epoch = np.empty(new_capacity, dtype="float64")
        new_epoch[: self._size] = self._epoch[: self._size]
        self._epoch = new_epoch
        for channel, column in self._columns.items():
            new_column = np.full((new_capacity, self._num_racks), np.nan)
            new_column[: self._size] = column[: self._size]
            self._columns[channel] = new_column
        self._capacity = new_capacity

    def append_snapshot(
        self, epoch_s: float, channel_values: Dict[Channel, np.ndarray]
    ) -> None:
        """Append one whole-floor sample.

        Args:
            epoch_s: Sample timestamp; must not precede the last one.
            channel_values: Per-channel vectors of length ``num_racks``.
                Channels not supplied are stored as NaN.

        Raises:
            ValueError: on out-of-order timestamps or wrong-width
                vectors.
        """
        if self._size > 0 and epoch_s < self._epoch[self._size - 1]:
            raise ValueError(
                f"out-of-order snapshot: {epoch_s} after {self._epoch[self._size - 1]}"
            )
        if self._size == self._capacity:
            self._grow()
        index = self._size
        self._epoch[index] = epoch_s
        for channel, vector in channel_values.items():
            values = np.asarray(vector, dtype="float64")
            if values.shape != (self._num_racks,):
                raise ValueError(
                    f"{channel}: expected shape ({self._num_racks},), got {values.shape}"
                )
            self._columns[channel][index] = values
        self._size += 1

    def append_block(
        self, epoch_s: np.ndarray, channel_values: Dict[Channel, np.ndarray]
    ) -> None:
        """Append a whole block of samples in one bulk write.

        The fast path for the vectorized simulation engine: one call
        ingests ``(steps, racks)`` matrices per channel instead of
        ``steps`` dict-validated rows.

        Args:
            epoch_s: Sample timestamps, shape ``(steps,)``, ascending;
                the first must not precede the last stored sample.
            channel_values: Per-channel matrices of shape
                ``(steps, num_racks)``.  Channels not supplied are
                stored as NaN.

        Raises:
            ValueError: on out-of-order timestamps or wrong-shape
                matrices.
        """
        epochs = np.asarray(epoch_s, dtype="float64")
        if epochs.ndim != 1:
            raise ValueError(f"epoch_s must be 1-D, got shape {epochs.shape}")
        count = epochs.shape[0]
        if count == 0:
            return
        if np.any(np.diff(epochs) < 0):
            raise ValueError("block timestamps must be non-decreasing")
        if self._size > 0 and epochs[0] < self._epoch[self._size - 1]:
            raise ValueError(
                f"out-of-order block: {epochs[0]} after {self._epoch[self._size - 1]}"
            )
        matrices = {}
        for channel, values in channel_values.items():
            matrix = np.asarray(values, dtype="float64")
            if matrix.shape != (count, self._num_racks):
                raise ValueError(
                    f"{channel}: expected shape ({count}, {self._num_racks}), "
                    f"got {matrix.shape}"
                )
            matrices[channel] = matrix
        while self._size + count > self._capacity:
            self._grow()
        start, end = self._size, self._size + count
        self._epoch[start:end] = epochs
        for channel, matrix in matrices.items():
            self._columns[channel][start:end] = matrix
        self._size = end

    def ingest_reading(self, reading: SensorReading, utilization: float = np.nan) -> None:
        """Ingest a single-rack :class:`SensorReading` (slow path).

        Creates a new snapshot row in which all racks other than the
        reading's are NaN.  Intended for unit tests and small-scale
        monitor exercises, not the bulk simulation path.
        """
        row = {
            Channel.DC_TEMPERATURE: reading.dc_temperature_f,
            Channel.DC_HUMIDITY: reading.dc_humidity_rh,
            Channel.FLOW: reading.flow_gpm,
            Channel.INLET_TEMPERATURE: reading.inlet_temperature_f,
            Channel.OUTLET_TEMPERATURE: reading.outlet_temperature_f,
            Channel.POWER: reading.power_kw,
            Channel.UTILIZATION: utilization,
        }
        snapshot = {}
        for channel, value in row.items():
            vector = np.full(self._num_racks, np.nan)
            vector[reading.rack_id.flat_index] = value
            snapshot[channel] = vector
        self.append_snapshot(reading.epoch_s, snapshot)

    # -- queries ---------------------------------------------------------------

    @property
    def num_samples(self) -> int:
        return self._size

    @property
    def num_racks(self) -> int:
        return self._num_racks

    def __len__(self) -> int:
        return self._size

    @property
    def epoch_s(self) -> np.ndarray:
        """All sample timestamps (view; do not mutate)."""
        return self._epoch[: self._size]

    def channel(self, channel: Channel) -> TimeSeries:
        """Full per-rack series for one channel."""
        return TimeSeries(
            self._epoch[: self._size],
            self._columns[channel][: self._size],
            name=channel.column,
            unit=channel.unit,
        )

    def rack_channel(self, channel: Channel, rack_id: RackId) -> TimeSeries:
        """One rack's series for one channel."""
        return TimeSeries(
            self._epoch[: self._size],
            self._columns[channel][: self._size, rack_id.flat_index],
            name=f"{channel.column}@{rack_id.label}",
            unit=channel.unit,
        )

    def window(
        self, channel: Channel, start_epoch_s: float, end_epoch_s: float
    ) -> TimeSeries:
        """Per-rack series for a channel restricted to a time window."""
        return self.channel(channel).between(start_epoch_s, end_epoch_s)

    # -- system-level aggregates -------------------------------------------------

    def system_power_mw(self) -> TimeSeries:
        """Total facility power (MW) over time (Fig 2a)."""
        power = self.channel(Channel.POWER)
        total_kw = np.nansum(power.values, axis=1)
        return TimeSeries(power.epoch_s, total_kw / 1000.0, name="system_power", unit="MW")

    def system_utilization(self) -> TimeSeries:
        """System utilization (fraction of nodes busy) over time (Fig 2b)."""
        util = self.channel(Channel.UTILIZATION)
        return TimeSeries(
            util.epoch_s,
            np.nanmean(util.values, axis=1),
            name="system_utilization",
            unit="fraction",
        )

    def total_flow_gpm(self) -> TimeSeries:
        """Total facility coolant flow (GPM) over time (Fig 3a)."""
        flow = self.channel(Channel.FLOW)
        return TimeSeries(
            flow.epoch_s, np.nansum(flow.values, axis=1), name="total_flow", unit="GPM"
        )

    # -- maintenance ---------------------------------------------------------------

    def compact(self) -> None:
        """Shrink internal buffers to the exact data size."""
        self._epoch = self._epoch[: self._size].copy()
        for channel in list(self._columns):
            self._columns[channel] = self._columns[channel][: self._size].copy()
        self._capacity = max(1, self._size)
