"""Telemetry and RAS log export/import.

A downstream user of the real Mira study would have received CSV dumps
of the environmental database; this module provides the same interface
for the synthetic one, plus a faithful re-import so analyses can run
on exported files.

Formats:

* **telemetry CSV** — one row per (timestamp, rack), columns for every
  channel; NaNs exported as empty fields.  One trailing quality column
  per channel carries the :class:`~repro.telemetry.records.Quality`
  flag whenever it differs from what NaN-ness alone would imply, so a
  scrubbed/faulted dataset round-trips losslessly (legacy files
  without quality columns still import);
* **RAS JSONL** — one JSON object per event.

The telemetry exporter streams the store in bounded chunks of samples
rather than materializing every channel's full ``(n_samples, racks)``
matrix up front, so exporting a six-year faulted dataset holds only
``chunk_size`` rows of each channel in flight at a time.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.facility.topology import RackId
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.ras import RasEvent, RasLog, Severity
from repro.telemetry.records import CHANNELS, Channel, Quality
from repro.telemetry.schema import telemetry_header

PathLike = Union[str, Path]

# Both headers come from the canonical schema (shared with the HTTP
# JSON serializer and the collector adapters).
_TELEMETRY_HEADER = telemetry_header(include_quality=False)
_QUALITY_HEADER = telemetry_header(include_quality=True)

#: Samples per export chunk; bounds peak memory at
#: ``chunk x racks x channels`` cells regardless of dataset length.
_EXPORT_CHUNK_SAMPLES = 1024


def _derived_flags(values: np.ndarray) -> np.ndarray:
    """The quality a cell would be assigned from NaN-ness alone."""
    return np.where(
        np.isfinite(values), int(Quality.OK), int(Quality.MISSING)
    ).astype(np.uint8)


def export_telemetry_csv(
    database: EnvironmentalDatabase,
    path: PathLike,
    include_quality: bool = True,
    chunk_size: int = _EXPORT_CHUNK_SAMPLES,
) -> int:
    """Write the database as CSV; returns the number of data rows.

    Args:
        database: The store to export.
        path: Destination file.
        include_quality: Append one ``<channel>_q`` column per channel
            holding the quality flag for every cell where it differs
            from the NaN-derived default (``OK`` when finite,
            ``MISSING`` when NaN).  Pristine datasets therefore export
            empty quality cells; scrubbed/faulted ones keep their
            SUSPECT/SCRUBBED verdicts across a round-trip.
        chunk_size: Samples processed per chunk (memory bound).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    n = database.num_samples
    num_racks = database.num_racks
    epochs = database.epoch_s
    # Read-only whole-store *views* (no copies); per-chunk slices below
    # are the only materialized working set.
    columns = {ch: database.channel(ch).values for ch in CHANNELS}
    qualities = (
        {ch: database.quality(ch) for ch in CHANNELS} if include_quality else None
    )
    labels = [RackId.from_flat_index(r).label for r in range(num_racks)]
    header = _QUALITY_HEADER if include_quality else _TELEMETRY_HEADER
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            chunk = {ch: np.asarray(columns[ch][start:stop]) for ch in CHANNELS}
            finite = {ch: np.isfinite(chunk[ch]) for ch in CHANNELS}
            keep = np.zeros((stop - start, num_racks), dtype=bool)
            for ch in CHANNELS:
                keep |= finite[ch]
            if qualities is not None:
                qchunk = {
                    ch: np.asarray(qualities[ch][start:stop]) for ch in CHANNELS
                }
                nondefault = {
                    ch: qchunk[ch] != _derived_flags(chunk[ch]) for ch in CHANNELS
                }
                for ch in CHANNELS:
                    keep |= nondefault[ch]
            for i in range(stop - start):
                racks = np.flatnonzero(keep[i])
                if racks.size == 0:
                    continue
                epoch_text = f"{epochs[start + i]:.1f}"
                for rack in racks:
                    record = [epoch_text, labels[rack]]
                    for ch in CHANNELS:
                        value = chunk[ch][i, rack]
                        record.append("" if np.isnan(value) else f"{value:.6g}")
                    if qualities is not None:
                        for ch in CHANNELS:
                            record.append(
                                str(int(qchunk[ch][i, rack]))
                                if nondefault[ch][i, rack]
                                else ""
                            )
                    writer.writerow(record)
                    rows += 1
    return rows


def import_telemetry_csv(path: PathLike) -> EnvironmentalDatabase:
    """Rebuild an :class:`EnvironmentalDatabase` from an exported CSV.

    Accepts both the legacy header (values only) and the current one
    with trailing per-channel quality columns; explicit quality flags
    are re-applied after ingest so SUSPECT/SCRUBBED verdicts survive a
    round-trip.

    Raises:
        ValueError: on a malformed header.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header == _QUALITY_HEADER:
            with_quality = True
        elif header == _TELEMETRY_HEADER:
            with_quality = False
        else:
            raise ValueError(f"unexpected telemetry header: {header}")
        pending_epoch = None
        snapshot: Dict[Channel, np.ndarray] = {}
        database = EnvironmentalDatabase()
        sample_index = -1
        #: (sample, rack, flag) overrides to re-apply after ingest.
        overrides: Dict[Channel, List[Tuple[int, int, int]]] = {
            ch: [] for ch in CHANNELS
        }

        def flush() -> None:
            if pending_epoch is not None and snapshot:
                database.append_snapshot(pending_epoch, snapshot)

        channel_count = len(CHANNELS)
        for row in reader:
            epoch = float(row[0])
            rack = RackId.parse(row[1]).flat_index
            if epoch != pending_epoch:
                flush()
                pending_epoch = epoch
                sample_index += 1
                snapshot = {
                    ch: np.full(database.num_racks, np.nan) for ch in CHANNELS
                }
            for channel, cell in zip(CHANNELS, row[2 : 2 + channel_count]):
                if cell != "":
                    snapshot[channel][rack] = float(cell)
            if with_quality:
                for channel, cell in zip(CHANNELS, row[2 + channel_count :]):
                    if cell != "":
                        overrides[channel].append((sample_index, rack, int(cell)))
        flush()
    database.compact()
    for channel, cells in overrides.items():
        if not cells:
            continue
        for flag in sorted({flag for _, _, flag in cells}):
            mask = np.zeros((database.num_samples, database.num_racks), dtype=bool)
            for sample, rack, cell_flag in cells:
                if cell_flag == flag:
                    mask[sample, rack] = True
            database.update_quality(channel, mask, Quality(flag), only_ok=False)
    return database


def export_ras_jsonl(ras_log: RasLog, path: PathLike) -> int:
    """Write the RAS log as JSON lines; returns the event count."""
    with open(path, "w") as handle:
        for event in ras_log:
            handle.write(
                json.dumps(
                    {
                        "epoch_s": event.epoch_s,
                        "rack": event.rack_id.label,
                        "severity": event.severity.value,
                        "category": event.category,
                        "message": event.message,
                    }
                )
                + "\n"
            )
    return len(ras_log)


def import_ras_jsonl(path: PathLike) -> RasLog:
    """Rebuild a :class:`RasLog` from exported JSON lines."""
    events = []
    with open(path) as handle:
        for line in handle:
            record = json.loads(line)
            events.append(
                RasEvent(
                    epoch_s=float(record["epoch_s"]),
                    rack_id=RackId.parse(record["rack"]),
                    severity=Severity(record["severity"]),
                    category=record["category"],
                    message=record.get("message", ""),
                )
            )
    return RasLog(events)
