"""Telemetry and RAS log export/import.

A downstream user of the real Mira study would have received CSV dumps
of the environmental database; this module provides the same interface
for the synthetic one, plus a faithful re-import so analyses can run
on exported files.

Formats:

* **telemetry CSV** — one row per (timestamp, rack), columns for every
  channel; NaNs exported as empty fields;
* **RAS JSONL** — one JSON object per event.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.facility.topology import RackId
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.ras import RasEvent, RasLog, Severity
from repro.telemetry.records import CHANNELS, Channel

PathLike = Union[str, Path]

_TELEMETRY_HEADER = ["epoch_s", "rack"] + [ch.column for ch in CHANNELS]


def export_telemetry_csv(database: EnvironmentalDatabase, path: PathLike) -> int:
    """Write the database as CSV; returns the number of data rows."""
    epochs = database.epoch_s
    columns = {ch: database.channel(ch).values for ch in CHANNELS}
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_TELEMETRY_HEADER)
        for i, epoch in enumerate(epochs):
            for rack in range(database.num_racks):
                values = [columns[ch][i, rack] for ch in CHANNELS]
                if all(np.isnan(v) for v in values):
                    continue
                writer.writerow(
                    [f"{epoch:.1f}", RackId.from_flat_index(rack).label]
                    + ["" if np.isnan(v) else f"{v:.6g}" for v in values]
                )
                rows += 1
    return rows


def import_telemetry_csv(path: PathLike) -> EnvironmentalDatabase:
    """Rebuild an :class:`EnvironmentalDatabase` from an exported CSV.

    Raises:
        ValueError: on a malformed header.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header != _TELEMETRY_HEADER:
            raise ValueError(f"unexpected telemetry header: {header}")
        pending_epoch = None
        snapshot: Dict[Channel, np.ndarray] = {}
        database = EnvironmentalDatabase()

        def flush() -> None:
            if pending_epoch is not None and snapshot:
                database.append_snapshot(pending_epoch, snapshot)

        for row in reader:
            epoch = float(row[0])
            rack = RackId.parse(row[1]).flat_index
            if epoch != pending_epoch:
                flush()
                pending_epoch = epoch
                snapshot = {
                    ch: np.full(database.num_racks, np.nan) for ch in CHANNELS
                }
            for channel, cell in zip(CHANNELS, row[2:]):
                if cell != "":
                    snapshot[channel][rack] = float(cell)
        flush()
    database.compact()
    return database


def export_ras_jsonl(ras_log: RasLog, path: PathLike) -> int:
    """Write the RAS log as JSON lines; returns the event count."""
    with open(path, "w") as handle:
        for event in ras_log:
            handle.write(
                json.dumps(
                    {
                        "epoch_s": event.epoch_s,
                        "rack": event.rack_id.label,
                        "severity": event.severity.value,
                        "category": event.category,
                        "message": event.message,
                    }
                )
                + "\n"
            )
    return len(ras_log)


def import_ras_jsonl(path: PathLike) -> RasLog:
    """Rebuild a :class:`RasLog` from exported JSON lines."""
    events = []
    with open(path) as handle:
        for line in handle:
            record = json.loads(line)
            events.append(
                RasEvent(
                    epoch_s=float(record["epoch_s"]),
                    rack_id=RackId.parse(record["rack"]),
                    severity=Severity(record["severity"]),
                    category=record["category"],
                    message=record.get("message", ""),
                )
            )
    return RasLog(events)
