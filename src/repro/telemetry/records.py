"""The coolant monitor channel schema.

The coolant monitor records five sensor groups per rack (Section II):
data-center temperature, data-center humidity, coolant flow rate,
coolant temperature (inlet and outlet), and power.  The simulator adds
a derived *utilization* channel (on real Mira utilization comes from
the Cobalt scheduler logs, which the paper joins against the
environmental data; storing it alongside keeps the join trivial).

Channels are identified by :class:`Channel` enum members whose values
are the column names used by the environmental database.
"""

from __future__ import annotations

import enum
from typing import Tuple


class Quality(enum.IntEnum):
    """Per-cell data-quality flag stored alongside every telemetry value.

    The environmental database keeps one ``uint8`` quality matrix per
    channel, parallel to the value matrix.  The taxonomy follows what
    operational-data-analytics deployments actually need:

    * ``OK`` — the sensor reported and nothing downstream doubts it.
    * ``MISSING`` — no reading was stored (the cell is NaN: dropout,
      monitor blackout, or the channel simply was not supplied).
    * ``SUSPECT`` — a value is present but the scrubber flagged it
      (stuck-at runs, slow drift); analyses may keep or drop it.
    * ``SCRUBBED`` — the scrubber rejected the value outright
      (transient spikes); analyses should treat it as unusable.
    """

    OK = 0
    MISSING = 1
    SUSPECT = 2
    SCRUBBED = 3


class Channel(enum.Enum):
    """A coolant monitor (or joined) telemetry channel."""

    #: Ambient data-center temperature near the rack, degrees F.
    DC_TEMPERATURE = "dc_temperature_f"

    #: Ambient data-center relative humidity near the rack, %RH.
    DC_HUMIDITY = "dc_humidity_rh"

    #: Coolant flow through the rack's internal loop, GPM.
    FLOW = "flow_gpm"

    #: Coolant temperature at the rack inlet, degrees F.
    INLET_TEMPERATURE = "inlet_temperature_f"

    #: Coolant temperature at the rack outlet, degrees F.
    OUTLET_TEMPERATURE = "outlet_temperature_f"

    #: Aggregate power drawn by the rack's four power enclosures, kW.
    POWER = "power_kw"

    #: Fraction of the rack's nodes occupied by jobs (scheduler join).
    UTILIZATION = "utilization"

    @property
    def column(self) -> str:
        """Database column name."""
        return self.value

    @property
    def unit(self) -> str:
        """Human-readable unit string."""
        return _UNITS[self]

    @property
    def is_sensor(self) -> bool:
        """Whether the channel is measured by the coolant monitor."""
        return self is not Channel.UTILIZATION


_UNITS = {
    Channel.DC_TEMPERATURE: "F",
    Channel.DC_HUMIDITY: "%RH",
    Channel.FLOW: "GPM",
    Channel.INLET_TEMPERATURE: "F",
    Channel.OUTLET_TEMPERATURE: "F",
    Channel.POWER: "kW",
    Channel.UTILIZATION: "fraction",
}

#: All channels in canonical storage order.
CHANNELS: Tuple[Channel, ...] = tuple(Channel)

#: The channels the CMF predictor uses as features (Section VI-B: flow,
#: outlet temperature, inlet temperature, power, DC temperature and
#: humidity).
PREDICTOR_CHANNELS: Tuple[Channel, ...] = (
    Channel.FLOW,
    Channel.OUTLET_TEMPERATURE,
    Channel.INLET_TEMPERATURE,
    Channel.POWER,
    Channel.DC_TEMPERATURE,
    Channel.DC_HUMIDITY,
)
