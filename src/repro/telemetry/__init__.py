"""Telemetry storage and time-series analysis substrate.

This package substitutes for the IBM DB2 environmental database and the
RAS log of real Mira:

* :mod:`repro.telemetry.records` — the channel schema,
* :mod:`repro.telemetry.database` — a columnar in-memory store with
  range/rack queries,
* :mod:`repro.telemetry.series` — resampling, rolling statistics,
  linear fits and calendar group-bys used throughout the analyses,
* :mod:`repro.telemetry.ras` — reliability/availability/serviceability
  event log with severity and category taxonomies,
* :mod:`repro.telemetry.quality` — the data-quality scrubber (stuck
  runs, spikes, gaps) writing per-channel quality masks,
* :mod:`repro.telemetry.schema` — the canonical channel-column/units
  mapping shared by every serializer (CSV export, HTTP JSON API,
  collector adapters),
* :mod:`repro.telemetry.nanstats` — NaN-aware reductions that stay
  silent on all-NaN slices.
"""

from repro.telemetry.records import CHANNELS, Channel, Quality
from repro.telemetry.database import (
    EnvironmentalDatabase,
    IngestCounters,
    IngestPolicy,
)
from repro.telemetry.quality import (
    Gap,
    ScrubPolicy,
    ScrubReport,
    find_gaps,
    scrub_database,
    spike_mask,
    stuck_mask,
)
from repro.telemetry.schema import (
    CHANNEL_BY_COLUMN,
    CHANNEL_UNITS,
    QUALITY_SUFFIX,
    TELEMETRY_COLUMNS,
    channel_for_column,
    quality_column,
    telemetry_header,
)
from repro.telemetry.series import TimeSeries, linear_fit
from repro.telemetry.ras import RasEvent, RasLog, Severity
from repro.telemetry.archive import ArchiveError, TelemetryArchive
from repro.telemetry.export import (
    export_ras_jsonl,
    export_telemetry_csv,
    import_ras_jsonl,
    import_telemetry_csv,
)

__all__ = [
    "CHANNELS",
    "Channel",
    "Quality",
    "EnvironmentalDatabase",
    "IngestCounters",
    "IngestPolicy",
    "Gap",
    "ScrubPolicy",
    "ScrubReport",
    "find_gaps",
    "scrub_database",
    "spike_mask",
    "stuck_mask",
    "CHANNEL_BY_COLUMN",
    "CHANNEL_UNITS",
    "QUALITY_SUFFIX",
    "TELEMETRY_COLUMNS",
    "channel_for_column",
    "quality_column",
    "telemetry_header",
    "TimeSeries",
    "linear_fit",
    "RasEvent",
    "RasLog",
    "Severity",
    "ArchiveError",
    "TelemetryArchive",
    "export_ras_jsonl",
    "export_telemetry_csv",
    "import_ras_jsonl",
    "import_telemetry_csv",
]
