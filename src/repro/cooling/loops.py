"""External/internal water loops and the per-rack heat exchangers.

Chilled water from the plant runs in a closed **external loop** under
the data-center floor.  Each rack has its own **internal loop** running
across the rack walls; under the floor the two loops meet at a **heat
exchanger (HX)** where rack heat is dissipated into the external loop.

The hydraulic model captures the paper's Section IV-B observations:

* total facility flow follows the regulating-valve setpoint,
* the split across racks is uneven — underfloor pipes and filters
  suffer partial blockage from the complex cable layout, producing an
  up-to-11 % rack-to-rack flow spread (Fig 7a) via static per-rack
  impedance factors,
* inlet temperature is plant supply plus a tiny distribution loss and
  is therefore nearly uniform across racks (~1 % spread, Fig 7b),
* outlet temperature follows the steady-state heat balance
  ``T_out = T_in + Q / (m_dot c_p)`` and therefore tracks rack power
  (up-to-3 % spread, Fig 7c).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro import constants, units


@dataclasses.dataclass(frozen=True)
class HeatExchanger:
    """Steady-state counterflow HX between the loops of one rack.

    Attributes:
        effectiveness: Fraction of the rack's heat transferred to the
            external loop at nominal flow (the small remainder is
            carried by rack airflow to the room and handled by the CRAC
            units).  Blue Gene/Q racks are almost fully liquid-cooled,
            so the default is close to one; at ~55 kW per rack and
            ~26 GPM this yields the paper's ~15 F inlet-to-outlet rise.
    """

    effectiveness: float = 0.98

    def __post_init__(self) -> None:
        if not 0.0 < self.effectiveness <= 1.0:
            raise ValueError(
                f"effectiveness must be in (0, 1], got {self.effectiveness}"
            )

    def outlet_temperature_f(
        self, inlet_f: float, heat_kw: float, flow_gpm: float
    ) -> float:
        """Coolant outlet temperature for one rack.

        Raises:
            ValueError: if flow is not positive while heat is being
                dumped (stagnant-coolant case; callers must gate on the
                solenoid valve).
        """
        if heat_kw < 0:
            raise ValueError(f"heat cannot be negative, got {heat_kw}")
        if heat_kw == 0.0:
            return inlet_f
        rise = units.coolant_temperature_rise_f(
            heat_kw * self.effectiveness, flow_gpm
        )
        return inlet_f + rise


class CoolingLoop:
    """The facility's hydraulic network: plant -> racks -> plant.

    Args:
        rng: Randomness for the static per-rack impedance (blockage)
            factors.
        impedance_spread: Controls the rack-to-rack flow imbalance; the
            default reproduces the up-to-11 % spread of Fig 7(a).
        distribution_loss_f: Temperature pickup between the plant and
            the rack inlets (underfloor pipe losses), degrees F, at the
            farthest rack; nearer racks see proportionally less.
        exchanger: Heat-exchanger model shared by all racks.
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        impedance_spread: float = 0.055,
        distribution_loss_f: float = 0.60,
        exchanger: Optional[HeatExchanger] = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        self.exchanger = exchanger if exchanger is not None else HeatExchanger()
        # Static hydraulic conductances: 1 / (1 + blockage).  Uniform
        # +-impedance_spread blockage yields the observed flow spread.
        blockage = rng.uniform(
            -impedance_spread, impedance_spread, size=constants.NUM_RACKS
        )
        self._conductance = 1.0 / (1.0 + blockage)
        # Distribution losses grow with hydraulic distance from the
        # plant; model distance as flat index order along the loop.
        distance = np.arange(constants.NUM_RACKS) / max(1, constants.NUM_RACKS - 1)
        self._distribution_loss_f = distribution_loss_f * distance

    # -- hydraulics ----------------------------------------------------------

    def rack_flows_gpm(
        self,
        total_flow_gpm: float,
        solenoid_open: Optional[np.ndarray] = None,
        flow_disturbance: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Split the facility flow across the 48 racks.

        Args:
            total_flow_gpm: Facility setpoint from the regulating valve.
            solenoid_open: Optional boolean mask; racks with closed
                solenoids take no flow (their share redistributes).
            flow_disturbance: Optional per-rack multiplicative
                disturbance (e.g. the pre-CMF flow collapse), applied to
                conductances before the split.

        Returns:
            Per-rack flow in GPM, flat-index order.  Sums to
            ``total_flow_gpm`` (the loop is closed; the pumps hold
            total flow).

        Raises:
            ValueError: if total flow is not positive or every rack is
                shut off.
        """
        if total_flow_gpm <= 0:
            raise ValueError(f"total flow must be positive, got {total_flow_gpm}")
        conductance = self._conductance.copy()
        if flow_disturbance is not None:
            conductance = conductance * np.clip(flow_disturbance, 0.0, None)
        if solenoid_open is not None:
            conductance = np.where(solenoid_open, conductance, 0.0)
        total_conductance = conductance.sum()
        if total_conductance <= 0:
            raise ValueError("all racks are shut off; the loop has no path")
        return total_flow_gpm * conductance / total_conductance

    def rack_flows_gpm_block(
        self,
        total_flow_gpm: np.ndarray,
        solenoid_open: Optional[np.ndarray] = None,
        flow_disturbance: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched :meth:`rack_flows_gpm` over a ``(steps, racks)`` block.

        Args:
            total_flow_gpm: Facility setpoint per step, shape
                ``(steps,)``.
            solenoid_open: Optional boolean ``(steps, racks)`` mask.
            flow_disturbance: Optional multiplicative ``(steps, racks)``
                disturbance on the conductances.

        Returns:
            Per-step, per-rack flows ``(steps, racks)``; each row sums
            to its step's total.  Steps where every rack is shut off
            yield all-zero rows (a fully-downed floor has no flow path;
            the solenoids are closed and the pumps dead-head).
        """
        total = np.asarray(total_flow_gpm, dtype="float64")
        if np.any(total <= 0):
            raise ValueError("total flow must be positive at every step")
        conductance = np.broadcast_to(
            self._conductance, (total.shape[0], constants.NUM_RACKS)
        )
        if flow_disturbance is not None:
            conductance = conductance * np.clip(flow_disturbance, 0.0, None)
        if solenoid_open is not None:
            conductance = np.where(solenoid_open, conductance, 0.0)
        row_total = conductance.sum(axis=1, keepdims=True)
        safe_total = np.where(row_total > 0.0, row_total, 1.0)
        return np.where(
            row_total > 0.0, total[:, None] * conductance / safe_total, 0.0
        )

    # -- thermals ------------------------------------------------------------

    def rack_inlet_temperatures_f(self, supply_f: float) -> np.ndarray:
        """Per-rack inlet coolant temperature from the plant supply."""
        return supply_f + self._distribution_loss_f

    def rack_outlet_temperatures_f(
        self,
        inlet_f: np.ndarray,
        heat_kw: np.ndarray,
        flows_gpm: np.ndarray,
    ) -> np.ndarray:
        """Vectorized steady-state outlet temperatures.

        Racks with (near-)zero flow report their inlet temperature: a
        stagnant loop's sensors read the standing water, and the rack is
        about to be powered off anyway.
        """
        heat = np.asarray(heat_kw, dtype="float64")
        flows = np.asarray(flows_gpm, dtype="float64")
        if np.any(heat < 0):
            raise ValueError("heat cannot be negative")
        safe_flows = np.where(flows > 1e-9, flows, np.nan)
        m_dot = units.gpm_to_kg_per_s(1.0) * safe_flows
        delta_c = (
            heat * self.exchanger.effectiveness
            / (m_dot * units.WATER_SPECIFIC_HEAT_KJ_PER_KG_K)
        )
        rise_f = units.celsius_delta_to_fahrenheit(delta_c)
        rise_f = np.where(np.isnan(rise_f), 0.0, rise_f)
        return inlet_f + rise_f

    @property
    def conductances(self) -> np.ndarray:
        """Static per-rack hydraulic conductances (copy)."""
        return self._conductance.copy()
