"""Valves: facility flow regulation and per-rack solenoid shutoff.

Two kinds of valves appear in the paper:

* the **flow regulating valve** that splits plant flow between Mira and
  (after July 2016) Theta, whose setpoint was raised from 1,250 GPM to
  1,300 GPM when Theta joined the loop and the impellers were upgraded
  (Fig 3a), and
* the per-rack **solenoid valve** that the Blue Gene/Q control system
  slams shut as the first of its two fatal-CMF control actions
  (Section VI methodology: close the solenoid, then cut rack power).
"""

from __future__ import annotations

import bisect
import datetime as dt
from typing import List, Tuple, Union

import numpy as np

from repro import constants, timeutil


class FlowRegulatingValve:
    """Facility-level flow setpoint with a step-change history.

    The valve is configured with dated setpoints; querying any time
    returns the setpoint in force at that time.  The default history is
    Mira's: 1,250 GPM from the start of production, stepped to
    1,300 GPM on 2016-07-01 when Theta was added to the loop.
    """

    def __init__(self) -> None:
        self._times: List[float] = []
        self._setpoints: List[float] = []
        self.set_setpoint(constants.PRODUCTION_START, constants.FLOW_PRE_THETA_GPM)
        self.set_setpoint(constants.THETA_ADDITION_DATE, constants.FLOW_POST_THETA_GPM)

    def set_setpoint(self, when: dt.datetime, flow_gpm: float) -> None:
        """Install a new setpoint effective from ``when`` onward.

        Raises:
            ValueError: if the flow is not positive.
        """
        if flow_gpm <= 0:
            raise ValueError(f"flow setpoint must be positive, got {flow_gpm}")
        epoch = timeutil.to_epoch(when)
        index = bisect.bisect_left(self._times, epoch)
        if index < len(self._times) and self._times[index] == epoch:
            self._setpoints[index] = flow_gpm
        else:
            self._times.insert(index, epoch)
            self._setpoints.insert(index, flow_gpm)

    def setpoint_gpm(self, epoch_s: Union[np.ndarray, float]) -> Union[np.ndarray, float]:
        """The setpoint in force at ``epoch_s``.

        Queries before the first dated setpoint return that first
        setpoint (the valve existed before our history starts).
        Accepts a scalar (returns ``float``) or a timestamp array
        (returns an array) — the engine precomputes whole-grid
        setpoint tables.
        """
        if np.ndim(epoch_s) == 0:
            index = bisect.bisect_right(self._times, epoch_s) - 1
            if index < 0:
                index = 0
            return self._setpoints[index]
        indices = np.searchsorted(
            np.asarray(self._times), np.asarray(epoch_s, dtype="float64"), side="right"
        )
        indices = np.maximum(indices - 1, 0)
        return np.asarray(self._setpoints, dtype="float64")[indices]

    @property
    def history(self) -> Tuple[Tuple[float, float], ...]:
        """All (epoch_s, setpoint_gpm) steps in time order."""
        return tuple(zip(self._times, self._setpoints))


class SolenoidValve:
    """Per-rack coolant shutoff valve.

    Closed by the control system on a fatal CMF; reopened when the rack
    is brought back up.  A closed valve means zero coolant flow through
    the rack's internal loop.
    """

    def __init__(self) -> None:
        self._open = True

    @property
    def is_open(self) -> bool:
        return self._open

    def close(self) -> None:
        """Cut off coolant flow (fatal-CMF control action #1)."""
        self._open = False

    def open(self) -> None:
        """Restore coolant flow after recovery."""
        self._open = True

    def flow_multiplier(self) -> float:
        """1.0 when open, 0.0 when closed."""
        return 1.0 if self._open else 0.0
