"""Hydraulic and thermal model of Mira's liquid cooling system.

The package mirrors the physical plant described in Section II of the
paper: the Chilled Water Plant with its waterside economizer
(:mod:`repro.cooling.plant`), the external loop that carries chilled
water under the floor and the per-rack internal loops joined at heat
exchangers (:mod:`repro.cooling.loops`), the flow-regulating and
solenoid valves (:mod:`repro.cooling.valves`), and the per-rack coolant
monitor sensor module (:mod:`repro.cooling.monitor`).
"""

from repro.cooling.plant import ChilledWaterPlant
from repro.cooling.loops import CoolingLoop, HeatExchanger
from repro.cooling.valves import FlowRegulatingValve, SolenoidValve
from repro.cooling.monitor import AlarmThresholds, CoolantMonitor, SensorReading
from repro.cooling.energy import EnergyLedger, EnergyModelConfig, FacilityEnergyModel
from repro.cooling.balancer import AdaptiveFlowBalancer, BalancePlan

__all__ = [
    "ChilledWaterPlant",
    "CoolingLoop",
    "HeatExchanger",
    "FlowRegulatingValve",
    "SolenoidValve",
    "AlarmThresholds",
    "CoolantMonitor",
    "SensorReading",
    "EnergyLedger",
    "EnergyModelConfig",
    "FacilityEnergyModel",
    "AdaptiveFlowBalancer",
    "BalancePlan",
]
