"""The Argonne Chilled Water Plant (CWP) model.

Two 1,500-ton chiller towers supply Mira's external water loop.  The
plant has a *waterside economizer*: when Chicago is cold enough, the
chillers are bypassed (partially or fully) and the loop is cooled
against the outdoors for free.  Free cooling is less effective than
mechanical chilling, so the supply (inlet) temperature runs slightly
warm during economizer months — the Fig 4(d) signature.

The plant also tracks its own energy use so the efficiency-measures
numbers can be reproduced: at the paper's stated 17,820 kWh saved per
day when free cooling carries 100 % of CWP capacity, the implied
chiller efficiency is 17,820 / 24 / 3,000 tons = 0.2475 kW/ton, which
is the default here (a low-lift water-cooled chiller operating point).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

import numpy as np

from repro import constants, units
from repro.weather.chicago import ChicagoWeather


@dataclasses.dataclass(frozen=True)
class PlantOperatingPoint:
    """Plant output and energy at one instant."""

    supply_temperature_f: float
    free_cooling_fraction: float
    chiller_power_kw: float


class ChilledWaterPlant:
    """Chillers plus waterside economizer supplying the external loop.

    Args:
        weather: Outdoor conditions driving the economizer.
        supply_setpoint_f: Design chilled-water supply temperature.
        free_cooling_penalty_f: How much warmer the supply runs when
            fully free-cooled (economizer approach temperature).
        full_free_cooling_below_f: Outdoor temperature at/below which
            the economizer covers 100 % of the load.
        no_free_cooling_above_f: Outdoor temperature at/above which the
            economizer contributes nothing.
        chiller_kw_per_ton: Electrical input per ton of mechanical
            cooling.  The default is back-derived from the paper's
            free-cooling savings figure (see module docstring).
    """

    def __init__(
        self,
        weather: ChicagoWeather,
        supply_setpoint_f: float = constants.INLET_TEMP_F,
        free_cooling_penalty_f: float = 1.1,
        full_free_cooling_below_f: float = 38.0,
        no_free_cooling_above_f: float = 52.0,
        chiller_kw_per_ton: float = 0.2475,
    ) -> None:
        if no_free_cooling_above_f <= full_free_cooling_below_f:
            raise ValueError(
                "free-cooling band is empty: "
                f"{full_free_cooling_below_f} .. {no_free_cooling_above_f}"
            )
        if chiller_kw_per_ton <= 0:
            raise ValueError("chiller efficiency must be positive")
        self._weather = weather
        self.supply_setpoint_f = supply_setpoint_f
        self.free_cooling_penalty_f = free_cooling_penalty_f
        self.full_free_cooling_below_f = full_free_cooling_below_f
        self.no_free_cooling_above_f = no_free_cooling_above_f
        self.chiller_kw_per_ton = chiller_kw_per_ton

    # -- economizer ----------------------------------------------------------

    def free_cooling_fraction(
        self,
        epoch_s: Union[np.ndarray, float],
        outdoor_f: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Fraction of the cooling load carried by the economizer.

        Ramps linearly from 1.0 below the full-free-cooling threshold
        to 0.0 above the no-free-cooling threshold.

        Args:
            epoch_s: Timestamps to evaluate.
            outdoor_f: Optional precomputed outdoor temperature for the
                same timestamps; callers that already hold a weather
                table (the simulation engine) pass it to avoid
                re-evaluating the weather field.
        """
        if outdoor_f is None:
            outdoor_f = self._weather.temperature_f(epoch_s)
        outdoor_f = np.asarray(outdoor_f)
        span = self.no_free_cooling_above_f - self.full_free_cooling_below_f
        fraction = (self.no_free_cooling_above_f - outdoor_f) / span
        return np.clip(fraction, 0.0, 1.0)

    def supply_temperature_f(
        self,
        epoch_s: Union[np.ndarray, float],
        outdoor_f: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Chilled-water supply temperature at the given timestamps.

        Mechanical chilling holds the setpoint; free cooling runs up to
        ``free_cooling_penalty_f`` warmer, blended by the economizer
        fraction.  This produces the slightly-warmer-inlet-in-winter
        pattern of Fig 4(d).  ``outdoor_f`` optionally supplies a
        precomputed outdoor-temperature table (see
        :meth:`free_cooling_fraction`).
        """
        fraction = self.free_cooling_fraction(epoch_s, outdoor_f=outdoor_f)
        return self.supply_setpoint_f + self.free_cooling_penalty_f * fraction

    # -- energy --------------------------------------------------------------

    def chiller_power_kw(
        self, epoch_s: Union[np.ndarray, float], heat_load_kw: Union[np.ndarray, float]
    ) -> np.ndarray:
        """Electrical power the chillers draw to reject ``heat_load_kw``.

        The economizer-carried share of the load costs only pump work
        (folded into the plant overhead elsewhere); the mechanical share
        costs ``chiller_kw_per_ton`` per ton.
        """
        load = np.asarray(heat_load_kw, dtype="float64")
        if np.any(load < 0):
            raise ValueError("heat load cannot be negative")
        mechanical_kw = load * (1.0 - self.free_cooling_fraction(epoch_s))
        mechanical_tons = mechanical_kw / units.KW_PER_TON_REFRIGERATION
        return mechanical_tons * self.chiller_kw_per_ton

    def free_cooling_savings_kwh(
        self,
        epoch_s: np.ndarray,
        heat_load_kw: np.ndarray,
        dt_s: float,
    ) -> float:
        """Chiller energy avoided by the economizer over a sampled period.

        With the plant's full capacity (two 1,500-ton towers) carried by
        free cooling for a day this evaluates to the paper's 17,820 kWh
        figure.
        """
        load = np.asarray(heat_load_kw, dtype="float64")
        avoided_tons = (
            load
            * self.free_cooling_fraction(epoch_s)
            / units.KW_PER_TON_REFRIGERATION
        )
        avoided_kw = avoided_tons * self.chiller_kw_per_ton
        return float(np.sum(avoided_kw) * dt_s / 3600.0)

    @property
    def capacity_kw(self) -> float:
        """Total heat-rejection capacity of the plant in kW."""
        return units.tons_to_kw(constants.CHILLER_TONS * constants.NUM_CHILLERS)

    def operating_point(
        self, epoch_s: float, heat_load_kw: float
    ) -> PlantOperatingPoint:
        """Scalar convenience snapshot of the plant state."""
        return PlantOperatingPoint(
            supply_temperature_f=float(self.supply_temperature_f(epoch_s)),
            free_cooling_fraction=float(self.free_cooling_fraction(epoch_s)),
            chiller_power_kw=float(self.chiller_power_kw(epoch_s, heat_load_kw)),
        )
