"""Facility energy accounting: PUE and the cost of cooling.

The paper's "efficiency measures" angle quantified how much of Mira's
power went into cooling and what free cooling saved.  This module
layers that accounting on a completed simulation:

* **IT energy** — the racks' AC draw (what the coolant monitors log),
* **chiller energy** — from the plant model, economizer-adjusted,
* **pump energy** — proportional to pumped volume (the loop's pumps
  hold the flow setpoint),
* **ION energy** — the six air-cooled I/O forwarding racks (not
  instrumented by the coolant monitors, but real load),
* **CRAC energy** — the air side that cools the IONs and the room,
  modelled as a fixed fraction of the air-side heat load.

From these it derives the PUE (power usage effectiveness) series and
the free-cooling savings ledger.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from typing import TYPE_CHECKING

from repro import timeutil
from repro.cooling.plant import ChilledWaterPlant
from repro.facility.ion import IonPark
from repro.telemetry.records import Channel
from repro.telemetry.series import TimeSeries

if TYPE_CHECKING:  # avoid a circular import with repro.simulation
    from repro.simulation.engine import SimulationResult


@dataclasses.dataclass(frozen=True)
class EnergyModelConfig:
    """Non-IT load coefficients."""

    #: Pump power per GPM of loop flow (kW/GPM): ~40 kW at 1300 GPM.
    pump_kw_per_gpm: float = 0.03
    #: CRAC (air-side) power as a fraction of the air-side heat load
    #: (room losses from the compute racks plus the ION racks).
    crac_fraction: float = 0.06
    #: Fraction of compute-rack power escaping to the room air (the
    #: heat exchangers capture the rest).
    compute_air_leak: float = 0.5
    #: Whether the six air-cooled ION racks are accounted.
    include_ion: bool = True
    #: Fixed facility overhead (lighting, controls), kW.
    fixed_overhead_kw: float = 80.0


@dataclasses.dataclass(frozen=True)
class EnergyLedger:
    """Aggregated facility energy over a period, in kWh."""

    it_kwh: float
    chiller_kwh: float
    pump_kwh: float
    crac_kwh: float
    ion_kwh: float
    overhead_kwh: float
    free_cooling_savings_kwh: float

    @property
    def total_kwh(self) -> float:
        return (
            self.it_kwh
            + self.chiller_kwh
            + self.pump_kwh
            + self.crac_kwh
            + self.ion_kwh
            + self.overhead_kwh
        )

    @property
    def average_pue(self) -> float:
        """Total facility energy over IT energy."""
        if self.it_kwh <= 0:
            raise ValueError("no IT energy recorded")
        return self.total_kwh / self.it_kwh

    def breakdown(self) -> Dict[str, float]:
        """Component shares of the total, as fractions."""
        total = self.total_kwh
        return {
            "it": self.it_kwh / total,
            "chiller": self.chiller_kwh / total,
            "pump": self.pump_kwh / total,
            "crac": self.crac_kwh / total,
            "ion": self.ion_kwh / total,
            "overhead": self.overhead_kwh / total,
        }


class FacilityEnergyModel:
    """Energy accounting over a completed simulation."""

    def __init__(
        self,
        result: "SimulationResult",
        config: EnergyModelConfig = EnergyModelConfig(),
    ) -> None:
        self._result = result
        self.config = config
        self._plant = ChilledWaterPlant(result.weather)
        power = result.database.channel(Channel.POWER)
        self._epochs = power.epoch_s
        self._it_kw = np.nansum(power.values, axis=1)
        flow = result.database.total_flow_gpm()
        self._flow_gpm = flow.values
        self._dt_s = result.config.dt_s
        self._ions = IonPark() if config.include_ion else None
        utilization = result.database.system_utilization().values
        self._utilization = np.clip(np.nan_to_num(utilization), 0.0, 1.0)

    # -- component series ------------------------------------------------------

    def it_power_kw(self) -> TimeSeries:
        """Rack (IT) power over time."""
        return TimeSeries(self._epochs, self._it_kw, name="it_power", unit="kW")

    def chiller_power_kw(self) -> TimeSeries:
        """Plant chiller power over time (economizer-adjusted)."""
        values = self._plant.chiller_power_kw(self._epochs, self._it_kw)
        return TimeSeries(self._epochs, values, name="chiller_power", unit="kW")

    def pump_power_kw(self) -> TimeSeries:
        """Loop pump power over time."""
        values = self.config.pump_kw_per_gpm * self._flow_gpm
        return TimeSeries(self._epochs, values, name="pump_power", unit="kW")

    def ion_power_kw(self) -> TimeSeries:
        """The six air-cooled ION racks' draw over time (zeros if excluded)."""
        if self._ions is None:
            values = np.zeros_like(self._it_kw)
        else:
            values = self._ions.total_power_kw(self._utilization)
        return TimeSeries(self._epochs, values, name="ion_power", unit="kW")

    def crac_power_kw(self) -> TimeSeries:
        """Air-side cooling power over time.

        The CRAC units carry the room losses of the compute racks (a
        small leak past the heat exchangers) plus the entire ION heat
        load.
        """
        air_heat = (
            self.config.compute_air_leak * (1.0 - 0.98) * self._it_kw
            + self.ion_power_kw().values
        )
        values = self.config.crac_fraction * self._it_kw + (
            0.3 * air_heat  # CRAC COP ~ 3.3 on the air side
        )
        return TimeSeries(self._epochs, values, name="crac_power", unit="kW")

    def pue(self) -> TimeSeries:
        """The PUE series: total facility power over IT power.

        Liquid-cooled facilities with economizers run PUEs near 1.1-1.2;
        the series dips in winter when free cooling displaces the
        chillers.
        """
        total = (
            self._it_kw
            + self.chiller_power_kw().values
            + self.pump_power_kw().values
            + self.crac_power_kw().values
            + self.ion_power_kw().values
            + self.config.fixed_overhead_kw
        )
        safe_it = np.where(self._it_kw > 1.0, self._it_kw, np.nan)
        return TimeSeries(self._epochs, total / safe_it, name="pue")

    # -- aggregation ----------------------------------------------------------------

    def _kwh(self, series_kw: np.ndarray) -> float:
        return float(np.nansum(series_kw) * self._dt_s / 3600.0)

    def ledger(self) -> EnergyLedger:
        """The full-period energy ledger."""
        return EnergyLedger(
            it_kwh=self._kwh(self._it_kw),
            chiller_kwh=self._kwh(self.chiller_power_kw().values),
            pump_kwh=self._kwh(self.pump_power_kw().values),
            crac_kwh=self._kwh(self.crac_power_kw().values),
            ion_kwh=self._kwh(self.ion_power_kw().values),
            overhead_kwh=self._kwh(
                np.full_like(self._it_kw, self.config.fixed_overhead_kw)
            ),
            free_cooling_savings_kwh=self._plant.free_cooling_savings_kwh(
                self._epochs, self._it_kw, self._dt_s
            ),
        )

    def monthly_free_cooling_kwh(self) -> Dict[int, float]:
        """Free-cooling savings per calendar month (kWh)."""
        months = timeutil.months(self._epochs)
        out: Dict[int, float] = {}
        for month in range(1, 13):
            mask = months == month
            if not mask.any():
                continue
            out[month] = self._plant.free_cooling_savings_kwh(
                self._epochs[mask], self._it_kw[mask], self._dt_s
            )
        return out

    def seasonal_pue_swing(self) -> float:
        """Winter-vs-summer PUE difference (negative: winter cheaper)."""
        pue = self.pue()
        months = timeutil.months(pue.epoch_s)
        winter = np.nanmean(pue.values[np.isin(months, (12, 1, 2))])
        summer = np.nanmean(pue.values[np.isin(months, (6, 7, 8))])
        return float(winter - summer)
