"""The per-rack coolant monitor: sensors, calibration, alarm thresholds.

Each Mira rack carries a *coolant monitor* beside the inlet/outlet
lines of its internal loop.  Every 300 s it samples five channels —
data-center temperature, data-center humidity, coolant flow rate,
coolant temperature (inlet and outlet), and rack power — and stores
them in the environmental database.  The monitor also holds the
calibration used to correct raw sensor values, and a set of alarm
thresholds; a reading crossing a threshold raises a *Coolant Monitor
Failure* event into the RAS log (Section II).

The fatal trigger the paper describes is a **condensation guard**: when
the dewpoint of the air around the rack rises to (or above) nearly the
coolant/hardware temperature, condensation on electronics becomes
likely and the control system executes the two fatal-CMF actions
(solenoid close + power off).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro import constants, units
from repro.facility.topology import RackId


@dataclasses.dataclass(frozen=True)
class SensorReading:
    """One calibrated sample of all coolant monitor channels."""

    epoch_s: float
    rack_id: RackId
    dc_temperature_f: float
    dc_humidity_rh: float
    flow_gpm: float
    inlet_temperature_f: float
    outlet_temperature_f: float
    power_kw: float

    @property
    def dewpoint_f(self) -> float:
        """Dewpoint of the air at the rack, from temperature and RH."""
        return units.dewpoint_f(self.dc_temperature_f, self.dc_humidity_rh)

    @property
    def condensation_margin_f(self) -> float:
        """How far the coolant inlet runs *above* the air dewpoint.

        When this margin collapses toward zero, condensation on the
        cold plumbing is imminent — the fatal-CMF trigger condition.
        """
        return self.inlet_temperature_f - self.dewpoint_f


@dataclasses.dataclass(frozen=True)
class AlarmThresholds:
    """Threshold levels at which the monitor raises RAS events.

    Attributes:
        min_flow_gpm: Below this per-rack flow, a fatal event fires
            (loss of coolant).
        max_outlet_f: Above this outlet temperature, a fatal event
            fires (cooling not keeping up).
        min_condensation_margin_f: Below this inlet-minus-dewpoint
            margin, a fatal event fires (condensation risk — the
            trigger the paper describes).
        warn_fraction: Warn-severity events fire when a channel is
            within this fraction of its fatal threshold.
    """

    min_flow_gpm: float = 10.0
    max_outlet_f: float = 95.0
    min_condensation_margin_f: float = 2.0
    warn_fraction: float = 0.25

    def fatal_reason(self, reading: SensorReading) -> Optional[str]:
        """The fatal condition a reading violates, if any."""
        if reading.flow_gpm < self.min_flow_gpm:
            return "coolant_flow_loss"
        if reading.outlet_temperature_f > self.max_outlet_f:
            return "overtemperature"
        if reading.condensation_margin_f < self.min_condensation_margin_f:
            return "condensation_risk"
        return None

    def warn_reason(self, reading: SensorReading) -> Optional[str]:
        """The warn condition a reading violates, if any (and no fatal)."""
        if self.fatal_reason(reading) is not None:
            return None
        flow_warn = self.min_flow_gpm * (1.0 + self.warn_fraction)
        if reading.flow_gpm < flow_warn:
            return "coolant_flow_low"
        outlet_warn = self.max_outlet_f * (1.0 - self.warn_fraction / 4.0)
        if reading.outlet_temperature_f > outlet_warn:
            return "outlet_temperature_high"
        margin_warn = self.min_condensation_margin_f * (1.0 + self.warn_fraction)
        if reading.condensation_margin_f < margin_warn:
            return "condensation_margin_low"
        return None


@dataclasses.dataclass
class SensorCalibration:
    """Affine calibration applied to raw sensor values.

    One Mira sensor (on one rack) was replaced during the six years
    after it drifted; :meth:`drift` models that failure mode and
    :meth:`recalibrate` the replacement.
    """

    gain: float = 1.0
    offset: float = 0.0

    def apply(self, raw: float) -> float:
        """Calibrated value for a raw sensor sample."""
        return self.gain * raw + self.offset

    def drift(self, gain_error: float, offset_error: float) -> None:
        """Degrade the calibration (a malfunctioning sensor)."""
        self.gain *= 1.0 + gain_error
        self.offset += offset_error

    def recalibrate(self) -> None:
        """Restore nominal calibration (sensor replaced/revalidated)."""
        self.gain = 1.0
        self.offset = 0.0

    @property
    def is_nominal(self) -> bool:
        return self.gain == 1.0 and self.offset == 0.0


class CoolantMonitor:
    """The sensor module of one rack.

    Args:
        rack_id: Which rack this monitor instruments.
        thresholds: Alarm thresholds; defaults match the simulator's
            operating envelope.
        sample_period_s: Sampling cadence (300 s on Mira).
    """

    def __init__(
        self,
        rack_id: RackId,
        thresholds: Optional[AlarmThresholds] = None,
        sample_period_s: float = constants.MONITOR_SAMPLE_PERIOD_S,
    ) -> None:
        if sample_period_s <= 0:
            raise ValueError("sample period must be positive")
        self.rack_id = rack_id
        self.thresholds = thresholds if thresholds is not None else AlarmThresholds()
        self.sample_period_s = sample_period_s
        self.calibration = SensorCalibration()

    def make_reading(
        self,
        epoch_s: float,
        dc_temperature_f: float,
        dc_humidity_rh: float,
        flow_gpm: float,
        inlet_temperature_f: float,
        outlet_temperature_f: float,
        power_kw: float,
    ) -> SensorReading:
        """Assemble a calibrated reading from raw channel values.

        Calibration is applied to the coolant-temperature channels (the
        channel whose sensor failed on real Mira).
        """
        return SensorReading(
            epoch_s=epoch_s,
            rack_id=self.rack_id,
            dc_temperature_f=dc_temperature_f,
            dc_humidity_rh=dc_humidity_rh,
            flow_gpm=flow_gpm,
            inlet_temperature_f=self.calibration.apply(inlet_temperature_f),
            outlet_temperature_f=self.calibration.apply(outlet_temperature_f),
            power_kw=power_kw,
        )

    def check(self, reading: SensorReading) -> Optional[str]:
        """Fatal alarm reason for a reading, or None if within limits."""
        return self.thresholds.fatal_reason(reading)
