"""Adaptive flow balancing: the Section IV-B opportunity, implemented.

The paper reports an up-to-11 % rack-to-rack coolant flow spread from
underfloor blockage, and that operators compensate by conservatively
raising the *total* flow — then calls for "further efforts ... to
monitor and manage the coolant flow rate effectively in real time".

:class:`AdaptiveFlowBalancer` is that effort: it estimates each rack's
hydraulic conductance from the flow telemetry and computes per-rack
trim-valve settings that homogenize the split, so the same thermal
headroom needs less pumped water.  The estimator works purely from the
monitor data (no access to the loop's ground truth), exactly as a
facility controller would.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro import constants
from repro.cooling.loops import CoolingLoop
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import Channel


@dataclasses.dataclass(frozen=True)
class BalancePlan:
    """Per-rack trim settings and their predicted effect."""

    #: Estimated relative conductances (mean 1.0).
    estimated_conductance: np.ndarray
    #: Trim-valve multipliers in (0, 1]; 1.0 = fully open.
    trim: np.ndarray
    #: Predicted relative flow spread after trimming.
    predicted_spread: float
    #: Measured spread before trimming.
    measured_spread: float

    @property
    def improvement(self) -> float:
        """Fractional spread reduction (1.0 = perfectly flat)."""
        if self.measured_spread <= 0:
            return 0.0
        return 1.0 - self.predicted_spread / self.measured_spread


class AdaptiveFlowBalancer:
    """Estimates conductances from telemetry and plans trim settings.

    Args:
        headroom: Trim floor; no valve closes below this multiplier
            (over-trimming risks starving a rack during transients).
    """

    def __init__(self, headroom: float = 0.85) -> None:
        if not 0.0 < headroom <= 1.0:
            raise ValueError(f"headroom must be in (0, 1], got {headroom}")
        self.headroom = headroom

    # -- estimation -------------------------------------------------------------

    def estimate_conductance(
        self, database: EnvironmentalDatabase
    ) -> np.ndarray:
        """Relative per-rack conductances from the flow telemetry.

        With the pumps holding total flow, each rack's share of the
        total is its conductance share; the estimator is the
        time-median of the per-sample shares, robust to outages and
        precursor transients.

        Raises:
            ValueError: if no usable flow telemetry is present.
        """
        flow = database.channel(Channel.FLOW).values
        totals = np.nansum(flow, axis=1, keepdims=True)
        valid = totals[:, 0] > 1.0
        if not valid.any():
            raise ValueError("no usable flow telemetry")
        shares = flow[valid] / totals[valid]
        median_share = np.nanmedian(shares, axis=0)
        conductance = median_share / np.nanmean(median_share)
        return conductance

    # -- planning ----------------------------------------------------------------

    def plan(self, database: EnvironmentalDatabase) -> BalancePlan:
        """Compute trim settings that flatten the flow split.

        Trimming can only *reduce* a rack's conductance, so the target
        is the weakest rack's effective level, floored by the headroom
        policy: ``trim_i = max(headroom, g_min / g_i)``.
        """
        conductance = self.estimate_conductance(database)
        g_min = float(conductance.min())
        trim = np.clip(g_min / conductance, self.headroom, 1.0)
        trimmed = conductance * trim
        measured = float(
            (conductance.max() - conductance.min()) / conductance.min()
        )
        predicted = float((trimmed.max() - trimmed.min()) / trimmed.min())
        return BalancePlan(
            estimated_conductance=conductance,
            trim=trim,
            predicted_spread=predicted,
            measured_spread=measured,
        )

    # -- verification ------------------------------------------------------------

    def apply_to_loop(
        self, loop: CoolingLoop, plan: BalancePlan, total_flow_gpm: float
    ) -> Tuple[np.ndarray, float]:
        """Apply a plan's trims to a ground-truth loop and measure.

        Returns:
            (per-rack flows under the plan, achieved relative spread).
        """
        flows = loop.rack_flows_gpm(total_flow_gpm, flow_disturbance=plan.trim)
        spread = float((flows.max() - flows.min()) / flows.min())
        return flows, spread

    def required_total_flow(
        self,
        plan: BalancePlan,
        per_rack_minimum_gpm: float = 24.0,
    ) -> Tuple[float, float]:
        """Total flow needed so every rack gets its minimum share.

        Returns:
            (unbalanced requirement, balanced requirement) in GPM —
            the balanced loop needs less total flow because its
            weakest rack is no longer so far below the mean.
        """
        shares_before = plan.estimated_conductance / plan.estimated_conductance.sum()
        trimmed = plan.estimated_conductance * plan.trim
        shares_after = trimmed / trimmed.sum()
        before = per_rack_minimum_gpm / float(shares_before.min())
        after = per_rack_minimum_gpm / float(shares_after.min())
        return before, after
