"""Synthetic workload generation.

Generates the job stream the scheduler consumes.  The stream's
intensity is shaped by three multiplicative factors:

* a **secular factor** rising over the six years (Mira's user base and
  demand grew; Fig 2b's 80 % -> 93 % utilization trend),
* the **allocation-year factor**: the INCITE/ALCC deadline-rush mix
  (Fig 4's higher second-half-of-year load),
* Poisson arrival noise plus occasional near-full-machine *capability*
  jobs whose draining causes the transient utilization dips the paper
  discusses in Section III-A.

Job CPU intensity is lognormal around a slowly rising mean (codes got
better optimized over Mira's lifetime), which is what makes power rise
faster than utilization in Fig 2 and keeps the rack-level
power/utilization correlation near the paper's r = 0.45.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import timeutil
from repro.scheduler.jobs import Job
from repro.scheduler.projects import AllocationProgram, Project
from repro.scheduler.queues import QueueName, queue_for_walltime


@dataclasses.dataclass(frozen=True)
class WorkloadConfig:
    """Tunable workload parameters.

    Attributes:
        demand_start: Offered load as a fraction of machine capacity at
            the start of production (2014).
        demand_end: Offered load fraction at the end of production
            (2019).  Values slightly above 1.0 keep the queue deep.
        rush_strength_incite: Deadline-rush amplitude for INCITE.
        rush_strength_alcc: Deadline-rush amplitude for ALCC.
        incite_share: Fraction of demand from INCITE projects (higher
            priority, bigger jobs).
        alcc_share: Fraction of demand from ALCC projects.
        long_job_fraction: Fraction of jobs routed to prod-long.
        capability_job_rate_per_day: Arrival rate of near-full-machine
            capability jobs.
        intensity_mean_start: Mean job CPU intensity in 2014.
        intensity_mean_end: Mean job CPU intensity in 2019.
        intensity_sigma: Lognormal sigma of per-job intensity.
    """

    demand_start: float = 0.76
    demand_end: float = 0.925
    rush_strength_incite: float = 0.9
    rush_strength_alcc: float = 0.6
    incite_share: float = 0.55
    alcc_share: float = 0.30
    long_job_fraction: float = 0.42
    capability_job_rate_per_day: float = 0.10
    intensity_mean_start: float = 0.97
    intensity_mean_end: float = 1.09
    intensity_sigma: float = 0.22

    def __post_init__(self) -> None:
        if not 0.0 < self.demand_start <= self.demand_end:
            raise ValueError("demand must be positive and non-decreasing")
        if self.incite_share + self.alcc_share > 1.0:
            raise ValueError("program shares exceed 1.0")
        if not 0.0 <= self.long_job_fraction <= 1.0:
            raise ValueError("long_job_fraction must be in [0, 1]")

    @property
    def discretionary_share(self) -> float:
        return 1.0 - self.incite_share - self.alcc_share


#: Production job size distribution, in midplanes (512 nodes each).
_SIZE_CHOICES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)
_SIZE_PROBS: Tuple[float, ...] = (0.30, 0.25, 0.20, 0.15, 0.07, 0.03)

#: Capability job sizes: half or full machine.
_CAPABILITY_SIZES: Tuple[int, ...] = (48, 96)


class WorkloadGenerator:
    """Poisson job-arrival generator with allocation-year shaping.

    Args:
        config: Workload parameters.
        rng: Seeded randomness source.
        total_midplanes: Machine capacity the demand fractions refer to.
        production_start/production_end: The secular demand ramp
            endpoints.
    """

    def __init__(
        self,
        config: Optional[WorkloadConfig] = None,
        rng: Optional[np.random.Generator] = None,
        total_midplanes: int = 96,
        production_start_epoch_s: Optional[float] = None,
        production_end_epoch_s: Optional[float] = None,
    ) -> None:
        from repro import constants  # local import to avoid cycle at module load

        self.config = config if config is not None else WorkloadConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._total_midplanes = total_midplanes
        self._start = (
            production_start_epoch_s
            if production_start_epoch_s is not None
            else timeutil.to_epoch(constants.PRODUCTION_START)
        )
        self._end = (
            production_end_epoch_s
            if production_end_epoch_s is not None
            else timeutil.to_epoch(constants.PRODUCTION_END)
        )
        self._next_job_id = 0
        self._projects = self._make_projects()
        # Expected midplane-hours per production job, used to convert a
        # demand fraction into an arrival rate.
        mean_size = float(np.dot(_SIZE_CHOICES, _SIZE_PROBS))
        self._mean_walltime_h = (
            self.config.long_job_fraction * 12.0
            + (1.0 - self.config.long_job_fraction) * 2.6
        )
        self._mean_job_midplane_hours = mean_size * self._mean_walltime_h

    # -- projects ------------------------------------------------------------

    def _make_projects(self) -> Dict[AllocationProgram, List[Project]]:
        projects: Dict[AllocationProgram, List[Project]] = {}
        for program, count, core_hours, size in (
            (AllocationProgram.INCITE, 12, 150e6, 8),
            (AllocationProgram.ALCC, 10, 60e6, 4),
            (AllocationProgram.DISCRETIONARY, 20, 8e6, 2),
        ):
            projects[program] = [
                Project(
                    name=f"{program.value}-{i:02d}",
                    program=program,
                    allocation_core_hours=core_hours,
                    typical_job_midplanes=size,
                )
                for i in range(count)
            ]
        return projects

    # -- demand shaping --------------------------------------------------------

    def secular_factor(self, epoch_s):
        """Linear demand growth over the production period.

        Accepts a scalar or a timestamp array (the engine precomputes
        whole-grid driver tables).
        """
        frac = (np.asarray(epoch_s, dtype="float64") - self._start) / max(
            1.0, self._end - self._start
        )
        frac = np.clip(frac, 0.0, 1.0)
        factor = self.config.demand_start + frac * (
            self.config.demand_end - self.config.demand_start
        )
        return float(factor) if np.ndim(epoch_s) == 0 else factor

    def seasonal_factor(self, epoch_s):
        """Allocation-year demand factor, normalized to mean ~1 over a year.

        The mean of ``1 + s * progress**2`` over an allocation year is
        ``1 + s/3``; each program's rush curve is divided by that so
        the seasonal factor redistributes load within the year without
        changing the annual total.  Scalar in, ``float`` out; array in,
        array out.
        """
        cfg = self.config
        incite = AllocationProgram.INCITE.demand_multiplier(
            epoch_s, cfg.rush_strength_incite
        ) / (1.0 + cfg.rush_strength_incite / 3.0)
        alcc = AllocationProgram.ALCC.demand_multiplier(
            epoch_s, cfg.rush_strength_alcc
        ) / (1.0 + cfg.rush_strength_alcc / 3.0)
        return (
            cfg.incite_share * incite
            + cfg.alcc_share * alcc
            + cfg.discretionary_share * 1.0
        )

    def arrival_rate_per_hour(self, epoch_s, seasonal: Optional[np.ndarray] = None):
        """Expected production-job arrivals per hour at this moment.

        Args:
            epoch_s: Scalar timestamp or timestamp array.
            seasonal: Optional precomputed :meth:`seasonal_factor` for
                the same timestamps; pass it to avoid evaluating the
                allocation-year curves twice per step (the engine
                already needs the seasonal factor for its flow trim).
        """
        if seasonal is None:
            seasonal = self.seasonal_factor(epoch_s)
        offered_midplane_hours = (
            self._total_midplanes * self.secular_factor(epoch_s) * seasonal
        )
        return offered_midplane_hours / self._mean_job_midplane_hours

    def intensity_mean(self, epoch_s):
        """Mean CPU intensity of jobs submitted at this moment.

        Accepts a scalar or a timestamp array.
        """
        frac = (np.asarray(epoch_s, dtype="float64") - self._start) / max(
            1.0, self._end - self._start
        )
        frac = np.clip(frac, 0.0, 1.0)
        mean = self.config.intensity_mean_start + frac * (
            self.config.intensity_mean_end - self.config.intensity_mean_start
        )
        return float(mean) if np.ndim(epoch_s) == 0 else mean

    # -- job fabrication ----------------------------------------------------------

    def _pick_program(self) -> AllocationProgram:
        cfg = self.config
        roll = self._rng.random()
        if roll < cfg.incite_share:
            return AllocationProgram.INCITE
        if roll < cfg.incite_share + cfg.alcc_share:
            return AllocationProgram.ALCC
        return AllocationProgram.DISCRETIONARY

    def _draw_intensity(self, epoch_s: float) -> float:
        mean = self.intensity_mean(epoch_s)
        sigma = self.config.intensity_sigma
        # Lognormal with the requested arithmetic mean.
        mu = np.log(mean) - sigma**2 / 2.0
        return float(np.clip(self._rng.lognormal(mu, sigma), 0.3, 2.5))

    def _draw_walltime_s(self, long_job: bool) -> float:
        if long_job:
            # 6..24 h, mode near 10 h.
            hours = float(np.clip(self._rng.lognormal(np.log(11.0), 0.35), 6.0, 24.0))
        else:
            # 0.5..6 h, mode near 2 h.
            hours = float(np.clip(self._rng.lognormal(np.log(2.2), 0.55), 0.5, 6.0))
        return hours * 3600.0

    def _make_job(self, epoch_s: float, midplanes: int, walltime_s: float) -> Job:
        program = self._pick_program()
        project_list = self._projects[program]
        project = project_list[int(self._rng.integers(len(project_list)))]
        job = Job(
            job_id=self._next_job_id,
            project=project,
            queue=queue_for_walltime(walltime_s),
            midplanes=midplanes,
            walltime_s=walltime_s,
            intensity=self._draw_intensity(epoch_s),
            submit_epoch_s=epoch_s,
        )
        self._next_job_id += 1
        return job

    def make_burner_job(self, epoch_s: float, duration_s: float, intensity: float) -> Job:
        """A health-monitoring burner job covering one midplane."""
        job = Job(
            job_id=self._next_job_id,
            project=None,
            queue=QueueName.BURNER,
            midplanes=1,
            walltime_s=duration_s,
            intensity=intensity,
            submit_epoch_s=epoch_s,
            is_burner=True,
        )
        self._next_job_id += 1
        return job

    # -- the generator entry point ---------------------------------------------------

    def arrivals(self, epoch_s: float, dt_s: float) -> List[Job]:
        """Jobs submitted during ``[epoch_s, epoch_s + dt_s)``.

        Returns production jobs (Poisson at the shaped rate) plus any
        capability jobs (independent, rarer Poisson stream).
        """
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        jobs: List[Job] = []
        # Discrete-time quantization correction: a stepping scheduler
        # holds each job's midplanes for on average an extra dt/2, so
        # the effective offered load is inflated by that factor; divide
        # it out so the demand fractions stay cadence-independent.
        quantization = 1.0 + dt_s / (2.0 * 3600.0 * self._mean_walltime_h)
        expected = self.arrival_rate_per_hour(epoch_s) * dt_s / 3600.0 / quantization
        for _ in range(int(self._rng.poisson(expected))):
            long_job = self._rng.random() < self.config.long_job_fraction
            midplanes = int(
                self._rng.choice(_SIZE_CHOICES, p=_SIZE_PROBS)
            )
            jobs.append(self._make_job(epoch_s, midplanes, self._draw_walltime_s(long_job)))
        expected_capability = (
            self.config.capability_job_rate_per_day * dt_s / 86_400.0
        )
        for _ in range(int(self._rng.poisson(expected_capability))):
            midplanes = int(self._rng.choice(_CAPABILITY_SIZES))
            walltime_s = float(self._rng.uniform(4.0, 10.0)) * 3600.0
            jobs.append(self._make_job(epoch_s, midplanes, walltime_s))
        return jobs

    def _assemble_job(
        self,
        epoch_s: float,
        midplanes: int,
        walltime_s: float,
        program_roll: float,
        project_roll: float,
        intensity: float,
    ) -> Job:
        """Build one job from pre-drawn attribute values."""
        cfg = self.config
        if program_roll < cfg.incite_share:
            program = AllocationProgram.INCITE
        elif program_roll < cfg.incite_share + cfg.alcc_share:
            program = AllocationProgram.ALCC
        else:
            program = AllocationProgram.DISCRETIONARY
        project_list = self._projects[program]
        project = project_list[int(project_roll * len(project_list))]
        job = Job(
            job_id=self._next_job_id,
            project=project,
            queue=queue_for_walltime(walltime_s),
            midplanes=int(midplanes),
            walltime_s=float(walltime_s),
            intensity=float(intensity),
            submit_epoch_s=float(epoch_s),
        )
        self._next_job_id += 1
        return job

    def pregenerate_arrivals(
        self,
        epochs: np.ndarray,
        dt_s: float,
        rates_per_hour: Optional[np.ndarray] = None,
    ) -> List[List[Job]]:
        """Draw every arrival for a whole time grid in one batched pass.

        Statistically equivalent to calling :meth:`arrivals` once per
        step, but all random draws (Poisson counts, sizes, walltimes,
        intensities, program/project choices) happen as whole-grid
        vector operations; only the final ``Job`` construction runs
        per job.  The per-step driver evaluation this replaces was the
        single largest scalar cost in the simulation engine.

        Args:
            epochs: Step timestamps, ascending.
            dt_s: Step width in seconds.
            rates_per_hour: Optional precomputed
                :meth:`arrival_rate_per_hour` over ``epochs``.

        Returns:
            One list of jobs per step, in step order.
        """
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        epochs = np.asarray(epochs, dtype="float64")
        n = len(epochs)
        if rates_per_hour is None:
            rates_per_hour = self.arrival_rate_per_hour(epochs)
        quantization = 1.0 + dt_s / (2.0 * 3600.0 * self._mean_walltime_h)
        expected = np.asarray(rates_per_hour, dtype="float64") * (
            dt_s / 3600.0 / quantization
        )
        counts = self._rng.poisson(expected)
        cap_counts = self._rng.poisson(
            self.config.capability_job_rate_per_day * dt_s / 86_400.0, size=n
        )
        total = int(counts.sum())
        cap_total = int(cap_counts.sum())

        # Production-job attributes, drawn in bulk.
        sizes = self._rng.choice(_SIZE_CHOICES, p=_SIZE_PROBS, size=total)
        long_flags = self._rng.random(total) < self.config.long_job_fraction
        long_h = np.clip(self._rng.lognormal(np.log(11.0), 0.35, size=total), 6.0, 24.0)
        short_h = np.clip(self._rng.lognormal(np.log(2.2), 0.55, size=total), 0.5, 6.0)
        walltimes_s = np.where(long_flags, long_h, short_h) * 3600.0
        # Capability-job attributes.
        cap_sizes = self._rng.choice(np.asarray(_CAPABILITY_SIZES), size=cap_total)
        cap_walltimes_s = self._rng.uniform(4.0, 10.0, size=cap_total) * 3600.0
        # Draws shared by both streams: production jobs first, then
        # capability jobs, each grouped by step.
        job_epochs = np.concatenate(
            [np.repeat(epochs, counts), np.repeat(epochs, cap_counts)]
        )
        sigma = self.config.intensity_sigma
        mu = np.log(self.intensity_mean(job_epochs)) - sigma**2 / 2.0
        intensities = np.clip(self._rng.lognormal(mu, sigma), 0.3, 2.5)
        program_rolls = self._rng.random(total + cap_total)
        project_rolls = self._rng.random(total + cap_total)

        per_step: List[List[Job]] = []
        prod_at = 0
        cap_at = total
        for i in range(n):
            jobs: List[Job] = []
            for _ in range(int(counts[i])):
                jobs.append(
                    self._assemble_job(
                        epochs[i],
                        int(sizes[prod_at]),
                        walltimes_s[prod_at],
                        program_rolls[prod_at],
                        project_rolls[prod_at],
                        intensities[prod_at],
                    )
                )
                prod_at += 1
            for _ in range(int(cap_counts[i])):
                jobs.append(
                    self._assemble_job(
                        epochs[i],
                        int(cap_sizes[cap_at - total]),
                        cap_walltimes_s[cap_at - total],
                        program_rolls[cap_at],
                        project_rolls[cap_at],
                        intensities[cap_at],
                    )
                )
                cap_at += 1
            per_step.append(jobs)
        return per_step
