"""The stepping scheduler: queues, EASY backfill, maintenance, burners.

:class:`MiraScheduler` advances in discrete time steps.  Each step it

1. opens/closes the Monday maintenance window (killing user jobs and
   covering the racks with *burner* jobs — the paper's Section III-B
   workaround for cold-coolant damage to idle CPUs),
2. opens/closes random *reservation holes* (racks reserved for projects
   that underuse them — one of the paper's causes of transient
   utilization drops),
3. completes running jobs whose walltime has elapsed,
4. admits new arrivals from the :class:`WorkloadGenerator`, and
5. starts queued jobs FCFS with EASY backfill (head job gets a shadow
   reservation; later jobs may jump ahead only if they fit now and end
   before the shadow time).

The step output is the per-rack utilization and busy-intensity vectors
that the power/cooling models consume.
"""

from __future__ import annotations

import collections
import dataclasses
import heapq
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro import constants, timeutil
from repro.facility.topology import MiraTopology
from repro.scheduler.allocator import (
    MIDPLANES_PER_RACK,
    MidplaneAllocator,
    TOTAL_MIDPLANES,
    rack_of_midplane,
)
from repro.scheduler.jobs import Job, JobState
from repro.scheduler.queues import QueueName
from repro.scheduler.stats import SchedulingStats
from repro.scheduler.workload import WorkloadGenerator


@dataclasses.dataclass(frozen=True)
class MaintenancePolicy:
    """When and how maintenance windows run.

    Attributes:
        weekday: Day of week (Monday == 0) maintenance may start.
        start_hour: Local hour at which the window opens (9 AM).
        probability: Chance a given Monday actually has maintenance
            (the paper: "does not need to be scheduled every week").
        min_hours/max_hours: Window duration range (6-10 h).
        burner_coverage: Fraction of midplanes kept busy by burner
            jobs during the window.
        burner_intensity: CPU intensity of burner jobs (light compared
            to production, so power drops during maintenance even
            though nodes stay warm).
    """

    weekday: int = constants.MAINTENANCE_WEEKDAY
    start_hour: int = constants.MAINTENANCE_START_HOUR
    probability: float = 0.75
    min_hours: float = float(constants.MAINTENANCE_MIN_HOURS)
    max_hours: float = float(constants.MAINTENANCE_MAX_HOURS)
    burner_coverage: float = 0.82
    burner_intensity: float = 0.65

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.min_hours > self.max_hours:
            raise ValueError("min_hours exceeds max_hours")
        if not 0.0 <= self.burner_coverage <= 1.0:
            raise ValueError("burner_coverage must be in [0, 1]")


@dataclasses.dataclass(frozen=True)
class ReservationPolicy:
    """Random underused-reservation events (transient utilization holes)."""

    rate_per_day: float = 0.08
    min_racks: int = 2
    max_racks: int = 6
    min_hours: float = 4.0
    max_hours: float = 12.0


@dataclasses.dataclass(frozen=True)
class SchedulerState:
    """Per-step scheduler output consumed by the telemetry models."""

    epoch_s: float
    rack_utilization: np.ndarray
    rack_intensity: np.ndarray
    in_maintenance: bool
    running_jobs: int
    queued_jobs: int

    @property
    def system_utilization(self) -> float:
        """Machine-wide fraction of busy nodes."""
        return float(np.mean(self.rack_utilization))


class MiraScheduler:
    """Discrete-time queueing scheduler over the 96 midplanes.

    Args:
        workload: Arrival generator.
        rng: Randomness for maintenance/reservation draws.
        allocator: Midplane allocator; a fresh one is built if omitted.
        maintenance: Maintenance window policy.
        reservations: Reservation-hole policy.
        backfill_depth: How many queued jobs behind the head are
            examined for backfill each step.
        queue_cap: Beyond this queue depth new arrivals are shed
            (users throttle submissions against a saturated queue);
            bounds memory and keeps long simulations fast.
    """

    def __init__(
        self,
        workload: WorkloadGenerator,
        rng: Optional[np.random.Generator] = None,
        allocator: Optional[MidplaneAllocator] = None,
        maintenance: Optional[MaintenancePolicy] = None,
        reservations: Optional[ReservationPolicy] = None,
        topology: Optional[MiraTopology] = None,
        backfill_depth: int = 64,
        queue_cap: int = 200,
    ) -> None:
        self.workload = workload
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.topology = topology if topology is not None else MiraTopology()
        self.allocator = (
            allocator if allocator is not None else MidplaneAllocator(self.topology)
        )
        self.maintenance = maintenance if maintenance is not None else MaintenancePolicy()
        self.reservations = (
            reservations if reservations is not None else ReservationPolicy()
        )
        self.backfill_depth = backfill_depth
        self.queue_cap = queue_cap

        self._queue: Deque[Job] = collections.deque()
        #: Jobs killed by maintenance, waiting for their owners to
        #: resubmit them: heap of (resubmit_epoch_s, job_id, job).
        self._delayed: List[Tuple[float, int, Job]] = []
        #: Heap of (end_epoch_s, job_id, job) for running jobs.
        self._running: List[Tuple[float, int, Job]] = []
        self._burners: List[Job] = []
        self._maintenance_until: Optional[float] = None
        self._reservation_until: Optional[float] = None
        self._reserved_racks: Tuple[int, ...] = ()
        self._completed_count = 0
        self._killed_count = 0
        #: Per-queue job accounting (wait times, throughput, losses).
        self.stats = SchedulingStats()
        #: Incremental per-rack occupancy accumulators, maintained on
        #: every job start/release so the per-step rack vectors cost
        #: O(racks) instead of O(running jobs x midplanes).
        self._rack_busy = np.zeros(constants.NUM_RACKS)
        self._rack_intensity_sum = np.zeros(constants.NUM_RACKS)

    # -- introspection -------------------------------------------------------

    @property
    def queued_jobs(self) -> Tuple[Job, ...]:
        return tuple(self._queue)

    @property
    def running_jobs(self) -> Tuple[Job, ...]:
        return tuple(job for _, _, job in self._running)

    @property
    def in_maintenance(self) -> bool:
        return self._maintenance_until is not None

    @property
    def completed_count(self) -> int:
        return self._completed_count

    @property
    def killed_count(self) -> int:
        return self._killed_count

    # -- occupancy accounting --------------------------------------------------

    def _occupy(self, job: Job) -> None:
        """Add a started job's midplanes to the rack accumulators."""
        for mp in job.assigned_midplanes:
            rack = rack_of_midplane(mp)
            self._rack_busy[rack] += 1.0
            self._rack_intensity_sum[rack] += job.intensity

    def _vacate(self, job: Job) -> None:
        """Remove a finished/killed job's midplanes from the accumulators."""
        for mp in job.assigned_midplanes:
            rack = rack_of_midplane(mp)
            self._rack_busy[rack] -= 1.0
            self._rack_intensity_sum[rack] -= job.intensity

    # -- maintenance window ----------------------------------------------------

    def _maintenance_starts_now(self, epoch_s: float, dt_s: float) -> bool:
        """Whether a maintenance window opens during this step."""
        # Inline weekday arithmetic (1970-01-01 was a Thursday): this
        # runs every step, and the numpy datetime64 route in
        # timeutil.weekdays costs microseconds per scalar call.
        weekday = (int(epoch_s // timeutil.DAY_S) + 3) % 7
        if weekday != self.maintenance.weekday:
            return False
        hour = (epoch_s % timeutil.DAY_S) / timeutil.HOUR_S
        start = float(self.maintenance.start_hour)
        if not (hour <= start < hour + dt_s / timeutil.HOUR_S):
            return False
        # Deterministic per-week draw so dt does not change the schedule.
        week_index = int(epoch_s // timeutil.WEEK_S)
        week_rng = np.random.default_rng(
            np.random.SeedSequence([811_213, week_index])
        )
        return bool(week_rng.random() < self.maintenance.probability)

    def _maintenance_duration_s(self, epoch_s: float) -> float:
        week_index = int(epoch_s // timeutil.WEEK_S)
        week_rng = np.random.default_rng(
            np.random.SeedSequence([577_131, week_index])
        )
        hours = week_rng.uniform(self.maintenance.min_hours, self.maintenance.max_hours)
        return float(hours) * timeutil.HOUR_S

    def _enter_maintenance(self, epoch_s: float) -> None:
        self._maintenance_until = epoch_s + self._maintenance_duration_s(epoch_s)
        # Kill all running user jobs.  Their owners resubmit over the
        # following day rather than instantly (avoiding an artificial
        # post-maintenance utilization spike).
        for _, _, job in self._running:
            job.kill(epoch_s)
            self._killed_count += 1
            self.stats.on_kill(job)
            self.allocator.release(job)
            self._vacate(job)
            resubmit_at = epoch_s + float(self._rng.uniform(0.0, timeutil.DAY_S))
            requeued = dataclasses.replace(
                job,
                state=JobState.QUEUED,
                start_epoch_s=None,
                end_epoch_s=None,
                assigned_midplanes=(),
                submit_epoch_s=resubmit_at,
            )
            heapq.heappush(self._delayed, (resubmit_at, requeued.job_id, requeued))
        self._running.clear()
        # Cover the machine with burner jobs to keep nodes warm.
        duration = self._maintenance_until - epoch_s
        count = int(round(self.maintenance.burner_coverage * TOTAL_MIDPLANES))
        free = self.allocator.free_midplanes(QueueName.BURNER)[:count]
        for mp in free:
            burner = self.workload.make_burner_job(
                epoch_s, duration, self.maintenance.burner_intensity
            )
            self.allocator.claim(burner.job_id, (mp,))
            burner.start(epoch_s, (mp,))
            self._occupy(burner)
            self.stats.on_start(burner, epoch_s)
            self._burners.append(burner)

    def _exit_maintenance(self, epoch_s: float) -> None:
        self._maintenance_until = None
        for burner in self._burners:
            burner.complete()
            self.stats.on_complete(burner)
            self.allocator.release(burner)
            self._vacate(burner)
        self._burners.clear()

    # -- reservation holes ---------------------------------------------------------

    def _maybe_open_reservation(self, epoch_s: float, dt_s: float) -> None:
        if self._reservation_until is not None:
            return
        expected = self.reservations.rate_per_day * dt_s / 86_400.0
        if self._rng.random() >= expected:
            return
        count = int(
            self._rng.integers(self.reservations.min_racks, self.reservations.max_racks + 1)
        )
        racks = tuple(
            int(r)
            for r in self._rng.choice(constants.NUM_RACKS, size=count, replace=False)
        )
        hours = float(
            self._rng.uniform(self.reservations.min_hours, self.reservations.max_hours)
        )
        self._reserved_racks = racks
        self._reservation_until = epoch_s + hours * timeutil.HOUR_S
        self.allocator.block_racks(racks)

    def _maybe_close_reservation(self, epoch_s: float) -> None:
        if self._reservation_until is not None and epoch_s >= self._reservation_until:
            self.allocator.unblock_racks(self._reserved_racks)
            self._reserved_racks = ()
            self._reservation_until = None

    # -- job flow ---------------------------------------------------------------------

    def _complete_finished(self, epoch_s: float) -> None:
        while self._running and self._running[0][0] <= epoch_s:
            _, _, job = heapq.heappop(self._running)
            job.complete()
            self._completed_count += 1
            self.stats.on_complete(job)
            self.allocator.release(job)
            self._vacate(job)

    def _start_job(self, job: Job, epoch_s: float) -> bool:
        placement = self.allocator.try_allocate(job)
        if placement is None:
            return False
        job.start(epoch_s, placement)
        self._occupy(job)
        self.stats.on_start(job, epoch_s)
        heapq.heappush(self._running, (job.end_epoch_s, job.job_id, job))
        return True

    def _shadow_time(self, epoch_s: float, needed: int) -> float:
        """Earliest time ``needed`` midplanes will be free (EASY reservation)."""
        free = self.allocator.free_count()
        if free >= needed:
            return epoch_s
        for end, _, job in sorted(self._running):
            free += job.midplanes
            if free >= needed:
                return end
        return float("inf")

    def _schedule(self, epoch_s: float) -> None:
        """FCFS + EASY backfill over the queue."""
        # Start jobs FCFS while they fit.
        while self._queue:
            if not self._start_job(self._queue[0], epoch_s):
                break
            self._queue.popleft()
        if not self._queue:
            return
        # Head job blocked: compute its shadow time, then backfill.
        head = self._queue[0]
        shadow = self._shadow_time(epoch_s, head.midplanes)
        scan = list(self._queue)[1 : 1 + self.backfill_depth]
        for job in scan:
            if epoch_s + job.walltime_s > shadow:
                continue
            if self._start_job(job, epoch_s):
                self._queue.remove(job)

    # -- rack outages (failure path) --------------------------------------------------------

    def fail_racks(self, rack_indices: Tuple[int, ...], epoch_s: float) -> int:
        """Take racks down: kill jobs touching them, block allocation.

        Called by the simulation engine when a CMF (or cascading
        failure) shuts racks off.  Jobs are killed, not requeued — the
        paper's point is that CMFs kill hundreds of jobs outright.

        Returns:
            The number of jobs killed.
        """
        failed = set(rack_indices)
        killed = 0
        survivors: List[Tuple[float, int, Job]] = []
        for end, job_id, job in self._running:
            touches = any(rack_of_midplane(mp) in failed for mp in job.assigned_midplanes)
            if touches:
                job.kill(epoch_s)
                self._killed_count += 1
                self.stats.on_kill(job)
                killed += 1
                self.allocator.release(job)
                self._vacate(job)
            else:
                survivors.append((end, job_id, job))
        self._running = survivors
        heapq.heapify(self._running)
        # Burner jobs on failed racks die too.
        doomed_burners = [
            b
            for b in self._burners
            if any(rack_of_midplane(mp) in failed for mp in b.assigned_midplanes)
        ]
        for burner in doomed_burners:
            burner.kill(epoch_s)
            self.stats.on_kill(burner)
            self.allocator.release(burner)
            self._vacate(burner)
            self._burners.remove(burner)
        self.allocator.block_racks(sorted(failed))
        return killed

    def recover_racks(self, rack_indices: Tuple[int, ...]) -> None:
        """Bring failed racks back into the allocatable pool."""
        self.allocator.unblock_racks(sorted(set(rack_indices)))

    # -- per-rack outputs -----------------------------------------------------------------

    def _rack_vectors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-rack utilization/intensity from the incremental accumulators.

        The accumulators are updated on every job start/release, so
        this is O(racks) per step rather than a scan over every running
        job's midplanes (which dominated the engine profile at long
        horizons).
        """
        busy = self._rack_busy
        utilization = busy / MIDPLANES_PER_RACK
        intensity = np.where(
            busy > 0.5, self._rack_intensity_sum / np.maximum(busy, 1.0), 1.0
        )
        return utilization, intensity

    # -- the step -----------------------------------------------------------------------

    def step(
        self,
        epoch_s: float,
        dt_s: float,
        arrivals: Optional[List[Job]] = None,
    ) -> SchedulerState:
        """Advance the scheduler to ``epoch_s`` and return the rack state.

        Steps must be called with non-decreasing timestamps.

        Args:
            epoch_s: Step timestamp.
            dt_s: Step width.
            arrivals: Optional pre-generated submissions for this step
                (see :meth:`WorkloadGenerator.pregenerate_arrivals`);
                when omitted the workload generator is asked directly.
        """
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        # Maintenance transitions.
        if self._maintenance_until is not None and epoch_s >= self._maintenance_until:
            self._exit_maintenance(epoch_s)
        if self._maintenance_until is None and self._maintenance_starts_now(
            epoch_s, dt_s
        ):
            self._enter_maintenance(epoch_s)
        # Reservation holes.
        self._maybe_close_reservation(epoch_s)
        if self._maintenance_until is None:
            self._maybe_open_reservation(epoch_s, dt_s)
        # Job flow.
        self._complete_finished(epoch_s)
        while self._delayed and self._delayed[0][0] <= epoch_s:
            _, _, job = heapq.heappop(self._delayed)
            self._queue.append(job)
        if arrivals is None:
            arrivals = self.workload.arrivals(epoch_s, dt_s)
        room = max(0, self.queue_cap - len(self._queue))
        self._queue.extend(arrivals[:room])
        if self._maintenance_until is None:
            self._schedule(epoch_s)
        self.stats.on_step(len(self._queue))
        utilization, intensity = self._rack_vectors()
        return SchedulerState(
            epoch_s=epoch_s,
            rack_utilization=utilization,
            rack_intensity=intensity,
            in_maintenance=self._maintenance_until is not None,
            running_jobs=len(self._running),
            queued_jobs=len(self._queue),
        )
