"""The job model.

Jobs are sized in **midplanes** (512 nodes each; a rack holds two), the
allocation granularity of Blue Gene/Q partitions.  Each job carries a
CPU *intensity* describing how hard it drives the cores — the quantity
whose per-job variance decorrelates rack power from rack utilization
(Section IV-A's r = 0.45 finding).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple

from repro.scheduler.projects import Project
from repro.scheduler.queues import QueueName


class JobState(enum.Enum):
    """Lifecycle of a job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    KILLED = "killed"


@dataclasses.dataclass
class Job:
    """One batch job.

    Attributes:
        job_id: Unique, monotonically assigned identifier.
        project: Owning project.
        queue: Submission queue; determines placement policy.
        midplanes: Partition size in midplanes (power of two, or the
            full machine).
        walltime_s: Requested (and, in this simulation, actual)
            runtime.
        intensity: CPU intensity; 1.0 is nominal.
        submit_epoch_s: Submission time.
        is_burner: True for the no-useful-work health/warming jobs run
            during maintenance windows.
    """

    job_id: int
    project: Optional[Project]
    queue: QueueName
    midplanes: int
    walltime_s: float
    intensity: float
    submit_epoch_s: float
    is_burner: bool = False

    state: JobState = JobState.QUEUED
    start_epoch_s: Optional[float] = None
    end_epoch_s: Optional[float] = None
    assigned_midplanes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.midplanes < 1:
            raise ValueError(f"job needs at least one midplane, got {self.midplanes}")
        if self.walltime_s <= 0:
            raise ValueError(f"walltime must be positive, got {self.walltime_s}")
        if self.intensity < 0:
            raise ValueError(f"intensity cannot be negative, got {self.intensity}")

    @property
    def nodes(self) -> int:
        """Node count of the partition (512 per midplane)."""
        return self.midplanes * 512

    def start(self, epoch_s: float, midplane_ids: Tuple[int, ...]) -> None:
        """Transition QUEUED -> RUNNING on the given midplanes.

        Raises:
            ValueError: on an illegal transition or wrong-size
                placement.
        """
        if self.state is not JobState.QUEUED:
            raise ValueError(f"cannot start a job in state {self.state}")
        if len(midplane_ids) != self.midplanes:
            raise ValueError(
                f"job needs {self.midplanes} midplanes, given {len(midplane_ids)}"
            )
        self.state = JobState.RUNNING
        self.start_epoch_s = epoch_s
        self.end_epoch_s = epoch_s + self.walltime_s
        self.assigned_midplanes = tuple(midplane_ids)

    def complete(self) -> None:
        """Transition RUNNING -> COMPLETED (normal end of walltime)."""
        if self.state is not JobState.RUNNING:
            raise ValueError(f"cannot complete a job in state {self.state}")
        self.state = JobState.COMPLETED

    def kill(self, epoch_s: float) -> None:
        """Transition RUNNING -> KILLED (failure or maintenance drain)."""
        if self.state is not JobState.RUNNING:
            raise ValueError(f"cannot kill a job in state {self.state}")
        self.state = JobState.KILLED
        self.end_epoch_s = epoch_s

    @property
    def core_hours(self) -> float:
        """Consumed core-hours (16 compute cores per node)."""
        if self.start_epoch_s is None or self.end_epoch_s is None:
            return 0.0
        elapsed_h = (self.end_epoch_s - self.start_epoch_s) / 3600.0
        return self.nodes * 16 * elapsed_h
