"""Scheduler accounting: wait times, throughput, delivered core-hours.

The paper's utilization numbers ultimately come from Cobalt's job
accounting; this collector reproduces that layer for the simulated
scheduler so analyses (and tests) can ask operational questions — how
long do jobs wait per queue, how many core-hours were delivered vs
lost to kills, how deep does the queue run.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.scheduler.jobs import Job
from repro.scheduler.queues import QueueName


@dataclasses.dataclass
class QueueStats:
    """Accumulated statistics for one submission queue."""

    started: int = 0
    completed: int = 0
    killed: int = 0
    total_wait_s: float = 0.0
    delivered_core_h: float = 0.0
    lost_core_h: float = 0.0

    @property
    def mean_wait_s(self) -> float:
        return self.total_wait_s / self.started if self.started else 0.0


class SchedulingStats:
    """Collects per-queue job accounting from scheduler callbacks."""

    def __init__(self) -> None:
        self._queues: Dict[QueueName, QueueStats] = {
            queue: QueueStats() for queue in QueueName
        }
        self._queue_depth_samples: List[int] = []

    # -- callbacks (invoked by the scheduler) ----------------------------------

    def on_start(self, job: Job, epoch_s: float) -> None:
        stats = self._queues[job.queue]
        stats.started += 1
        stats.total_wait_s += max(0.0, epoch_s - job.submit_epoch_s)

    def on_complete(self, job: Job) -> None:
        stats = self._queues[job.queue]
        stats.completed += 1
        stats.delivered_core_h += job.core_hours

    def on_kill(self, job: Job) -> None:
        stats = self._queues[job.queue]
        stats.killed += 1
        stats.lost_core_h += job.core_hours

    def on_step(self, queued_jobs: int) -> None:
        self._queue_depth_samples.append(queued_jobs)

    # -- queries ------------------------------------------------------------------

    def queue(self, queue: QueueName) -> QueueStats:
        return self._queues[queue]

    @property
    def total_delivered_core_h(self) -> float:
        return sum(s.delivered_core_h for s in self._queues.values())

    @property
    def total_lost_core_h(self) -> float:
        return sum(s.lost_core_h for s in self._queues.values())

    @property
    def loss_fraction(self) -> float:
        """Killed work over all work touched."""
        total = self.total_delivered_core_h + self.total_lost_core_h
        return self.total_lost_core_h / total if total else 0.0

    def mean_queue_depth(self) -> float:
        if not self._queue_depth_samples:
            return 0.0
        return float(np.mean(self._queue_depth_samples))

    def p95_queue_depth(self) -> float:
        if not self._queue_depth_samples:
            return 0.0
        return float(np.percentile(self._queue_depth_samples, 95))

    def summary(self) -> str:
        """A printable per-queue accounting table."""
        lines = [
            f"{'queue':<12} {'started':>8} {'completed':>9} {'killed':>7} "
            f"{'mean wait':>10} {'delivered core-h':>17}"
        ]
        for queue in QueueName:
            stats = self._queues[queue]
            if stats.started == 0:
                continue
            lines.append(
                f"{queue.value:<12} {stats.started:>8} {stats.completed:>9} "
                f"{stats.killed:>7} {stats.mean_wait_s / 3600.0:>9.2f}h "
                f"{stats.delivered_core_h:>17,.0f}"
            )
        lines.append(
            f"queue depth: mean {self.mean_queue_depth():.1f}, "
            f"p95 {self.p95_queue_depth():.0f}; "
            f"lost-work fraction {self.loss_fraction:.2%}"
        )
        return "\n".join(lines)
