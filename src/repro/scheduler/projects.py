"""Projects, programs, and allocation years.

Mira primarily served two allocation programs (Section III-B):

* **INCITE** — allocation year January 1 .. December 31, higher
  priority and larger resource demands;
* **ALCC** — allocation year July 1 .. June 30 of the next year;
* plus smaller **discretionary** projects with no hard deadline.

Users burn most of their core-hours near the *end* of their allocation
year, so INCITE demand peaks toward December and ALCC toward June;
because INCITE projects are bigger, the second half of the calendar
year runs hotter overall — the Fig 4(a)/(b) pattern.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Union

import numpy as np

from repro import timeutil

ArrayLike = Union[np.ndarray, float, int]


class AllocationProgram(enum.Enum):
    """The award program a project belongs to."""

    INCITE = "incite"
    ALCC = "alcc"
    DISCRETIONARY = "discretionary"

    @property
    def allocation_year_start_month(self) -> int:
        """Month (1..12) in which this program's allocation year begins."""
        if self is AllocationProgram.INCITE:
            return 1
        if self is AllocationProgram.ALCC:
            return 7
        return 1  # discretionary: treated as calendar-year, no rush

    def year_progress(self, epoch_s: ArrayLike) -> Union[np.ndarray, float]:
        """Fraction (0..1) of this program's allocation year elapsed.

        0 at the start of the allocation year, approaching 1 at its
        deadline.  Drives the deadline-rush demand model.  Accepts a
        scalar (returns ``float``) or a timestamp array (returns an
        array) — the simulation engine evaluates whole grids at once.
        """
        month = timeutil.months(epoch_s)
        day_in_month = timeutil.days_of_year(epoch_s).astype("float64") - np.asarray(
            _CUMULATIVE_MONTH_DAYS
        )[month - 1]
        months_elapsed = (month - self.allocation_year_start_month) % 12
        progress = np.minimum(1.0, (months_elapsed + day_in_month / 30.5) / 12.0)
        return float(progress) if np.ndim(epoch_s) == 0 else progress

    def demand_multiplier(
        self, epoch_s: ArrayLike, rush_strength: float = 1.0
    ) -> Union[np.ndarray, float]:
        """Relative job-submission intensity at a moment in time.

        Grows from a base level at the start of the allocation year to
        ``1 + rush_strength`` at the deadline: the deadline rush.
        Discretionary projects submit at a constant rate.  Scalar in,
        ``float`` out; array in, array out.
        """
        if self is AllocationProgram.DISCRETIONARY:
            if np.ndim(epoch_s) == 0:
                return 1.0
            return np.ones(np.shape(epoch_s), dtype="float64")
        progress = self.year_progress(epoch_s)
        # Quadratic ramp: most of the rush lands in the final third.
        return 1.0 + rush_strength * progress**2


#: Cumulative days at the start of each month (non-leap; close enough
#: for demand shaping).
_CUMULATIVE_MONTH_DAYS = (0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334)


@dataclasses.dataclass(frozen=True)
class Project:
    """One allocated project.

    Attributes:
        name: Display name.
        program: Allocation program.
        allocation_core_hours: Awarded core-hours for the allocation
            year; proportional to the project's share of demand.
        typical_job_midplanes: Characteristic job size for the project,
            in 512-node midplanes.
    """

    name: str
    program: AllocationProgram
    allocation_core_hours: float
    typical_job_midplanes: int = 4

    def __post_init__(self) -> None:
        if self.allocation_core_hours <= 0:
            raise ValueError("allocation must be positive")
        if self.typical_job_midplanes < 1:
            raise ValueError("typical job size must be at least one midplane")
