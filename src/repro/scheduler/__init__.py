"""Job scheduling simulation: the driver of Mira's utilization.

The paper's temporal power/utilization findings are all downstream of
how jobs arrive and are placed: INCITE and ALCC allocation years shape
the monthly demand curve (Fig 4), Monday maintenance with burner jobs
shapes the weekly curve (Fig 5), and the ``prod-long``-to-row-0 queue
policy plus user rack affinities shape the spatial utilization profile
(Fig 6).  This package implements those mechanisms as an actual
queueing/backfill simulation rather than painting the curves directly.
"""

from repro.scheduler.jobs import Job, JobState
from repro.scheduler.projects import AllocationProgram, Project
from repro.scheduler.workload import WorkloadGenerator, WorkloadConfig
from repro.scheduler.queues import QueueName
from repro.scheduler.allocator import MidplaneAllocator
from repro.scheduler.scheduler import MaintenancePolicy, MiraScheduler, SchedulerState
from repro.scheduler.stats import SchedulingStats
from repro.scheduler.traces import TraceJob, TraceWorkload, export_swf, load_swf

__all__ = [
    "Job",
    "JobState",
    "AllocationProgram",
    "Project",
    "WorkloadGenerator",
    "WorkloadConfig",
    "QueueName",
    "MidplaneAllocator",
    "MaintenancePolicy",
    "MiraScheduler",
    "SchedulerState",
    "SchedulingStats",
    "TraceJob",
    "TraceWorkload",
    "export_swf",
    "load_swf",
]
