"""Submission queues and their placement policies.

Mira's operators route long-running jobs (the ``prod-long`` queue) to
row 0 of racks; shorter production jobs (``prod-short``) land on rows
1-2 first.  Burner jobs run during maintenance.  This queue-to-row
policy is what makes row 0 the highest-utilization, highest-power row
in Fig 6.
"""

from __future__ import annotations

import enum


class QueueName(enum.Enum):
    """The submission queues of the simulated Cobalt scheduler."""

    PROD_LONG = "prod-long"
    PROD_SHORT = "prod-short"
    BACKFILL = "backfill"
    BURNER = "burner"

    @property
    def preferred_row(self) -> int:
        """The rack row this queue's jobs are packed into first."""
        if self is QueueName.PROD_LONG:
            return 0
        return 1

    @property
    def min_walltime_s(self) -> float:
        """Smallest walltime admitted to this queue."""
        if self is QueueName.PROD_LONG:
            return 6 * 3600.0
        return 0.0

    @property
    def max_walltime_s(self) -> float:
        """Largest walltime admitted to this queue."""
        if self is QueueName.PROD_LONG:
            return 24 * 3600.0
        if self is QueueName.PROD_SHORT:
            return 6 * 3600.0
        if self is QueueName.BACKFILL:
            return 2 * 3600.0
        return 12 * 3600.0  # burner: bounded by the maintenance window

    def admits(self, walltime_s: float) -> bool:
        """Whether a job of this walltime may be submitted here."""
        return self.min_walltime_s <= walltime_s <= self.max_walltime_s


def queue_for_walltime(walltime_s: float) -> QueueName:
    """Route a job to the production queue matching its walltime."""
    if walltime_s < 0:
        raise ValueError(f"walltime cannot be negative, got {walltime_s}")
    if QueueName.PROD_LONG.admits(walltime_s):
        return QueueName.PROD_LONG
    return QueueName.PROD_SHORT
