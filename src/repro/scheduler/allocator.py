"""Midplane allocation: mapping jobs onto racks.

Partitions are allocated in midplanes (two per rack, 96 total).  The
allocator implements the placement behaviour the paper attributes to
real Mira operations:

* ``prod-long`` jobs pack into row 0 first (so row 0 shows the highest
  utilization and power in Fig 6),
* certain users habitually target specific regions — columns 2, 6, A
  and B — creating utilization hotspots (Section IV-A), with the
  strongest affinity at rack (0, A) (the highest-utilization rack),
* rack (2, D) is the least-preferred allocation target (the paper's
  lowest-utilization rack).

Within a preference tier the allocator packs the lowest-numbered free
midplanes first, which keeps partitions reasonably contiguous.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants
from repro.facility.topology import MiraTopology, RackId
from repro.scheduler.jobs import Job
from repro.scheduler.queues import QueueName

#: Midplanes per rack.
MIDPLANES_PER_RACK = constants.MIDPLANES_PER_RACK

#: Total allocatable midplanes.
TOTAL_MIDPLANES = constants.NUM_RACKS * MIDPLANES_PER_RACK

#: Columns with user-affinity hotspots (Section IV-A).
AFFINITY_COLUMNS = (0x2, 0x6, 0xA, 0xB)


def rack_of_midplane(midplane_id: int) -> int:
    """Flat rack index owning a midplane."""
    if not 0 <= midplane_id < TOTAL_MIDPLANES:
        raise ValueError(f"midplane id out of range: {midplane_id}")
    return midplane_id // MIDPLANES_PER_RACK


class MidplaneAllocator:
    """Free-list allocator over the 96 midplanes.

    Args:
        topology: Floor plan (used for rack naming/row lookups).
    """

    #: How many jittered scan-order variants to precompute per queue
    #: class.  Placement on real Mira was not strictly first-fit; the
    #: variants spread idle midplanes across the floor instead of
    #: piling all idleness onto the tail of one deterministic order.
    ORDER_VARIANTS = 24

    #: Positional jitter (in midplane slots) applied to each variant.
    #: Larger than a row's span, so within-row position is a weak
    #: preference and idleness spreads evenly; the affinity pull stays
    #: comparable to the jitter's sigma, so hotspots remain hotspots.
    ORDER_JITTER = 64.0

    def __init__(
        self,
        topology: Optional[MiraTopology] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._topology = topology if topology is not None else MiraTopology()
        self._rng = rng if rng is not None else np.random.default_rng(12)
        #: midplane id -> job id, or None when free/blocked.
        self._owner: List[Optional[int]] = [None] * TOTAL_MIDPLANES
        self._blocked: np.ndarray = np.zeros(TOTAL_MIDPLANES, dtype=bool)
        self._affinity = self._build_affinity()
        #: Precomputed allocation-order variants per preferred row.
        self._order_by_row: Dict[int, List[Tuple[int, ...]]] = {
            row: [
                self._allocation_order(row)
                for _ in range(self.ORDER_VARIANTS)
            ]
            for row in range(constants.NUM_ROWS)
        }

    # -- preference structure ---------------------------------------------------

    def _build_affinity(self) -> np.ndarray:
        """Static per-rack allocation preference scores (higher first)."""
        scores = np.zeros(constants.NUM_RACKS)
        for rack_id in self._topology.rack_ids:
            score = 0.0
            if rack_id.col in AFFINITY_COLUMNS:
                score += 0.5
            if (rack_id.row, rack_id.col) == constants.HIGHEST_UTILIZATION_RACK:
                score += 2.0
            if (rack_id.row, rack_id.col) == (2, 0xD):
                score -= 0.6  # the paper's least-utilized rack
            scores[rack_id.flat_index] = score
        return scores

    def _allocation_order(self, preferred_row: int) -> Tuple[int, ...]:
        """Midplane scan order for a queue preferring ``preferred_row``.

        ``prod-long`` (preferred row 0) packs row 0 first and spills
        into rows 1-2; every other queue treats rows 1 and 2 as one
        pool and takes row 0 last (keeping it free for long jobs).
        Affinity acts as a *soft* bias — each unit of affinity pulls a
        rack's midplanes a few positions forward in the scan — and a
        per-variant random jitter spreads residual idleness evenly.
        """
        midplanes_per_row = constants.RACKS_PER_ROW * MIDPLANES_PER_RACK
        jitter = self._rng.uniform(0.0, self.ORDER_JITTER, size=TOTAL_MIDPLANES)

        def key(midplane_id: int) -> Tuple[int, float, int]:
            rack = rack_of_midplane(midplane_id)
            row = rack // constants.RACKS_PER_ROW
            if preferred_row == 0:
                row_rank = 0 if row == 0 else 1
            else:
                row_rank = 1 if row == 0 else 0
            within_row = midplane_id - row * midplanes_per_row
            score = within_row - 12.0 * self._affinity[rack] + jitter[midplane_id]
            return (row_rank, score, row)

        return tuple(sorted(range(TOTAL_MIDPLANES), key=key))

    # -- blocking (reservations / rack outages) ----------------------------------

    def block_racks(self, rack_indices: Sequence[int]) -> None:
        """Remove whole racks from the allocatable pool (reservation/outage).

        Running jobs on those racks are unaffected; callers kill them
        separately if the block is an outage.
        """
        for rack in rack_indices:
            for mp in (rack * MIDPLANES_PER_RACK, rack * MIDPLANES_PER_RACK + 1):
                self._blocked[mp] = True

    def unblock_racks(self, rack_indices: Sequence[int]) -> None:
        """Return racks to the allocatable pool."""
        for rack in rack_indices:
            for mp in (rack * MIDPLANES_PER_RACK, rack * MIDPLANES_PER_RACK + 1):
                self._blocked[mp] = False

    @property
    def blocked_racks(self) -> Tuple[int, ...]:
        """Flat indices of currently blocked racks."""
        blocked = self._blocked.reshape(-1, MIDPLANES_PER_RACK).any(axis=1)
        return tuple(int(i) for i in np.flatnonzero(blocked))

    # -- allocation ----------------------------------------------------------------

    def free_midplanes(self, queue: QueueName) -> List[int]:
        """Free, unblocked midplanes in this queue's preference order.

        A random precomputed order variant is used each call so that
        idle capacity rotates across the floor.
        """
        variants = self._order_by_row[queue.preferred_row]
        order = variants[int(self._rng.integers(len(variants)))]
        return [
            mp for mp in order if self._owner[mp] is None and not self._blocked[mp]
        ]

    def free_count(self) -> int:
        """Number of allocatable midplanes right now."""
        return sum(
            1
            for mp in range(TOTAL_MIDPLANES)
            if self._owner[mp] is None and not self._blocked[mp]
        )

    def try_allocate(self, job: Job) -> Optional[Tuple[int, ...]]:
        """Reserve midplanes for a job, or return None if it cannot fit."""
        candidates = self.free_midplanes(job.queue)
        if len(candidates) < job.midplanes:
            return None
        chosen = tuple(candidates[: job.midplanes])
        for mp in chosen:
            self._owner[mp] = job.job_id
        return chosen

    def claim(self, job_id: int, midplane_ids: Sequence[int]) -> None:
        """Directly place a job on specific free midplanes (burner path).

        Raises:
            ValueError: if any midplane is already owned.
        """
        for mp in midplane_ids:
            if self._owner[mp] is not None:
                raise ValueError(f"midplane {mp} already owned by {self._owner[mp]}")
        for mp in midplane_ids:
            self._owner[mp] = job_id

    def release(self, job: Job) -> None:
        """Free a finished job's midplanes.

        Raises:
            ValueError: if a midplane is not owned by this job (double
                release or corrupted state).
        """
        for mp in job.assigned_midplanes:
            if self._owner[mp] != job.job_id:
                raise ValueError(
                    f"midplane {mp} not owned by job {job.job_id} "
                    f"(owner: {self._owner[mp]})"
                )
            self._owner[mp] = None

    # -- occupancy views -------------------------------------------------------------

    def rack_occupancy(self) -> np.ndarray:
        """Fraction of each rack's midplanes occupied by jobs (flat order)."""
        occupied = np.array([owner is not None for owner in self._owner])
        return occupied.reshape(-1, MIDPLANES_PER_RACK).mean(axis=1)

    def midplane_owners(self) -> Tuple[Optional[int], ...]:
        """Current owner job id of each midplane."""
        return tuple(self._owner)
