"""Workload traces: Standard Workload Format export and replay.

The HPC scheduling community exchanges job logs in the Standard
Workload Format (SWF: one job per line, whitespace-separated fields,
``;`` comment headers).  The paper's utilization analysis is grounded
in Mira's Cobalt logs, which ALCF published in SWF-like form — so the
simulated scheduler speaks it too:

* :func:`export_swf` writes the jobs a simulation ran,
* :func:`load_swf` parses a trace file,
* :class:`TraceWorkload` replays a trace through
  :class:`~repro.scheduler.scheduler.MiraScheduler` in place of the
  synthetic :class:`~repro.scheduler.workload.WorkloadGenerator` —
  letting real (or previously simulated) workloads drive the facility.

Only the SWF fields the scheduler needs are interpreted; the rest are
written as ``-1`` ("unknown") per the SWF convention.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro import timeutil
from repro.scheduler.jobs import Job
from repro.scheduler.queues import QueueName, queue_for_walltime

PathLike = Union[str, Path]

#: SWF queue-number mapping (site-specific by convention).
_QUEUE_NUMBERS = {
    QueueName.PROD_SHORT: 1,
    QueueName.PROD_LONG: 2,
    QueueName.BACKFILL: 3,
    QueueName.BURNER: 4,
}
_QUEUE_BY_NUMBER = {number: queue for queue, number in _QUEUE_NUMBERS.items()}


@dataclasses.dataclass(frozen=True)
class TraceJob:
    """One SWF record (the fields this scheduler interprets)."""

    job_id: int
    submit_offset_s: float
    run_time_s: float
    num_nodes: int
    queue_number: int

    @property
    def midplanes(self) -> int:
        """Nodes rounded up to whole 512-node midplanes."""
        return max(1, int(np.ceil(self.num_nodes / 512)))

    @property
    def queue(self) -> QueueName:
        return _QUEUE_BY_NUMBER.get(
            self.queue_number, queue_for_walltime(self.run_time_s)
        )


def export_swf(
    jobs: Iterable[Job],
    path: PathLike,
    reference_epoch_s: float,
    comment: str = "synthetic Mira workload",
) -> int:
    """Write jobs as SWF; returns the number of records written.

    Jobs that never started are skipped (SWF describes executed work).
    """
    records = 0
    with open(path, "w") as handle:
        handle.write(f"; {comment}\n")
        handle.write(f"; UnixStartTime: {int(reference_epoch_s)}\n")
        handle.write("; MaxNodes: 49152\n")
        for job in jobs:
            if job.start_epoch_s is None or job.end_epoch_s is None:
                continue
            submit = job.submit_epoch_s - reference_epoch_s
            wait = job.start_epoch_s - job.submit_epoch_s
            run = job.end_epoch_s - job.start_epoch_s
            fields = [
                job.job_id,                     # 1 job number
                int(submit),                    # 2 submit time
                int(max(0, wait)),              # 3 wait time
                int(run),                       # 4 run time
                job.nodes,                      # 5 allocated processors (nodes)
                -1,                             # 6 average CPU time
                -1,                             # 7 used memory
                job.nodes,                      # 8 requested processors
                int(job.walltime_s),            # 9 requested time
                -1,                             # 10 requested memory
                1,                              # 11 status (completed)
                -1,                             # 12 user id
                -1,                             # 13 group id
                -1,                             # 14 executable
                _QUEUE_NUMBERS[job.queue],      # 15 queue number
                -1,                             # 16 partition
                -1,                             # 17 preceding job
                -1,                             # 18 think time
            ]
            handle.write(" ".join(str(f) for f in fields) + "\n")
            records += 1
    return records


def load_swf(path: PathLike) -> List[TraceJob]:
    """Parse an SWF file into trace jobs.

    Raises:
        ValueError: on a malformed record line.
    """
    jobs: List[TraceJob] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(";"):
                continue
            fields = stripped.split()
            if len(fields) < 15:
                raise ValueError(
                    f"{path}:{line_number}: expected >= 15 SWF fields, "
                    f"got {len(fields)}"
                )
            run_time = float(fields[3])
            nodes = int(fields[4])
            if run_time <= 0 or nodes <= 0:
                continue  # cancelled / failed records carry -1
            jobs.append(
                TraceJob(
                    job_id=int(fields[0]),
                    submit_offset_s=float(fields[1]),
                    run_time_s=run_time,
                    num_nodes=nodes,
                    queue_number=int(fields[14]),
                )
            )
    jobs.sort(key=lambda j: j.submit_offset_s)
    return jobs


class TraceWorkload:
    """Replays an SWF trace through the scheduler.

    Implements the same interface the scheduler uses from
    :class:`~repro.scheduler.workload.WorkloadGenerator`: ``arrivals``
    and ``make_burner_job`` (burners stay synthetic — maintenance is a
    facility policy, not part of the trace).

    Args:
        trace: Parsed trace jobs (submit-time sorted).
        start_epoch_s: Wall-clock epoch the trace's time zero maps to.
        intensity: CPU intensity assigned to replayed jobs (SWF has no
            power data).
    """

    def __init__(
        self,
        trace: Sequence[TraceJob],
        start_epoch_s: float,
        intensity: float = 1.0,
    ) -> None:
        self._trace = sorted(trace, key=lambda j: j.submit_offset_s)
        self._start = start_epoch_s
        self._cursor = 0
        self._next_job_id = 1_000_000  # burner ids, clear of trace ids
        self.intensity = intensity

    @property
    def remaining(self) -> int:
        """Trace records not yet submitted."""
        return len(self._trace) - self._cursor

    def arrivals(self, epoch_s: float, dt_s: float) -> List[Job]:
        """Jobs whose submit time falls within ``[epoch_s, epoch_s + dt_s)``."""
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        out: List[Job] = []
        while self._cursor < len(self._trace):
            record = self._trace[self._cursor]
            submit = self._start + record.submit_offset_s
            if submit >= epoch_s + dt_s:
                break
            self._cursor += 1
            out.append(
                Job(
                    job_id=record.job_id,
                    project=None,
                    queue=record.queue,
                    midplanes=min(record.midplanes, 96),
                    walltime_s=record.run_time_s,
                    intensity=self.intensity,
                    submit_epoch_s=submit,
                )
            )
        return out

    def make_burner_job(self, epoch_s: float, duration_s: float, intensity: float) -> Job:
        """Synthetic burner job (maintenance is not part of the trace)."""
        job = Job(
            job_id=self._next_job_id,
            project=None,
            queue=QueueName.BURNER,
            midplanes=1,
            walltime_s=duration_s,
            intensity=intensity,
            submit_epoch_s=epoch_s,
            is_burner=True,
        )
        self._next_job_id += 1
        return job
