"""Model persistence: save/load trained classifiers.

An operational CMF predictor is trained once on historical windows and
then deployed against live telemetry; that only works if the trained
model (weights, architecture, activations, feature scaler) can be
written to disk and restored bit-for-bit.  Models are stored as numpy
``.npz`` archives with a small JSON header — no pickling, so archives
are portable and safe to load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.ml.activations import by_name
from repro.ml.layers import Dense
from repro.ml.network import NeuralNetwork
from repro.ml.train import FeatureScaler, TrainResult

PathLike = Union[str, Path]

#: Format version written into every archive.
FORMAT_VERSION = 1


def save_model(result: TrainResult, path: PathLike) -> Path:
    """Write a trained classifier to a ``.npz`` archive.

    Returns:
        The path written.
    """
    out = Path(path)
    network = result.network
    header = {
        "format_version": FORMAT_VERSION,
        "layers": [
            {
                "input_size": layer.input_size,
                "output_size": layer.output_size,
                "activation": layer.activation.name,
            }
            for layer in network.layers
        ],
        "has_scaler": result.scaler is not None,
        "train_losses": result.train_losses,
        "validation_losses": result.validation_losses,
    }
    arrays = {"header": np.array(json.dumps(header))}
    for index, layer in enumerate(network.layers):
        arrays[f"weights_{index}"] = layer.weights
        arrays[f"biases_{index}"] = layer.biases
    if result.scaler is not None:
        arrays["scaler_mean"] = result.scaler.mean
        arrays["scaler_std"] = result.scaler.std
    np.savez(out, **arrays)
    # np.savez appends .npz when missing; normalize the reported path.
    return out if out.suffix == ".npz" else out.with_suffix(out.suffix + ".npz")


def load_model(path: PathLike) -> TrainResult:
    """Restore a classifier saved by :func:`save_model`.

    Raises:
        ValueError: on a missing/incompatible header.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        if "header" not in archive:
            raise ValueError(f"{path} is not a saved model (no header)")
        header = json.loads(str(archive["header"]))
        if header.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported model format {header.get('format_version')}"
            )
        layers = []
        for index, spec in enumerate(header["layers"]):
            layer = Dense(
                spec["input_size"],
                spec["output_size"],
                activation=by_name(spec["activation"]),
            )
            layer.weights = archive[f"weights_{index}"].copy()
            layer.biases = archive[f"biases_{index}"].copy()
            layers.append(layer)
        scaler = None
        if header["has_scaler"]:
            scaler = FeatureScaler(
                mean=archive["scaler_mean"].copy(),
                std=archive["scaler_std"].copy(),
            )
    return TrainResult(
        network=NeuralNetwork(layers),
        scaler=scaler,
        train_losses=list(header["train_losses"]),
        validation_losses=list(header["validation_losses"]),
    )
