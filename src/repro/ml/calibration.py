"""Probability calibration diagnostics.

The paper stresses that false positives are the limiting factor for
proactive CMF mitigation ("the false positives need to [be] minimized
as much as possible").  Acting on a probability threshold is only
sound if the probabilities are *calibrated*; this module provides the
standard diagnostics: the reliability curve, the Brier score, and the
expected calibration error (ECE).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class ReliabilityCurve:
    """Binned predicted-vs-observed frequencies."""

    bin_centers: np.ndarray
    predicted_mean: np.ndarray
    observed_frequency: np.ndarray
    counts: np.ndarray

    @property
    def expected_calibration_error(self) -> float:
        """Count-weighted mean |predicted - observed| over the bins."""
        weights = self.counts / max(1, self.counts.sum())
        gaps = np.abs(self.predicted_mean - self.observed_frequency)
        return float(np.sum(weights * gaps))


def brier_score(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean squared error of probabilities against binary outcomes.

    0 is perfect; 0.25 is an uninformative constant 0.5 predictor.

    Raises:
        ValueError: on shape mismatch or out-of-range probabilities.
    """
    p = np.asarray(probabilities, dtype="float64").ravel()
    y = np.asarray(labels, dtype="float64").ravel()
    if p.shape != y.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {y.shape}")
    if np.any((p < 0.0) | (p > 1.0)):
        raise ValueError("probabilities must lie in [0, 1]")
    return float(np.mean((p - y) ** 2))


def reliability_curve(
    probabilities: np.ndarray, labels: np.ndarray, bins: int = 10
) -> ReliabilityCurve:
    """Bin predictions and compare predicted to observed frequency.

    Empty bins are dropped.

    Raises:
        ValueError: on bad inputs or fewer than one bin.
    """
    if bins < 1:
        raise ValueError(f"need at least one bin, got {bins}")
    p = np.asarray(probabilities, dtype="float64").ravel()
    y = np.asarray(labels, dtype="float64").ravel()
    if p.shape != y.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {y.shape}")
    if np.any((p < 0.0) | (p > 1.0)):
        raise ValueError("probabilities must lie in [0, 1]")
    edges = np.linspace(0.0, 1.0, bins + 1)
    indices = np.clip(np.digitize(p, edges) - 1, 0, bins - 1)
    centers, predicted, observed, counts = [], [], [], []
    for b in range(bins):
        mask = indices == b
        if not mask.any():
            continue
        centers.append((edges[b] + edges[b + 1]) / 2.0)
        predicted.append(float(p[mask].mean()))
        observed.append(float(y[mask].mean()))
        counts.append(int(mask.sum()))
    return ReliabilityCurve(
        bin_centers=np.array(centers),
        predicted_mean=np.array(predicted),
        observed_frequency=np.array(observed),
        counts=np.array(counts),
    )
