"""The training loop and dataset splitting.

The paper trains for 50 epochs on data split 3:1:1 into training,
testing, and validation sets; :func:`three_way_split` reproduces that
split (stratified so both classes appear in every part) and
:func:`train_classifier` runs minibatch gradient descent with
per-epoch loss tracking.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.ml.losses import BinaryCrossEntropy, Loss
from repro.ml.network import NeuralNetwork
from repro.ml.optimizers import Adam, Optimizer
from repro.parallel import require_generator


@dataclasses.dataclass(frozen=True)
class TrainConfig:
    """Training hyperparameters (paper defaults)."""

    epochs: int = 50
    batch_size: int = 32
    shuffle: bool = True
    standardize: bool = True

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {self.batch_size}")


@dataclasses.dataclass
class FeatureScaler:
    """Per-feature standardization fitted on the training set."""

    mean: np.ndarray
    std: np.ndarray

    @classmethod
    def fit(cls, features: np.ndarray) -> "FeatureScaler":
        x = np.asarray(features, dtype="float64")
        std = x.std(axis=0)
        std[std < 1e-12] = 1.0
        return cls(mean=x.mean(axis=0), std=std)

    def transform(self, features: np.ndarray) -> np.ndarray:
        return (np.asarray(features, dtype="float64") - self.mean) / self.std


@dataclasses.dataclass
class TrainResult:
    """A trained classifier with its scaler and loss history."""

    network: NeuralNetwork
    scaler: Optional[FeatureScaler]
    train_losses: List[float]
    validation_losses: List[float]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        x = self.scaler.transform(features) if self.scaler else features
        return self.network.predict_proba(x)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(int)


def three_way_split(
    features: np.ndarray,
    labels: np.ndarray,
    rng: np.random.Generator,
    ratio: Tuple[int, int, int] = (3, 1, 1),
) -> Tuple[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]:
    """Stratified train/test/validation split at the given ratio.

    Returns:
        ((x_train, y_train), (x_test, y_test), (x_val, y_val)).

    Raises:
        ValueError: on bad ratios or mismatched lengths.
        TypeError: if ``rng`` is not an explicit ``np.random.Generator``
            (implicit/legacy seeding could silently diverge between the
            serial and per-process reseeded parallel paths).
    """
    require_generator(rng)
    x = np.asarray(features, dtype="float64")
    y = np.asarray(labels).astype(int).ravel()
    if x.shape[0] != y.shape[0]:
        raise ValueError("features and labels length mismatch")
    if any(r <= 0 for r in ratio):
        raise ValueError(f"split ratio parts must be positive, got {ratio}")
    total = sum(ratio)
    parts: List[List[int]] = [[], [], []]
    for cls in np.unique(y):
        indices = np.flatnonzero(y == cls)
        rng.shuffle(indices)
        n = len(indices)
        cut1 = int(round(n * ratio[0] / total))
        cut2 = cut1 + int(round(n * ratio[1] / total))
        parts[0].extend(indices[:cut1])
        parts[1].extend(indices[cut1:cut2])
        parts[2].extend(indices[cut2:])
    out = []
    for indices in parts:
        chosen = np.array(sorted(indices), dtype=int)
        out.append((x[chosen], y[chosen]))
    return out[0], out[1], out[2]


def train_classifier(
    network: NeuralNetwork,
    x_train: np.ndarray,
    y_train: np.ndarray,
    config: Optional[TrainConfig] = None,
    optimizer: Optional[Optimizer] = None,
    loss: Optional[Loss] = None,
    rng: Optional[np.random.Generator] = None,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
) -> TrainResult:
    """Train a binary classifier with minibatch gradient descent.

    Args:
        network: The (freshly initialized) model; trained in place.
        x_train: Training features ``(n, d)``.
        y_train: Binary labels ``(n,)``.
        config: Epochs/batching (paper: 50 epochs).
        optimizer: Defaults to Adam.
        loss: Defaults to binary cross-entropy.
        rng: Shuffling randomness.
        x_val / y_val: Optional validation set for per-epoch loss
            tracking.

    Returns:
        The trained model wrapped with its feature scaler and the loss
        history.
    """
    cfg = config if config is not None else TrainConfig()
    opt = optimizer if optimizer is not None else Adam()
    criterion = loss if loss is not None else BinaryCrossEntropy()
    rng = rng if rng is not None else np.random.default_rng(0)

    x = np.asarray(x_train, dtype="float64")
    y = np.asarray(y_train, dtype="float64").reshape(-1, 1)
    if x.shape[0] != y.shape[0]:
        raise ValueError("features and labels length mismatch")
    scaler = FeatureScaler.fit(x) if cfg.standardize else None
    if scaler is not None:
        x = scaler.transform(x)
        if x_val is not None:
            x_val = scaler.transform(x_val)

    train_losses: List[float] = []
    val_losses: List[float] = []
    n = x.shape[0]
    # Preshuffled epoch index matrix: every epoch's visit order is drawn
    # up front (same generator stream as per-epoch shuffles), so the
    # inner loop is pure slicing.
    if cfg.shuffle:
        orders = np.empty((cfg.epochs, n), dtype=np.intp)
        for epoch in range(cfg.epochs):
            orders[epoch] = rng.permutation(n)
    else:
        orders = np.broadcast_to(np.arange(n, dtype=np.intp), (cfg.epochs, n))
    batch_starts = range(0, n, cfg.batch_size)
    batches = max(1, len(batch_starts))
    for epoch in range(cfg.epochs):
        order = orders[epoch]
        epoch_loss = 0.0
        for start in batch_starts:
            batch = order[start : start + cfg.batch_size]
            x_batch = x[batch]
            y_batch = y[batch]
            predicted = network.forward(x_batch, train=True)
            epoch_loss += criterion.value(predicted, y_batch)
            network.backward(criterion.gradient(predicted, y_batch))
            opt.step(network)
        train_losses.append(epoch_loss / batches)
        if x_val is not None and y_val is not None:
            predicted = network.forward(x_val, train=False)
            val_losses.append(
                criterion.value(predicted, np.asarray(y_val).reshape(-1, 1))
            )
    return TrainResult(
        network=network,
        scaler=scaler,
        train_losses=train_losses,
        validation_losses=val_losses,
    )
