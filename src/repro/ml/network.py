"""The sequential MLP."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.activations import Activation, relu, sigmoid
from repro.ml.layers import Dense


class NeuralNetwork:
    """A feed-forward network of dense layers.

    The paper's predictor is ``NeuralNetwork.mlp(input_size, (12, 12, 6))``:
    ReLU hidden layers and a single sigmoid output unit.
    """

    def __init__(self, layers: Sequence[Dense]) -> None:
        if not layers:
            raise ValueError("network needs at least one layer")
        for upstream, downstream in zip(layers, list(layers)[1:]):
            if upstream.output_size != downstream.input_size:
                raise ValueError(
                    f"layer size mismatch: {upstream.output_size} -> "
                    f"{downstream.input_size}"
                )
        self.layers: List[Dense] = list(layers)

    @classmethod
    def mlp(
        cls,
        input_size: int,
        hidden_sizes: Sequence[int],
        output_size: int = 1,
        hidden_activation: Activation = relu,
        output_activation: Activation = sigmoid,
        rng: Optional[np.random.Generator] = None,
    ) -> "NeuralNetwork":
        """Build a standard MLP.

        Args:
            input_size: Feature dimension.
            hidden_sizes: Units per hidden layer, e.g. ``(12, 12, 6)``.
            output_size: Output units (1 for binary classification).
            hidden_activation: Hidden activation (paper: ReLU).
            output_activation: Output activation (paper: sigmoid).
            rng: Initialization randomness.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        sizes = [input_size, *hidden_sizes]
        layers = [
            Dense(a, b, activation=hidden_activation, rng=rng)
            for a, b in zip(sizes, sizes[1:])
        ]
        layers.append(
            Dense(sizes[-1], output_size, activation=output_activation, rng=rng)
        )
        return cls(layers)

    # -- inference -------------------------------------------------------------

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Full forward pass over a batch."""
        out = np.atleast_2d(np.asarray(x, dtype="float64"))
        for layer in self.layers:
            out = layer.forward(out, train=train)
        return out

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Positive-class probabilities, shape ``(n,)``."""
        return self.forward(x, train=False)[:, 0]

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at a decision threshold."""
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        return (self.predict_proba(x) >= threshold).astype(int)

    # -- training support ----------------------------------------------------------

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate the loss gradient through every layer."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameter_count(self) -> int:
        """Total trainable scalars."""
        return sum(
            p.size for layer in self.layers for p in layer.parameters().values()
        )

    def architecture(self) -> Tuple[int, ...]:
        """Layer widths, input first."""
        return (self.layers[0].input_size,) + tuple(
            layer.output_size for layer in self.layers
        )

    def clone_untrained(self, rng: Optional[np.random.Generator] = None) -> "NeuralNetwork":
        """A freshly initialized copy with the same architecture."""
        rng = rng if rng is not None else np.random.default_rng(0)
        layers = [
            Dense(
                layer.input_size,
                layer.output_size,
                activation=layer.activation,
                rng=rng,
            )
            for layer in self.layers
        ]
        return NeuralNetwork(layers)
