"""Activation functions with their derivatives.

Each activation is a small value object exposing ``forward`` and
``backward``; ``backward`` takes the *pre-activation* input that was
fed to ``forward`` (layers cache it) and returns the elementwise
derivative.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np


@dataclasses.dataclass(frozen=True)
class Activation:
    """An elementwise activation function and its derivative."""

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    derivative: Callable[[np.ndarray], np.ndarray]

    def __repr__(self) -> str:
        return f"Activation({self.name})"


def _relu_forward(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_derivative(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(x.dtype)


def _sigmoid_forward(x: np.ndarray) -> np.ndarray:
    # Numerically stable piecewise form.
    out = np.empty_like(x, dtype="float64")
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def _sigmoid_derivative(x: np.ndarray) -> np.ndarray:
    s = _sigmoid_forward(x)
    return s * (1.0 - s)


def _tanh_forward(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_derivative(x: np.ndarray) -> np.ndarray:
    t = np.tanh(x)
    return 1.0 - t * t


def _identity_forward(x: np.ndarray) -> np.ndarray:
    return x


def _identity_derivative(x: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


#: Rectified linear unit — the paper's hidden-layer activation.
relu = Activation("relu", _relu_forward, _relu_derivative)

#: Logistic sigmoid — the paper's output activation.
sigmoid = Activation("sigmoid", _sigmoid_forward, _sigmoid_derivative)

#: Hyperbolic tangent (available for ablations).
tanh = Activation("tanh", _tanh_forward, _tanh_derivative)

#: Identity (linear output, used for regression heads).
identity = Activation("identity", _identity_forward, _identity_derivative)


def by_name(name: str) -> Activation:
    """Look up an activation by name.

    Raises:
        KeyError: for unknown names.
    """
    registry = {a.name: a for a in (relu, sigmoid, tanh, identity)}
    return registry[name]
