"""Loss functions for network training."""

from __future__ import annotations

import abc

import numpy as np


class Loss(abc.ABC):
    """A scalar loss with a gradient w.r.t. predictions."""

    @abc.abstractmethod
    def value(self, predicted: np.ndarray, target: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abc.abstractmethod
    def gradient(self, predicted: np.ndarray, target: np.ndarray) -> np.ndarray:
        """d(loss)/d(predicted), same shape as ``predicted``."""


class BinaryCrossEntropy(Loss):
    """Mean binary cross-entropy for sigmoid outputs.

    Args:
        epsilon: Probability clamp to keep logs finite.
    """

    def __init__(self, epsilon: float = 1e-9) -> None:
        if not 0 < epsilon < 0.5:
            raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
        self.epsilon = epsilon

    def _clamp(self, predicted: np.ndarray) -> np.ndarray:
        return np.clip(predicted, self.epsilon, 1.0 - self.epsilon)

    def value(self, predicted: np.ndarray, target: np.ndarray) -> float:
        p = self._clamp(np.asarray(predicted, dtype="float64"))
        y = np.asarray(target, dtype="float64")
        return float(-np.mean(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)))

    def gradient(self, predicted: np.ndarray, target: np.ndarray) -> np.ndarray:
        p = self._clamp(np.asarray(predicted, dtype="float64"))
        y = np.asarray(target, dtype="float64")
        return (p - y) / (p * (1.0 - p)) / p.size


class MeanSquaredError(Loss):
    """Mean squared error (regression heads, ablations)."""

    def value(self, predicted: np.ndarray, target: np.ndarray) -> float:
        diff = np.asarray(predicted, dtype="float64") - np.asarray(
            target, dtype="float64"
        )
        return float(np.mean(diff**2))

    def gradient(self, predicted: np.ndarray, target: np.ndarray) -> np.ndarray:
        p = np.asarray(predicted, dtype="float64")
        y = np.asarray(target, dtype="float64")
        return 2.0 * (p - y) / p.size
