"""A from-scratch neural-network stack on numpy.

The paper's CMF predictor is a small MLP (three hidden layers of 12,
12, and 6 neurons, ReLU activations, sigmoid output) trained for 50
epochs with the architecture tuned by Bayesian optimization and
evaluated with 5-fold cross-validation.  No deep-learning framework is
available offline, so everything is implemented here: layers,
activations, losses, optimizers, a training loop, metrics,
cross-validation, a Gaussian-process Bayesian optimizer, and the
threshold/logistic baselines the paper's discussion contrasts against.
"""

from repro.ml.activations import Activation, relu, sigmoid, tanh
from repro.ml.losses import BinaryCrossEntropy, Loss, MeanSquaredError
from repro.ml.layers import Dense
from repro.ml.network import NeuralNetwork
from repro.ml.optimizers import SGD, Adam, Optimizer
from repro.ml.train import TrainConfig, TrainResult, train_classifier, three_way_split
from repro.ml.metrics import (
    BinaryClassificationReport,
    accuracy,
    confusion_matrix,
    evaluate_binary,
    f1_score,
    false_positive_rate,
    precision,
    recall,
)
from repro.ml.crossval import CrossValidationResult, stratified_k_fold, cross_validate
from repro.ml.bayesopt import BayesianOptimizer, GaussianProcess
from repro.ml.baselines import LogisticRegression, ThresholdAlarmDetector
from repro.ml.calibration import ReliabilityCurve, brier_score, reliability_curve
from repro.ml.persistence import load_model, save_model
from repro.ml.metrics import auc_score, roc_curve

__all__ = [
    "Activation",
    "relu",
    "sigmoid",
    "tanh",
    "BinaryCrossEntropy",
    "Loss",
    "MeanSquaredError",
    "Dense",
    "NeuralNetwork",
    "SGD",
    "Adam",
    "Optimizer",
    "TrainConfig",
    "TrainResult",
    "train_classifier",
    "three_way_split",
    "BinaryClassificationReport",
    "accuracy",
    "confusion_matrix",
    "evaluate_binary",
    "f1_score",
    "false_positive_rate",
    "precision",
    "recall",
    "CrossValidationResult",
    "stratified_k_fold",
    "cross_validate",
    "BayesianOptimizer",
    "GaussianProcess",
    "LogisticRegression",
    "ThresholdAlarmDetector",
    "ReliabilityCurve",
    "brier_score",
    "reliability_curve",
    "load_model",
    "save_model",
    "auc_score",
    "roc_curve",
]
