"""Stratified k-fold cross-validation.

The paper reports all predictor numbers under 5-fold cross-validation
"for robustness against sample selection"; :func:`cross_validate`
reproduces that protocol for any model factory.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.metrics import BinaryClassificationReport, evaluate_binary
from repro.parallel import pmap, require_generator


def stratified_k_fold(
    labels: np.ndarray, k: int, rng: np.random.Generator
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """(train_indices, test_indices) pairs for stratified k-fold CV.

    Each class's samples are shuffled and dealt round-robin into the
    ``k`` folds, so class balance is preserved per fold.

    Raises:
        ValueError: if ``k`` < 2 or any class has fewer than ``k``
            samples.
        TypeError: if ``rng`` is not an explicit Generator.
    """
    require_generator(rng)
    y = np.asarray(labels).astype(int).ravel()
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    fold_members: List[List[int]] = [[] for _ in range(k)]
    for cls in np.unique(y):
        indices = np.flatnonzero(y == cls)
        if len(indices) < k:
            raise ValueError(
                f"class {cls} has only {len(indices)} samples for {k} folds"
            )
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            fold_members[position % k].append(int(index))
    folds = []
    all_indices = set(range(len(y)))
    for members in fold_members:
        test = np.array(sorted(members), dtype=int)
        train = np.array(sorted(all_indices - set(members)), dtype=int)
        folds.append((train, test))
    return folds


@dataclasses.dataclass(frozen=True)
class CrossValidationResult:
    """Per-fold reports plus their mean."""

    fold_reports: Tuple[BinaryClassificationReport, ...]

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean([r.accuracy for r in self.fold_reports]))

    @property
    def mean_precision(self) -> float:
        return float(np.mean([r.precision for r in self.fold_reports]))

    @property
    def mean_recall(self) -> float:
        return float(np.mean([r.recall for r in self.fold_reports]))

    @property
    def mean_f1(self) -> float:
        return float(np.mean([r.f1 for r in self.fold_reports]))

    @property
    def mean_false_positive_rate(self) -> float:
        return float(
            np.mean([r.false_positive_rate for r in self.fold_reports])
        )

    def summary(self) -> BinaryClassificationReport:
        """Fold-averaged report."""
        return BinaryClassificationReport(
            accuracy=self.mean_accuracy,
            precision=self.mean_precision,
            recall=self.mean_recall,
            f1=self.mean_f1,
            false_positive_rate=self.mean_false_positive_rate,
            support=sum(r.support for r in self.fold_reports),
        )


def _fold_run(payload: tuple) -> BinaryClassificationReport:
    fit_predict, x_train, y_train, x_test, y_test = payload
    return evaluate_binary(y_test, fit_predict(x_train, y_train, x_test))


def cross_validate(
    fit_predict: Callable[
        [np.ndarray, np.ndarray, np.ndarray], np.ndarray
    ],
    features: np.ndarray,
    labels: np.ndarray,
    k: int = 5,
    rng: Optional[np.random.Generator] = None,
    workers: int = 1,
) -> CrossValidationResult:
    """Run stratified k-fold CV for an arbitrary fit-and-predict callable.

    Fold assignment happens up front with the explicit generator; the
    folds themselves are independent and can run on a process pool.

    Args:
        fit_predict: Called as ``fit_predict(x_train, y_train, x_test)``
            and must return 0/1 predictions for ``x_test``.  For
            ``workers > 1`` it must be picklable (module-level, not a
            closure) — which is why the default stays serial.
        features: Full feature matrix ``(n, d)``.
        labels: Full binary label vector ``(n,)``.
        k: Number of folds (paper: 5).
        rng: Fold-assignment randomness.
        workers: Process-pool size for the fold loop (1 = serial).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    x = np.asarray(features, dtype="float64")
    y = np.asarray(labels).astype(int).ravel()
    payloads = [
        (fit_predict, x[train_idx], y[train_idx], x[test_idx], y[test_idx])
        for train_idx, test_idx in stratified_k_fold(y, k, rng)
    ]
    reports = pmap(_fold_run, payloads, workers=workers)
    return CrossValidationResult(fold_reports=tuple(reports))
