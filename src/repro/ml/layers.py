"""Network layers.

Only dense (fully connected) layers are needed for the paper's MLP.
Each layer caches its forward inputs so ``backward`` can compute
parameter gradients without re-running the forward pass.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.ml.activations import Activation, identity


class Dense:
    """A fully connected layer: ``out = activation(x @ W + b)``.

    Args:
        input_size: Number of input features.
        output_size: Number of units.
        activation: Elementwise activation (identity by default).
        rng: Initialization randomness; He-scaled normal weights.

    Attributes:
        weights: ``(input_size, output_size)`` parameter matrix.
        biases: ``(output_size,)`` parameter vector.
    """

    def __init__(
        self,
        input_size: int,
        output_size: int,
        activation: Optional[Activation] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if input_size < 1 or output_size < 1:
            raise ValueError(
                f"layer sizes must be positive, got {input_size} -> {output_size}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.activation = activation if activation is not None else identity
        scale = np.sqrt(2.0 / input_size)  # He initialization
        self.weights = rng.standard_normal((input_size, output_size)) * scale
        self.biases = np.zeros(output_size)
        self._cached_input: Optional[np.ndarray] = None
        self._cached_preactivation: Optional[np.ndarray] = None
        #: Parameter gradients populated by backward().
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_biases = np.zeros_like(self.biases)

    @property
    def input_size(self) -> int:
        return self.weights.shape[0]

    @property
    def output_size(self) -> int:
        return self.weights.shape[1]

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Apply the layer to a batch of shape ``(n, input_size)``.

        Args:
            x: Input batch.
            train: Cache intermediates for a subsequent backward pass.
        """
        x = np.asarray(x, dtype="float64")
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.input_size:
            raise ValueError(
                f"expected {self.input_size} features, got {x.shape[1]}"
            )
        pre = x @ self.weights
        pre += self.biases
        if train:
            self._cached_input = x
            self._cached_preactivation = pre
        return self.activation.forward(pre)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate a gradient of shape ``(n, output_size)``.

        Populates :attr:`grad_weights` / :attr:`grad_biases` and
        returns the gradient w.r.t. the layer input.

        Raises:
            RuntimeError: if called before a ``forward(train=True)``.
        """
        if self._cached_input is None or self._cached_preactivation is None:
            raise RuntimeError("backward called before forward(train=True)")
        grad_pre = self.activation.derivative(self._cached_preactivation)
        grad_pre *= grad_output
        # Gradients land in the preallocated buffers (their shapes are
        # fixed by the layer, not the batch), saving two allocations
        # per layer per minibatch step.
        np.matmul(self._cached_input.T, grad_pre, out=self.grad_weights)
        grad_pre.sum(axis=0, out=self.grad_biases)
        return grad_pre @ self.weights.T

    # -- parameter access for optimizers ------------------------------------

    def parameters(self) -> Dict[str, np.ndarray]:
        """Named parameter arrays (mutated in place by optimizers)."""
        return {"weights": self.weights, "biases": self.biases}

    def gradients(self) -> Dict[str, np.ndarray]:
        """Named gradient arrays matching :meth:`parameters`."""
        return {"weights": self.grad_weights, "biases": self.grad_biases}
