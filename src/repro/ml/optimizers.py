"""Gradient-descent optimizers."""

from __future__ import annotations

import abc
from typing import Dict, List, Tuple

import numpy as np

from repro.ml.network import NeuralNetwork


class Optimizer(abc.ABC):
    """Updates network parameters in place from layer gradients."""

    @abc.abstractmethod
    def step(self, network: NeuralNetwork) -> None:
        """Apply one update using the gradients stored on each layer."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum.

    Args:
        learning_rate: Step size.
        momentum: Velocity decay in [0, 1); 0 disables momentum.
    """

    def __init__(self, learning_rate: float = 0.05, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: Dict[Tuple[int, str], np.ndarray] = {}

    def step(self, network: NeuralNetwork) -> None:
        for index, layer in enumerate(network.layers):
            params = layer.parameters()
            grads = layer.gradients()
            for name, param in params.items():
                grad = grads[name]
                if self.momentum > 0.0:
                    key = (index, name)
                    velocity = self._velocity.get(key)
                    if velocity is None:
                        velocity = np.zeros_like(param)
                    velocity = self.momentum * velocity - self.learning_rate * grad
                    self._velocity[key] = velocity
                    param += velocity
                else:
                    param -= self.learning_rate * grad


class Adam(Optimizer):
    """The Adam optimizer (Kingma & Ba, 2015).

    Args:
        learning_rate: Step size.
        beta1: First-moment decay.
        beta2: Second-moment decay.
        epsilon: Denominator stabilizer.
    """

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: Dict[Tuple[int, str], np.ndarray] = {}
        self._v: Dict[Tuple[int, str], np.ndarray] = {}
        self._t = 0

    def step(self, network: NeuralNetwork) -> None:
        self._t += 1
        for index, layer in enumerate(network.layers):
            params = layer.parameters()
            grads = layer.gradients()
            for name, param in params.items():
                grad = grads[name]
                key = (index, name)
                m = self._m.get(key)
                v = self._v.get(key)
                if m is None:
                    m = np.zeros_like(param)
                    v = np.zeros_like(param)
                m = self.beta1 * m + (1.0 - self.beta1) * grad
                v = self.beta2 * v + (1.0 - self.beta2) * grad**2
                self._m[key] = m
                self._v[key] = v
                m_hat = m / (1.0 - self.beta1**self._t)
                v_hat = v / (1.0 - self.beta2**self._t)
                param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
