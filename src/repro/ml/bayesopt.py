"""Gaussian-process Bayesian optimization for hyper-parameter tuning.

The paper tunes the predictor's architecture (neurons per layer) with
Bayesian optimization.  This module implements the standard recipe
from scratch: an RBF-kernel Gaussian process surrogate over the
(normalized) hyper-parameter space, and expected improvement as the
acquisition function, maximized over a finite candidate set.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


class GaussianProcess:
    """A zero-mean GP with an RBF kernel and Gaussian observation noise.

    Args:
        length_scale: Kernel length scale (inputs should be roughly
            unit-scaled).
        signal_variance: Kernel amplitude.
        noise_variance: Observation noise added to the diagonal.
    """

    def __init__(
        self,
        length_scale: float = 1.0,
        signal_variance: float = 1.0,
        noise_variance: float = 1e-4,
    ) -> None:
        if length_scale <= 0 or signal_variance <= 0 or noise_variance < 0:
            raise ValueError("kernel parameters must be positive")
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise_variance = noise_variance
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = (
            np.sum(a**2, axis=1)[:, None]
            + np.sum(b**2, axis=1)[None, :]
            - 2.0 * a @ b.T
        )
        return self.signal_variance * np.exp(
            -0.5 * np.maximum(sq, 0.0) / self.length_scale**2
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        """Condition the GP on observations.

        Raises:
            ValueError: on shape mismatch.
        """
        x = np.atleast_2d(np.asarray(x, dtype="float64"))
        y = np.asarray(y, dtype="float64").ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y length mismatch")
        k = self._kernel(x, x) + self.noise_variance * np.eye(x.shape[0])
        self._chol = np.linalg.cholesky(k)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, y)
        )
        self._x = x
        self._y = y

    def predict(self, x_new: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points.

        Raises:
            RuntimeError: if called before :meth:`fit`.
        """
        if self._x is None or self._chol is None or self._alpha is None:
            raise RuntimeError("predict called before fit")
        x_new = np.atleast_2d(np.asarray(x_new, dtype="float64"))
        k_star = self._kernel(x_new, self._x)
        mean = k_star @ self._alpha
        v = np.linalg.solve(self._chol, k_star.T)
        variance = self.signal_variance - np.sum(v**2, axis=0)
        return mean, np.sqrt(np.maximum(variance, 1e-12))


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.vectorize(math.erf)(z / math.sqrt(2.0)))


def _normal_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z**2) / math.sqrt(2.0 * math.pi)


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """EI for maximization: E[max(f - best - xi, 0)]."""
    improvement = mean - best - xi
    z = improvement / np.maximum(std, 1e-12)
    return improvement * _normal_cdf(z) + std * _normal_pdf(z)


@dataclasses.dataclass(frozen=True)
class Observation:
    """One evaluated candidate."""

    candidate: Tuple[float, ...]
    score: float


class BayesianOptimizer:
    """EI-driven Bayesian optimization over a finite candidate set.

    Args:
        candidates: The search space, e.g. all (h1, h2, h3) layer-size
            triples under consideration.
        rng: Randomness for the initial design.
        initial_points: Random evaluations before the GP takes over.

    Example::

        opt = BayesianOptimizer(candidates=grid, rng=rng)
        best, history = opt.maximize(objective, budget=15)
    """

    def __init__(
        self,
        candidates: Sequence[Sequence[float]],
        rng: Optional[np.random.Generator] = None,
        initial_points: int = 4,
    ) -> None:
        if not candidates:
            raise ValueError("candidate set is empty")
        self._candidates = [tuple(float(v) for v in c) for c in candidates]
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.initial_points = max(1, min(initial_points, len(self._candidates)))
        # Normalize candidates to the unit cube for the GP.
        arr = np.array(self._candidates)
        lo, hi = arr.min(axis=0), arr.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        self._normalized = (arr - lo) / span

    def maximize(
        self,
        objective: Callable[[Tuple[float, ...]], float],
        budget: int = 12,
        evaluate_batch: Optional[
            Callable[[List[Tuple[float, ...]]], Sequence[float]]
        ] = None,
    ) -> Tuple[Observation, List[Observation]]:
        """Find the candidate maximizing a (noisy, expensive) objective.

        Args:
            objective: Called once per evaluated candidate.
            budget: Total objective evaluations allowed.
            evaluate_batch: Optional hook that scores a list of
                candidates at once (e.g. on a process pool).  Only the
                initial random design — the one batch of trials that is
                independent by construction — goes through it; the
                expected-improvement phase is inherently sequential.
                Must return the same scores ``objective`` would, in
                candidate order, so the search trajectory is identical
                with or without it.

        Returns:
            (best observation, full evaluation history).

        Raises:
            ValueError: if the budget is not positive.
        """
        if budget < 1:
            raise ValueError(f"budget must be positive, got {budget}")
        budget = min(budget, len(self._candidates))
        unevaluated = list(range(len(self._candidates)))
        history: List[Observation] = []
        evaluated_indices: List[int] = []

        def record(index: int, score: float) -> None:
            history.append(
                Observation(candidate=self._candidates[index], score=float(score))
            )
            evaluated_indices.append(index)
            unevaluated.remove(index)

        def evaluate(index: int) -> None:
            record(index, objective(self._candidates[index]))

        # Initial random design.
        initial = [
            int(i)
            for i in self._rng.choice(
                len(self._candidates),
                size=min(self.initial_points, budget),
                replace=False,
            )
        ]
        if evaluate_batch is not None:
            scores = evaluate_batch([self._candidates[i] for i in initial])
            if len(scores) != len(initial):
                raise ValueError(
                    f"evaluate_batch returned {len(scores)} scores for "
                    f"{len(initial)} candidates"
                )
            for index, score in zip(initial, scores):
                record(index, score)
        else:
            for index in initial:
                evaluate(index)

        while len(history) < budget and unevaluated:
            gp = GaussianProcess(length_scale=0.5, noise_variance=1e-4)
            x = self._normalized[evaluated_indices]
            y = np.array([o.score for o in history])
            # Center scores so the zero-mean prior is reasonable.
            y_mean = y.mean()
            gp.fit(x, y - y_mean)
            mean, std = gp.predict(self._normalized[unevaluated])
            ei = expected_improvement(mean + y_mean, std, best=y.max())
            evaluate(unevaluated[int(np.argmax(ei))])

        best = max(history, key=lambda o: o.score)
        return best, history
