"""Binary classification metrics (the Fig 13 panel).

The paper reports accuracy, precision, recall, and F1 score for the
CMF predictor, plus the false-positive rate in the discussion; all are
defined here from the confusion matrix.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray
) -> Tuple[int, int, int, int]:
    """(true_positive, false_positive, true_negative, false_negative).

    Raises:
        ValueError: on shape mismatch or non-binary labels.
    """
    t = np.asarray(y_true).astype(int).ravel()
    p = np.asarray(y_pred).astype(int).ravel()
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    if not np.isin(t, (0, 1)).all() or not np.isin(p, (0, 1)).all():
        raise ValueError("labels must be binary 0/1")
    tp = int(np.sum((t == 1) & (p == 1)))
    fp = int(np.sum((t == 0) & (p == 1)))
    tn = int(np.sum((t == 0) & (p == 0)))
    fn = int(np.sum((t == 1) & (p == 0)))
    return tp, fp, tn, fn


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Correct predictions over all predictions."""
    tp, fp, tn, fn = confusion_matrix(y_true, y_pred)
    total = tp + fp + tn + fn
    return (tp + tn) / total if total else 0.0


def precision(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Correct positive predictions over all positive predictions."""
    tp, fp, _, _ = confusion_matrix(y_true, y_pred)
    return tp / (tp + fp) if (tp + fp) else 0.0


def recall(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Correct positive predictions over all actual positives."""
    tp, _, _, fn = confusion_matrix(y_true, y_pred)
    return tp / (tp + fn) if (tp + fn) else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    return 2.0 * p * r / (p + r) if (p + r) else 0.0


def false_positive_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """False positives over all actual negatives."""
    _, fp, tn, _ = confusion_matrix(y_true, y_pred)
    return fp / (fp + tn) if (fp + tn) else 0.0


@dataclasses.dataclass(frozen=True)
class BinaryClassificationReport:
    """The four Fig 13 metrics plus the FPR from the discussion."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    false_positive_rate: float
    support: int

    def as_row(self) -> str:
        """A compact printable row."""
        return (
            f"acc={self.accuracy:.3f} prec={self.precision:.3f} "
            f"rec={self.recall:.3f} f1={self.f1:.3f} "
            f"fpr={self.false_positive_rate:.3f} n={self.support}"
        )


def evaluate_binary(y_true: np.ndarray, y_pred: np.ndarray) -> BinaryClassificationReport:
    """Compute the full report for a prediction set."""
    return BinaryClassificationReport(
        accuracy=accuracy(y_true, y_pred),
        precision=precision(y_true, y_pred),
        recall=recall(y_true, y_pred),
        f1=f1_score(y_true, y_pred),
        false_positive_rate=false_positive_rate(y_true, y_pred),
        support=int(np.asarray(y_true).size),
    )


def roc_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC points (fpr, tpr, thresholds) over all score cutoffs.

    Thresholds are the distinct scores in descending order; each point
    reports the rates when predicting positive at score >= threshold.

    Raises:
        ValueError: if both classes are not present.
    """
    t = np.asarray(y_true).astype(int).ravel()
    s = np.asarray(scores, dtype="float64").ravel()
    if t.shape != s.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {s.shape}")
    positives = int(t.sum())
    negatives = int(t.size - positives)
    if positives == 0 or negatives == 0:
        raise ValueError("ROC requires both classes present")
    order = np.argsort(-s, kind="stable")
    sorted_labels = t[order]
    sorted_scores = s[order]
    tp_cum = np.cumsum(sorted_labels)
    fp_cum = np.cumsum(1 - sorted_labels)
    # Keep the last point of each distinct-score run.
    distinct = np.append(np.diff(sorted_scores) != 0, True)
    tpr = np.concatenate([[0.0], tp_cum[distinct] / positives])
    fpr = np.concatenate([[0.0], fp_cum[distinct] / negatives])
    thresholds = np.concatenate([[np.inf], sorted_scores[distinct]])
    return fpr, tpr, thresholds


def auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy<2 compat
    return float(trapezoid(tpr, fpr))
