"""Baseline detectors the NN predictor is compared against.

Section VI-D argues that *threshold-based monitoring is not
sufficient*: watching metric levels against fixed thresholds misses
failures whose signature is the *change* in the metrics.
:class:`ThresholdAlarmDetector` implements exactly that conventional
scheme so the claim can be tested quantitatively, and
:class:`LogisticRegression` provides a simple learned linear baseline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ThresholdAlarmDetector:
    """Level-threshold alarm, the conventional monitoring scheme.

    Fit on *negative* (healthy) feature rows; an alarm fires when any
    feature leaves its healthy band of ``k`` standard deviations
    around the healthy mean.

    Args:
        k_sigma: Band half-width in healthy standard deviations.
    """

    def __init__(self, k_sigma: float = 3.0) -> None:
        if k_sigma <= 0:
            raise ValueError(f"k_sigma must be positive, got {k_sigma}")
        self.k_sigma = k_sigma
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def fit(self, healthy_features: np.ndarray) -> "ThresholdAlarmDetector":
        """Learn the healthy band from non-failure samples."""
        x = np.atleast_2d(np.asarray(healthy_features, dtype="float64"))
        self._mean = x.mean(axis=0)
        std = x.std(axis=0)
        std[std < 1e-12] = 1e-12
        self._std = std
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """1 where any feature exceeds its band, else 0.

        Raises:
            RuntimeError: if called before :meth:`fit`.
        """
        if self._mean is None or self._std is None:
            raise RuntimeError("predict called before fit")
        x = np.atleast_2d(np.asarray(features, dtype="float64"))
        z = np.abs(x - self._mean) / self._std
        return (z.max(axis=1) > self.k_sigma).astype(int)


class LogisticRegression:
    """Plain logistic regression trained by full-batch gradient descent.

    Args:
        learning_rate: Gradient step size.
        epochs: Training passes.
        l2: Ridge penalty on the weights.
    """

    def __init__(
        self, learning_rate: float = 0.1, epochs: int = 300, l2: float = 1e-4
    ) -> None:
        if learning_rate <= 0 or epochs < 1 or l2 < 0:
            raise ValueError("invalid hyper-parameters")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z)
        positive = z >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
        ez = np.exp(z[~positive])
        out[~positive] = ez / (1.0 + ez)
        return out

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Train on a binary-labeled feature matrix."""
        x = np.atleast_2d(np.asarray(features, dtype="float64"))
        y = np.asarray(labels, dtype="float64").ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and labels length mismatch")
        self._mean = x.mean(axis=0)
        std = x.std(axis=0)
        std[std < 1e-12] = 1.0
        self._std = std
        x = (x - self._mean) / self._std
        n, d = x.shape
        self.weights = np.zeros(d)
        self.bias = 0.0
        for _ in range(self.epochs):
            p = self._sigmoid(x @ self.weights + self.bias)
            error = p - y
            grad_w = x.T @ error / n + self.l2 * self.weights
            grad_b = float(error.mean())
            self.weights -= self.learning_rate * grad_w
            self.bias -= self.learning_rate * grad_b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Positive-class probabilities.

        Raises:
            RuntimeError: if called before :meth:`fit`.
        """
        if self.weights is None or self._mean is None or self._std is None:
            raise RuntimeError("predict called before fit")
        x = np.atleast_2d(np.asarray(features, dtype="float64"))
        x = (x - self._mean) / self._std
        return self._sigmoid(x @ self.weights + self.bias)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.predict_proba(features) >= threshold).astype(int)
