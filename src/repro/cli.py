"""Command-line interface.

Subcommands, mirroring how the package is used:

* ``simulate`` — run the facility simulator and export the telemetry
  CSV and RAS JSONL,
* ``report`` — print the paper-vs-measured tables for the core
  figures,
* ``predict`` — train and evaluate the CMF predictor (Fig 13),
* ``experiments`` — regenerate EXPERIMENTS.md from the canonical
  six-year dataset,
* ``cache`` — inspect (``info``) or prune (``clear``) the on-disk
  dataset cache under ``~/.cache/repro``,
* ``validate`` — run the physics/bookkeeping consistency checks,
* ``serve-replay`` — re-serve a simulated realization as a live
  telemetry stream through the service layer (bus -> rollups ->
  query engine) and print the operational summary,
* ``query`` — run one dashboard-style query against the rollup store
  built from a simulation,
* ``chaos`` — run the crash/hang/kill chaos matrix against the
  supervised service and verify recovery equivalence (exit 1 on any
  mismatch); this is the CI chaos-smoke entry point,
* ``serve-http`` — expose a simulated (or archived) dataset over the
  operations HTTP API: versioned query routes, ``/healthz`` and
  ``/metrics``, optional collector ingest, threaded or pre-forked,
* ``http-load`` — aim the deterministic load generator at a running
  ``serve-http`` instance and print/write the throughput report.

Invoke as ``python -m repro <subcommand>``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Operating Liquid-Cooled Large-Scale Systems' "
            "(HPCA 2021): synthetic Mira facility simulation and analyses"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run the facility simulator and export telemetry"
    )
    simulate.add_argument("--days", type=int, default=60, help="simulated days")
    simulate.add_argument("--seed", type=int, default=7, help="master seed")
    simulate.add_argument(
        "--dt", type=float, default=1800.0, help="engine step in seconds"
    )
    simulate.add_argument(
        "--out", type=Path, default=Path("repro-out"), help="output directory"
    )
    simulate.add_argument(
        "--full-study",
        action="store_true",
        help="simulate the whole 2014-2019 production period (hourly)",
    )
    simulate.add_argument(
        "--inject-faults",
        action="store_true",
        help=(
            "degrade the delivered telemetry with calibrated sensor/"
            "delivery faults (dropout, stuck-at, spikes, skew, blackouts)"
        ),
    )

    report = commands.add_parser(
        "report", help="print paper-vs-measured tables for the core figures"
    )
    report.add_argument("--days", type=int, default=365, help="simulated days")
    report.add_argument("--seed", type=int, default=7, help="master seed")
    report.add_argument(
        "--full-study",
        action="store_true",
        help="use the canonical six-year dataset (slower, exact paper scope)",
    )
    report.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "process-pool size for the figure sections (default: "
            "REPRO_WORKERS or all cores; 1 = serial; tables are "
            "byte-identical either way)"
        ),
    )
    report.add_argument(
        "--windows",
        action="store_true",
        help="also synthesize the 300 s windows and report Figs 12-13",
    )
    report.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print the dataset digest and section-cache hit/miss "
            "counters after the tables"
        ),
    )
    report.add_argument(
        "--no-section-cache",
        action="store_true",
        help=(
            "bypass the on-disk section memo store and rebuild every "
            "section from scratch"
        ),
    )

    predict = commands.add_parser(
        "predict", help="train and evaluate the CMF predictor (Fig 13)"
    )
    predict.add_argument("--days", type=int, default=730, help="simulated days")
    predict.add_argument("--seed", type=int, default=5, help="master seed")
    predict.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "process-pool size for the lead sweep (default: REPRO_WORKERS "
            "or all cores; 1 = serial; results are identical either way)"
        ),
    )

    experiments = commands.add_parser(
        "experiments", help="regenerate EXPERIMENTS.md from the canonical dataset"
    )
    experiments.add_argument(
        "--out", type=Path, default=Path("EXPERIMENTS.md"), help="output file"
    )
    experiments.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "process-pool size for the report pipeline (default: "
            "REPRO_WORKERS or all cores; 1 = serial)"
        ),
    )

    cache = commands.add_parser(
        "cache", help="inspect or prune the on-disk dataset cache"
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_commands.add_parser(
        "info", help="list cache entries with size, version, and config digest"
    )
    cache_commands.add_parser("clear", help="remove every cache entry")

    validate = commands.add_parser(
        "validate", help="run physics/bookkeeping consistency checks"
    )
    validate.add_argument("--days", type=int, default=180, help="simulated days")
    validate.add_argument("--seed", type=int, default=7, help="master seed")

    serve = commands.add_parser(
        "serve-replay",
        help="replay a simulated realization as a live telemetry service",
    )
    serve.add_argument("--days", type=int, default=30, help="simulated days")
    serve.add_argument("--seed", type=int, default=7, help="master seed")
    serve.add_argument(
        "--dt", type=float, default=1800.0, help="engine step in seconds"
    )
    serve.add_argument(
        "--speedup",
        type=float,
        default=0.0,
        help="simulated seconds per wall-clock second (0 = unpaced, flat out)",
    )
    serve.add_argument(
        "--inject-faults",
        action="store_true",
        help="degrade the replayed telemetry with calibrated sensor faults",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=512, help="per-subscriber queue size"
    )
    serve.add_argument(
        "--policy",
        choices=("block", "drop_oldest", "coalesce"),
        default="drop_oldest",
        help="backpressure policy for the analytics subscribers",
    )
    serve.add_argument(
        "--no-cusum",
        action="store_true",
        help="skip the CUSUM change-detector subscriber",
    )
    serve.add_argument(
        "--chunk-size",
        type=int,
        default=256,
        help="snapshots per published chunk (1 = per-sample delivery)",
    )

    chaos = commands.add_parser(
        "chaos",
        help="run the chaos matrix (crash/hang/kill) and verify recovery",
    )
    chaos.add_argument("--days", type=int, default=4, help="simulated days")
    chaos.add_argument("--seed", type=int, default=7, help="master seed")
    chaos.add_argument(
        "--dt", type=float, default=1800.0, help="engine step in seconds"
    )
    chaos.add_argument(
        "--chunk-sizes",
        type=int,
        nargs="+",
        default=[1, 64],
        metavar="N",
        help="chunk sizes to exercise (1 = per-sample delivery)",
    )
    chaos.add_argument(
        "--scenarios",
        nargs="+",
        choices=("crash", "hang", "kill"),
        default=["crash", "hang", "kill"],
        help="failure modes to inject",
    )
    chaos.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the JSON summary to this file",
    )

    query = commands.add_parser(
        "query", help="run one dashboard query against the rollup store"
    )
    query.add_argument("--days", type=int, default=30, help="simulated days")
    query.add_argument("--seed", type=int, default=7, help="master seed")
    query.add_argument(
        "--dt", type=float, default=1800.0, help="engine step in seconds"
    )
    query.add_argument(
        "--channel", default="power_kw", help="telemetry channel column name"
    )
    query.add_argument(
        "--kind",
        choices=("aggregate", "series", "point"),
        default="aggregate",
        help="query shape",
    )
    query.add_argument(
        "--stat",
        choices=("mean", "min", "max", "sum", "coverage", "covered_sum"),
        default="mean",
        help="statistic",
    )
    query.add_argument(
        "--scope",
        choices=("facility", "rack", "row"),
        default="facility",
        help="rack-axis scope",
    )
    query.add_argument("--rack", type=int, default=None, help="flat rack index")
    query.add_argument("--row", type=int, default=None, help="row index")
    query.add_argument(
        "--start-day", type=float, default=0.0, help="window start, days from t0"
    )
    query.add_argument(
        "--end-day", type=float, default=None, help="window end, days from t0"
    )
    query.add_argument(
        "--resolution",
        type=float,
        default=None,
        help="explicit rollup resolution in seconds (default: snap)",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="also print the full cache statistics snapshot",
    )

    serve_http = commands.add_parser(
        "serve-http",
        help="serve a dataset over the operations HTTP API",
    )
    serve_http.add_argument("--days", type=int, default=7, help="simulated days")
    serve_http.add_argument("--seed", type=int, default=7, help="master seed")
    serve_http.add_argument(
        "--dt", type=float, default=1800.0, help="engine step in seconds"
    )
    serve_http.add_argument(
        "--archive",
        type=Path,
        default=None,
        help="serve this saved telemetry archive instead of simulating",
    )
    serve_http.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_http.add_argument(
        "--port", type=int, default=8080, help="TCP port (0 picks a free one)"
    )
    serve_http.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "1 = threaded single process (ingest supported); >1 = that "
            "many pre-forked read-only workers over a memory-mapped "
            "archive"
        ),
    )
    serve_http.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many seconds then exit (CI smoke mode)",
    )
    serve_http.add_argument(
        "--ingest-token",
        action="append",
        default=[],
        metavar="COLLECTOR=TOKEN",
        help=(
            "enable ingest auth for COLLECTOR with TOKEN (repeatable; "
            "threaded mode only; no tokens = open ingest)"
        ),
    )
    serve_http.add_argument(
        "--no-ingest",
        action="store_true",
        help="serve read-only (POST /v1/ingest answers 503)",
    )
    serve_http.add_argument(
        "--cache-size", type=int, default=1024, help="query-cache capacity"
    )

    http_load = commands.add_parser(
        "http-load",
        help="run the deterministic load generator against serve-http",
    )
    http_load.add_argument(
        "--url", required=True, help="server base URL, e.g. http://127.0.0.1:8080"
    )
    http_load.add_argument(
        "--requests", type=int, default=500, help="total queries to issue"
    )
    http_load.add_argument(
        "--clients",
        type=int,
        default=None,
        help="client processes (default: REPRO_WORKERS or all cores)",
    )
    http_load.add_argument("--seed", type=int, default=0, help="query-mix seed")
    http_load.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="passes over the same path list (pass 2+ hits a warm cache)",
    )
    http_load.add_argument(
        "--out", type=Path, default=None, help="also write the JSON report here"
    )
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulation import FacilityEngine, MiraScenario
    from repro.telemetry.export import export_ras_jsonl, export_telemetry_csv

    if args.full_study:
        config = MiraScenario.full_study(seed=args.seed)
    else:
        config = MiraScenario.demo(days=args.days, seed=args.seed, dt_s=args.dt)
    if args.inject_faults:
        import dataclasses

        from repro.faults import FaultConfig

        config = dataclasses.replace(config, faults=FaultConfig())
    print(f"simulating {config.start} .. {config.end} at dt={config.dt_s:.0f}s ...")
    result = FacilityEngine(config).run()
    if result.fault_truth is not None:
        print(result.fault_truth.summary())
        print(f"ingest counters: {result.database.counters.as_dict()}")
    args.out.mkdir(parents=True, exist_ok=True)
    telemetry_path = args.out / "telemetry.csv"
    ras_path = args.out / "ras.jsonl"
    rows = export_telemetry_csv(result.database, telemetry_path)
    events = export_ras_jsonl(result.ras_log, ras_path)
    print(f"wrote {rows} telemetry rows to {telemetry_path}")
    print(f"wrote {events} RAS events to {ras_path}")
    failures = len(result.schedule.events) if result.schedule else 0
    print(
        f"summary: {result.jobs_completed} jobs completed, "
        f"{result.jobs_killed} killed, {failures} CMF events"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import time

    from repro.core.experiments import full_report
    from repro.core.report import format_table
    from repro.parallel import resolve_workers
    from repro.simulation import FacilityEngine, MiraScenario
    from repro.simulation.datasets import canonical_dataset

    if args.full_study:
        print("building the canonical six-year dataset ...")
        result = canonical_dataset()
    else:
        print(f"simulating {args.days} days (seed {args.seed}) ...")
        result = FacilityEngine(
            MiraScenario.demo(days=args.days, seed=args.seed)
        ).run()
    workers = resolve_workers(args.workers)
    print(f"building the report on {workers} worker{'s' if workers != 1 else ''} ...")
    section_cache = False if args.no_section_cache else None
    started = time.perf_counter()
    sections = full_report(
        result,
        workers=workers,
        synthesize_windows=args.windows,
        section_cache=section_cache,
    )
    elapsed = time.perf_counter() - started
    for title, rows in sections.items():
        print("\n" + format_table(rows, title))
    if args.stats:
        from repro.analytics.incremental import default_store

        info = result.database.digest_info()
        store = default_store()
        print(f"\nreport built in {elapsed:.3f}s")
        print(
            f"dataset digest: {info.root[:16]} "
            f"({info.rows} rows, {info.num_chunks} chunks of "
            f"{info.chunk_rows}; hashed {info.hashed_chunks}, "
            f"reused {info.reused_chunks})"
        )
        if store.enabled and section_cache is not False:
            counters = store.counters.as_dict()
            print(f"section cache at {store.root}:")
            print("  " + ", ".join(f"{k}={v}" for k, v in counters.items()))
        else:
            print("section cache: disabled")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.core.prediction import sweep_leads
    from repro.parallel import resolve_workers
    from repro.simulation import FacilityEngine, MiraScenario, WindowSynthesizer

    print(f"simulating {args.days} days (seed {args.seed}) ...")
    result = FacilityEngine(MiraScenario.demo(days=args.days, seed=args.seed)).run()
    if result.schedule is None or not result.schedule.events:
        print("no CMF events in the simulated period; try more days")
        return 1
    synthesizer = WindowSynthesizer(result)
    positives = synthesizer.positive_windows()
    negatives = synthesizer.negative_windows(len(positives))
    workers = resolve_workers(args.workers)
    print(
        f"{len(positives)} failures; sweeping leads on {workers} "
        f"worker{'s' if workers != 1 else ''} ..."
    )
    print(f"\n{'lead':>6}  {'accuracy':>8}  {'precision':>9}  {'recall':>7}  "
          f"{'F1':>6}  {'FPR':>6}")
    for evaluation in sweep_leads(positives, negatives, workers=workers):
        report = evaluation.report
        print(
            f"{evaluation.lead_h:>5.1f}h  {report.accuracy:>8.3f}  "
            f"{report.precision:>9.3f}  {report.recall:>7.3f}  "
            f"{report.f1:>6.3f}  {report.false_positive_rate:>6.3f}"
        )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.tools.experiments import write_experiments_md

    path = write_experiments_md(args.out, workers=args.workers)
    print(f"wrote {path}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.analytics.incremental import SectionMemoStore
    from repro.simulation.datasets import cache_entries, cache_root, clear_cache

    root = cache_root()
    store = SectionMemoStore(enabled=True)
    if args.cache_command == "clear":
        removed = clear_cache()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} from {root}")
        swept = store.clear()
        print(
            f"removed {swept} section-memo entr{'y' if swept == 1 else 'ies'} "
            f"from {store.root}"
        )
        return 0
    entries = cache_entries()
    sections = store.entries()
    if entries:
        print(f"dataset cache at {root}:")
        print(f"{'digest':<18} {'version':<10} {'size':>10}")
        total = 0
        for entry in entries:
            total += entry.size_bytes
            print(f"{entry.digest:<18} {entry.version:<10} {entry.size_mb:>8.1f}MB")
        print(f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
              f"{total / 1e6:.1f}MB total")
    else:
        print(f"no dataset-cache entries under {root}")
    if sections:
        print(f"\nsection memos at {store.root}:")
        print(f"{'section':<22} {'kind':<6} {'key':<26} {'size':>9} {'age':>9}")
        total = 0
        for entry in sections:
            total += entry.size_bytes
            age = (
                f"{entry.age_s:.0f}s"
                if entry.age_s < 120
                else f"{entry.age_s / 60:.0f}m"
            )
            print(
                f"{entry.section:<22} {entry.kind:<6} {entry.key_digest:<26} "
                f"{entry.size_bytes / 1e3:>7.1f}kB {age:>9}"
            )
        print(
            f"{len(sections)} entr{'y' if len(sections) == 1 else 'ies'}, "
            f"{total / 1e3:.1f}kB total"
        )
    else:
        print(f"\nno section-memo entries under {store.root}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.validation import validate_result
    from repro.simulation import FacilityEngine, MiraScenario

    print(f"simulating {args.days} days (seed {args.seed}) ...")
    result = FacilityEngine(MiraScenario.demo(days=args.days, seed=args.seed)).run()
    scorecard = validate_result(result)
    print(scorecard.summary())
    return 0 if scorecard.passed else 1


def _simulated_database(days: int, seed: int, dt_s: float, faults: bool = False):
    import dataclasses

    from repro.simulation import FacilityEngine, MiraScenario

    config = MiraScenario.demo(days=days, seed=seed, dt_s=dt_s)
    if faults:
        from repro.faults import FaultConfig

        config = dataclasses.replace(config, faults=FaultConfig())
    print(f"simulating {config.start} .. {config.end} at dt={config.dt_s:.0f}s ...")
    return FacilityEngine(config).run()


def _cmd_serve_replay(args: argparse.Namespace) -> int:
    from repro.service import LiveOperationsService, Query, ServiceConfig
    from repro.telemetry.records import Channel

    result = _simulated_database(
        args.days, args.seed, args.dt, faults=args.inject_faults
    )
    speedup = args.speedup if args.speedup > 0 else float("inf")
    service = LiveOperationsService(
        result.database,
        cusum=not args.no_cusum,
        config=ServiceConfig(
            speedup=speedup,
            queue_capacity=args.queue_capacity,
            analytics_policy=args.policy,
            chunk_size=args.chunk_size,
        ),
    )
    label = "unpaced" if speedup == float("inf") else f"{speedup:g}x"
    digest = result.database.dataset_digest()
    print(f"dataset digest: {digest[:16]}")
    print(f"replaying {result.database.num_samples} snapshots ({label}) ...")
    report = service.run()
    print(
        f"published {report.bus.published} rows in {report.bus.duration_s:.2f}s "
        f"({report.bus.rows_per_sec:.0f} rows/s, "
        f"speedup ~{report.bus.achieved_speedup:.0f}x)"
    )
    for name, counters in report.bus.subscribers.items():
        print(f"  {name}: {counters.as_dict()}")
    print(f"rollup buckets: {report.rollup_buckets}")
    if report.alarms:
        print(f"CUSUM alarms: {len(report.alarms)}")
    # A taste of the live query surface over what was just streamed.
    start = result.start_epoch_s
    end = result.end_epoch_s
    for stat, unit in (("mean", "kW"), ("max", "kW"), ("coverage", "")):
        answer = service.engine.execute(
            Query("aggregate", Channel.POWER, start, end, stat=stat)
        )
        print(f"  power {stat} over replay: {answer.value:.3f} {unit}".rstrip())
    print(f"query cache: {service.engine.cache_info().as_dict()}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.chaos import run_chaos_matrix

    print(
        f"chaos matrix: {args.days} days (seed {args.seed}), "
        f"chunk sizes {args.chunk_sizes}, scenarios {args.scenarios} ..."
    )
    summary = run_chaos_matrix(
        days=args.days,
        seed=args.seed,
        dt_s=args.dt,
        chunk_sizes=args.chunk_sizes,
        scenarios=args.scenarios,
    )
    payload = json.dumps(summary, indent=2, default=str)
    print(payload)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}")
    ok = bool(summary["ok"])
    print("chaos matrix: OK" if ok else "chaos matrix: FAILED")
    return 0 if ok else 1


def _cmd_query(args: argparse.Namespace) -> int:
    from repro import timeutil
    from repro.service import Query, QueryEngine, RollupStore
    from repro.telemetry.records import Channel

    try:
        channel = Channel(args.channel)
    except ValueError:
        columns = ", ".join(ch.column for ch in Channel)
        print(f"unknown channel {args.channel!r}; choose one of: {columns}")
        return 1
    result = _simulated_database(args.days, args.seed, args.dt)
    store = RollupStore.from_database(result.database)
    engine = QueryEngine(store)
    start = result.start_epoch_s + args.start_day * timeutil.DAY_S
    end_day = args.end_day if args.end_day is not None else float(args.days)
    end = result.start_epoch_s + end_day * timeutil.DAY_S
    query = Query(
        args.kind,
        channel,
        start,
        end,
        stat=args.stat,
        scope=args.scope,
        rack=args.rack,
        row=args.row,
        resolution_s=args.resolution,
    )
    answer = engine.execute(query)
    engine.execute(query)  # the repeat shows the cache hit below
    print(f"resolution: {answer.resolution_s:.0f}s")
    if args.kind == "series":
        for epoch, value in zip(answer.epoch_s, answer.values):
            when = timeutil.from_epoch(epoch)
            print(f"  {when:%Y-%m-%d %H:%M}  {value:.4f}")
    else:
        print(f"{args.stat}({channel.column}) [{args.scope}] = {answer.value:.6f}")
    info = engine.cache_info()
    if args.stats:
        print("cache statistics:")
        for key, value in info.as_dict().items():
            formatted = f"{value:.3f}" if key == "hit_rate" else f"{value}"
            print(f"  {key:<14} {formatted}")
    else:
        print(f"cache: {info.as_dict()}")
    return 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    import tempfile

    from repro.service.http import (
        IngestServerConfig,
        OperationsApp,
        OperationsHttpServer,
        serve_prefork,
    )
    from repro.telemetry.archive import TelemetryArchive

    tokens = {}
    for pair in args.ingest_token:
        collector, sep, token = pair.partition("=")
        if not sep or not collector or not token:
            print(f"--ingest-token wants COLLECTOR=TOKEN, got {pair!r}")
            return 1
        tokens[collector] = token

    if args.workers > 1:
        # Pre-forked read-only workers need an on-disk archive every
        # child can reopen memory-mapped.
        if args.archive is not None:
            archive_dir = args.archive
            cleanup = None
        else:
            result = _simulated_database(args.days, args.seed, args.dt)
            cleanup = tempfile.TemporaryDirectory(prefix="repro-http-")
            archive_dir = Path(cleanup.name) / "archive"
            TelemetryArchive.save(result.database, archive_dir)
        try:
            def announce(host: str, port: int) -> None:
                print(
                    f"serving {archive_dir} read-only on http://{host}:{port} "
                    f"with {args.workers} workers (Ctrl-C to stop)",
                    flush=True,
                )

            failures = serve_prefork(
                archive_dir,
                workers=args.workers,
                host=args.host,
                port=args.port,
                duration_s=args.duration,
                cache_size=args.cache_size,
                ready_callback=announce,
            )
        finally:
            if cleanup is not None:
                cleanup.cleanup()
        return 0 if failures == 0 else 1

    if args.archive is not None:
        database = TelemetryArchive.load(args.archive, mmap=True)
    else:
        database = _simulated_database(args.days, args.seed, args.dt).database
    ingest = None if args.no_ingest else IngestServerConfig(tokens=tokens)
    app = OperationsApp.from_database(
        database, cache_size=args.cache_size, ingest=ingest
    )
    server = OperationsHttpServer(app, host=args.host, port=args.port)
    host, port = server.address
    mode = "read-only" if args.no_ingest else (
        "authenticated ingest" if tokens else "open ingest"
    )
    print(
        f"serving {database.num_samples} samples on http://{host}:{port} "
        f"({mode}; Ctrl-C to stop)",
        flush=True,
    )
    try:
        if args.duration is not None:
            import time as _time

            server.start()
            _time.sleep(args.duration)
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        print("\nstopping ...")
    finally:
        if app.gateway is not None:
            app.gateway.finalize()
        server.stop()
    counters = app.counters
    print(
        f"served {counters.requests} requests "
        f"({counters.client_errors} client errors, "
        f"{counters.server_errors} server errors)"
    )
    return 0


def _cmd_http_load(args: argparse.Namespace) -> int:
    import json

    from repro.service.http import generate_query_paths, probe_bounds, run_load

    bounds = probe_bounds(args.url)
    paths = generate_query_paths(
        bounds.start_epoch_s,
        bounds.end_epoch_s,
        bounds.num_racks,
        bounds.resolutions_s,
        args.requests,
        seed=args.seed,
    )
    report = None
    for iteration in range(max(1, args.repeat)):
        report = run_load(args.url, paths, clients=args.clients)
        label = "cold" if iteration == 0 else f"warm pass {iteration}"
        print(
            f"{label}: {report.requests} requests in {report.elapsed_s:.2f}s "
            f"= {report.requests_per_s:.0f} req/s "
            f"(p50 {report.p50_ms:.2f}ms, p99 {report.p99_ms:.2f}ms, "
            f"{report.errors} errors)"
        )
    if args.out is not None and report is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report.as_dict(), indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0 if report is not None and report.errors == 0 else 1


_COMMANDS = {
    "simulate": _cmd_simulate,
    "report": _cmd_report,
    "predict": _cmd_predict,
    "experiments": _cmd_experiments,
    "cache": _cmd_cache,
    "validate": _cmd_validate,
    "serve-replay": _cmd_serve_replay,
    "chaos": _cmd_chaos,
    "query": _cmd_query,
    "serve-http": _cmd_serve_http,
    "http-load": _cmd_http_load,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
