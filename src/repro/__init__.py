"""repro: a reproduction of "Operating Liquid-Cooled Large-Scale Systems"
(HPCA 2021).

The package has two halves:

* a **facility simulator** substituting for the proprietary Mira
  telemetry (:mod:`repro.facility`, :mod:`repro.cooling`,
  :mod:`repro.weather`, :mod:`repro.scheduler`, :mod:`repro.failures`,
  :mod:`repro.telemetry`, :mod:`repro.simulation`), and
* the **paper's analyses** (:mod:`repro.core`) plus the from-scratch ML
  stack behind the CMF predictor (:mod:`repro.ml`).

Quickstart::

    from repro.simulation import MiraScenario, FacilityEngine

    result = FacilityEngine(MiraScenario.demo(days=30)).run()
    power = result.database.system_power_mw()
    print(power.overall_mean(), "MW")
"""

from repro import constants, timeutil, units

__version__ = "1.7.0"

__all__ = ["constants", "timeutil", "units", "__version__"]
