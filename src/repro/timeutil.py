"""Vectorized calendar helpers shared by the simulator and analyses.

All telemetry timestamps in this library are **seconds since the Unix
epoch** stored as ``float64`` or ``int64`` numpy arrays.  The paper's
analyses constantly need calendar fields (year, month, weekday, hour)
over millions of timestamps, so the conversions here are vectorized via
``numpy.datetime64`` arithmetic rather than per-element ``datetime``
objects.

All timestamps are naive local facility time; the paper's data is
likewise facility-local and no cross-timezone arithmetic occurs.
"""

from __future__ import annotations

import datetime as dt
from typing import Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int]

#: Seconds in common spans.
MINUTE_S = 60
HOUR_S = 3600
DAY_S = 86_400
WEEK_S = 7 * DAY_S
YEAR_S = 365.25 * DAY_S

_EPOCH = dt.datetime(1970, 1, 1)


def to_epoch(when: dt.datetime) -> float:
    """Convert a naive datetime to epoch seconds."""
    return (when - _EPOCH).total_seconds()


def from_epoch(seconds: float) -> dt.datetime:
    """Convert epoch seconds back to a naive datetime."""
    return _EPOCH + dt.timedelta(seconds=float(seconds))


def _as_datetime64(epoch_s: ArrayLike) -> np.ndarray:
    return np.asarray(epoch_s, dtype="float64").astype("datetime64[s]")


def years(epoch_s: ArrayLike) -> np.ndarray:
    """Calendar year of each timestamp."""
    d64 = _as_datetime64(epoch_s)
    return d64.astype("datetime64[Y]").astype(int) + 1970


def months(epoch_s: ArrayLike) -> np.ndarray:
    """Calendar month (1..12) of each timestamp."""
    d64 = _as_datetime64(epoch_s)
    return d64.astype("datetime64[M]").astype(int) % 12 + 1


def days_of_year(epoch_s: ArrayLike) -> np.ndarray:
    """Day-of-year (1..366) of each timestamp."""
    d64 = _as_datetime64(epoch_s)
    day = d64.astype("datetime64[D]")
    year_start = day.astype("datetime64[Y]").astype("datetime64[D]")
    return (day - year_start).astype(int) + 1


def weekdays(epoch_s: ArrayLike) -> np.ndarray:
    """Weekday (Monday == 0 .. Sunday == 6) of each timestamp."""
    d64 = _as_datetime64(epoch_s)
    day_index = d64.astype("datetime64[D]").astype(int)
    # 1970-01-01 was a Thursday (weekday 3).
    return (day_index + 3) % 7


def hours_of_day(epoch_s: ArrayLike) -> np.ndarray:
    """Hour of day (0..23) of each timestamp."""
    seconds = np.asarray(epoch_s, dtype="float64")
    return ((seconds % DAY_S) // HOUR_S).astype(int)


def fractional_year(epoch_s: ArrayLike) -> np.ndarray:
    """Continuous year coordinate, e.g. 2016.5 for mid-2016.

    Used for linear trend fits over multi-year series (Fig 2).
    """
    seconds = np.asarray(epoch_s, dtype="float64")
    year = years(seconds)
    year_start = np.array(
        [to_epoch(dt.datetime(int(y), 1, 1)) for y in np.unique(year)]
    )
    year_map = {int(y): s for y, s in zip(np.unique(year), year_start)}
    starts = np.vectorize(year_map.__getitem__)(year)
    lengths = np.where(_is_leap(year), 366 * DAY_S, 365 * DAY_S)
    return year + (seconds - starts) / lengths


def _is_leap(year: np.ndarray) -> np.ndarray:
    year = np.asarray(year)
    return (year % 4 == 0) & ((year % 100 != 0) | (year % 400 == 0))


def time_grid(start: dt.datetime, end: dt.datetime, dt_s: float) -> np.ndarray:
    """Regular timestamp grid ``[start, end)`` with step ``dt_s`` seconds.

    Raises:
        ValueError: if the step is not positive or the interval empty.
    """
    if dt_s <= 0:
        raise ValueError(f"dt must be positive, got {dt_s}")
    start_s, end_s = to_epoch(start), to_epoch(end)
    if end_s <= start_s:
        raise ValueError(f"empty interval: {start} .. {end}")
    count = int(np.ceil((end_s - start_s) / dt_s))
    return start_s + np.arange(count, dtype="float64") * dt_s
