"""Physical model of the Mira machine: topology, power plant, dependencies.

The facility package answers "what is the machine made of": rack
geometry and naming (:mod:`repro.facility.topology`), the clock/link
dependency structure that makes rack failures propagate
(:mod:`repro.facility.dependencies`), the bulk-power-module electrical
model (:mod:`repro.facility.power`), and the assembled
:class:`~repro.facility.machine.Machine`.
"""

from repro.facility.topology import RackId, Rack, MiraTopology
from repro.facility.dependencies import DependencyGraph
from repro.facility.power import BulkPowerModule, RackPowerModel
from repro.facility.machine import Machine
from repro.facility.ion import IonPark, IonRack

__all__ = [
    "RackId",
    "Rack",
    "MiraTopology",
    "DependencyGraph",
    "BulkPowerModule",
    "RackPowerModel",
    "Machine",
    "IonPark",
    "IonRack",
]
