"""The I/O forwarding node (ION) racks — the air-cooled remainder.

Section II: each of Mira's three rows ends with two racks of I/O
forwarding nodes (six ION racks total), and unlike the compute racks
"other associated infrastructures, including the IONs, are air-cooled".
The coolant monitors do not instrument them, so they never appear in
the environmental database — but they do draw power and dump heat on
the *air* side, which the facility energy accounting must carry.

The model is deliberately simple: each ION rack has a static base draw
(the forwarding nodes run continuously) plus a component tracking the
compute machine's utilization (I/O traffic scales with running jobs).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple, Union

import numpy as np

from repro import constants


@dataclasses.dataclass(frozen=True)
class IonRack:
    """One air-cooled I/O forwarding rack.

    Attributes:
        row: The compute row this ION rack serves.
        position: 0 for the row's left end, 1 for the right.
        base_kw: Always-on draw of the forwarding nodes and switches.
        traffic_kw: Additional draw at 100 % compute utilization.
    """

    row: int
    position: int
    base_kw: float = 28.0
    traffic_kw: float = 9.0

    def __post_init__(self) -> None:
        if not 0 <= self.row < constants.NUM_ROWS:
            raise ValueError(f"row must be in [0, {constants.NUM_ROWS})")
        if self.position not in (0, 1):
            raise ValueError("position must be 0 or 1")
        if self.base_kw < 0 or self.traffic_kw < 0:
            raise ValueError("power terms cannot be negative")

    def power_kw(self, compute_utilization: float) -> float:
        """Draw at a given compute-machine utilization.

        Raises:
            ValueError: if utilization is outside [0, 1].
        """
        if not 0.0 <= compute_utilization <= 1.0:
            raise ValueError(
                f"utilization must be in [0, 1], got {compute_utilization}"
            )
        return self.base_kw + self.traffic_kw * compute_utilization

    @property
    def label(self) -> str:
        side = "L" if self.position == 0 else "R"
        return f"ION({self.row}, {side})"


class IonPark:
    """All six ION racks (two per row)."""

    def __init__(self) -> None:
        self._racks: Tuple[IonRack, ...] = tuple(
            IonRack(row=row, position=position)
            for row in range(constants.NUM_ROWS)
            for position in range(constants.ION_RACKS_PER_ROW)
        )

    @property
    def racks(self) -> Tuple[IonRack, ...]:
        return self._racks

    def __len__(self) -> int:
        return len(self._racks)

    def total_power_kw(
        self, compute_utilization: Union[float, np.ndarray]
    ) -> np.ndarray:
        """Aggregate ION draw for scalar or vector utilization."""
        utilization = np.asarray(compute_utilization, dtype="float64")
        if np.any((utilization < 0) | (utilization > 1)):
            raise ValueError("utilization must be in [0, 1]")
        base = sum(rack.base_kw for rack in self._racks)
        traffic = sum(rack.traffic_kw for rack in self._racks)
        return base + traffic * utilization

    def air_heat_load_kw(
        self, compute_utilization: Union[float, np.ndarray]
    ) -> np.ndarray:
        """Heat dumped to the room air (all of the ION draw)."""
        return self.total_power_kw(compute_utilization)
