"""Inter-rack clock/link dependencies and failure propagation.

Mira's racks are not failure-isolated: racks are inter-connected and
mediate links connecting each other.  The paper gives two concrete
examples (Section VI-A):

* rack ``(0, 9)`` has no clock card of its own and receives its clock
  signal *through* rack ``(0, A)`` — if ``(0, A)`` shuts down, ``(0, 9)``
  fails with it;
* *all* racks receive their clock signal through rack ``(1, 4)`` — if
  ``(1, 4)`` fails, the entire system fails.

Beyond the clock tree, the 5D torus means link traffic between any two
racks can be routed through racks that are not physically adjacent, so
the set of racks disturbed by a failure is not spatially correlated with
the epicenter (the Fig 15 observation).  We model this as a sparse
random "link mediation" graph layered on top of the deterministic clock
dependencies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro import constants
from repro.facility.topology import MiraTopology, RackId


class DependencyGraph:
    """Clock and link dependencies between racks.

    Args:
        topology: The machine floor plan.
        rng: Source of randomness for the link-mediation graph.  If
            omitted, only the deterministic clock dependencies are
            present.
        mediation_degree: Expected number of non-local racks whose links
            are mediated through each rack.
    """

    def __init__(
        self,
        topology: MiraTopology,
        rng: Optional[np.random.Generator] = None,
        mediation_degree: int = 3,
    ) -> None:
        self._topology = topology
        self._global_clock = RackId(*constants.GLOBAL_CLOCK_RACK)
        self._clock_parent: Dict[RackId, RackId] = {
            RackId(*child): RackId(*parent)
            for child, parent in constants.CLOCK_CHAINS.items()
        }
        self._mediates: Dict[RackId, FrozenSet[RackId]] = {}
        if rng is not None and mediation_degree > 0:
            self._build_mediation(rng, mediation_degree)

    # -- construction --------------------------------------------------------

    def _build_mediation(self, rng: np.random.Generator, degree: int) -> None:
        rack_ids = self._topology.rack_ids
        for rack_id in rack_ids:
            count = int(rng.poisson(degree))
            if count == 0:
                self._mediates[rack_id] = frozenset()
                continue
            others = [r for r in rack_ids if r != rack_id]
            chosen = rng.choice(len(others), size=min(count, len(others)), replace=False)
            self._mediates[rack_id] = frozenset(others[i] for i in np.atleast_1d(chosen))

    # -- queries -------------------------------------------------------------

    @property
    def global_clock_rack(self) -> RackId:
        """The rack through which all racks receive their clock signal."""
        return self._global_clock

    def clock_parent(self, rack_id: RackId) -> Optional[RackId]:
        """The rack this one draws its clock through, if chained."""
        return self._clock_parent.get(rack_id)

    def clock_children(self, rack_id: RackId) -> Tuple[RackId, ...]:
        """Racks that draw their clock through ``rack_id``."""
        return tuple(
            child for child, parent in self._clock_parent.items() if parent == rack_id
        )

    def mediated_by(self, rack_id: RackId) -> FrozenSet[RackId]:
        """Racks whose torus links are mediated through ``rack_id``."""
        return self._mediates.get(rack_id, frozenset())

    # -- propagation ---------------------------------------------------------

    def affected_by_failure(self, epicenter: RackId) -> FrozenSet[RackId]:
        """The closure of racks taken down when ``epicenter`` fails.

        Failure of the global clock rack takes down every rack.  Failure
        of a clock-chain parent takes down its chained children
        transitively.  Link-mediation disturbances are *not* included
        here — they raise failure *risk* (see
        :mod:`repro.failures.noncmf`) rather than deterministically
        killing racks.
        """
        if epicenter == self._global_clock:
            return frozenset(self._topology.rack_ids)
        affected: Set[RackId] = {epicenter}
        frontier: List[RackId] = [epicenter]
        while frontier:
            current = frontier.pop()
            for child in self.clock_children(current):
                if child not in affected:
                    affected.add(child)
                    frontier.append(child)
        return frozenset(affected)

    def disturbance_set(self, epicenter: RackId) -> FrozenSet[RackId]:
        """Racks whose traffic or clock is *disturbed* by a failure.

        This is the union of the deterministic failure closure and the
        link-mediation set, and is used to spread post-CMF elevated
        failure hazard across non-neighbouring racks (Fig 15).
        """
        return self.affected_by_failure(epicenter) | self.mediated_by(epicenter)

    def spatial_distance(self, a: RackId, b: RackId) -> float:
        """Euclidean floor distance between two racks (in rack pitches)."""
        return float(np.hypot(a.row - b.row, a.col - b.col))

    def is_spatially_local(
        self, epicenter: RackId, racks: Iterable[RackId], radius: float = 2.0
    ) -> bool:
        """Whether all ``racks`` lie within ``radius`` pitches of the epicenter.

        The Fig 15 analysis uses this to demonstrate that post-CMF
        failures are *not* local to the epicenter.
        """
        return all(self.spatial_distance(epicenter, r) <= radius for r in racks)
