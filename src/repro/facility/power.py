"""Electrical model: bulk power modules and the rack power draw model.

Each Mira rack is fed by a Bulk Power Module (BPM) that converts 480 V
AC from the 13.2 kV substation feed into DC for the two midplanes.  The
coolant monitor's "power" channel reports the aggregate draw of all
four power enclosures of the rack — i.e. the *AC side* of the BPM,
which includes conversion loss and the fans in the power module.

The rack power model decomposes a rack's DC-side draw into:

* an idle floor (always-on logic, memory refresh, link SerDes),
* a dynamic component proportional to ``utilization x intensity`` where
  *intensity* captures how hard the jobs on the rack drive the cores
  (the paper's explanation for why power and utilization correlate at
  only r = 0.45), and
* a small cooling-dependence term: racks receiving less coolant flow
  run hotter and leak slightly more power.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro import constants


@dataclasses.dataclass
class BulkPowerModule:
    """AC-to-DC conversion for one rack.

    Attributes:
        conversion_efficiency: DC-out / AC-in ratio in (0, 1].
        fan_power_kw: Power drawn by the fans inside the power module,
            present on the AC side regardless of load.
        healthy: False after an "AC to DC power" failure; an unhealthy
            BPM delivers no power until repaired.
    """

    conversion_efficiency: float = 0.94
    fan_power_kw: float = 1.6
    healthy: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.conversion_efficiency <= 1.0:
            raise ValueError(
                "conversion efficiency must be in (0, 1], got "
                f"{self.conversion_efficiency}"
            )
        if self.fan_power_kw < 0.0:
            raise ValueError("fan power cannot be negative")

    def ac_draw_kw(self, dc_load_kw: float) -> float:
        """AC-side draw for a DC-side load, including fans.

        This is what the coolant monitor's power channel reports.
        """
        if dc_load_kw < 0.0:
            raise ValueError(f"DC load cannot be negative, got {dc_load_kw}")
        if not self.healthy:
            return 0.0
        return dc_load_kw / self.conversion_efficiency + self.fan_power_kw

    def fail(self) -> None:
        """Record an AC-to-DC conversion failure."""
        self.healthy = False

    def repair(self) -> None:
        """Restore the module after maintenance."""
        self.healthy = True


@dataclasses.dataclass(frozen=True)
class RackPowerModel:
    """DC-side power draw of one rack as a function of its load.

    The default calibration reproduces Mira's system-level figures:
    48 racks at ~80 % utilization draw ~2.5 MW (2014) and at ~93 %
    utilization with the observed intensity creep draw ~2.9 MW (2019).

    Attributes:
        idle_kw: DC power of a powered-but-idle rack.
        dynamic_kw: Additional DC power at 100 % utilization and
            nominal (1.0) job intensity.
        efficiency_factor: Static per-rack multiplier on the dynamic
            term; spread across racks this produces the up-to-15 %
            rack-to-rack power variation of Fig 6(a).
        cooling_sensitivity_kw: Extra leakage power per degree F of
            internal temperature rise above nominal caused by reduced
            coolant flow.
    """

    idle_kw: float = 20.0
    dynamic_kw: float = 36.0
    efficiency_factor: float = 1.0
    cooling_sensitivity_kw: float = 0.15

    def dc_load_kw(
        self,
        utilization: float,
        intensity: float = 1.0,
        temperature_excess_f: float = 0.0,
    ) -> float:
        """DC-side draw for a given load point.

        Args:
            utilization: Fraction of the rack's nodes running jobs, in
                [0, 1].
            intensity: CPU intensity of the jobs on the rack (1.0 =
                nominal; CPU-bound codes run >1, I/O-bound <1).
            temperature_excess_f: How far the rack's internals run
                above the nominal design temperature, in degrees F.

        Returns:
            DC power in kW.

        Raises:
            ValueError: if utilization is outside [0, 1] or intensity
                is negative.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        if intensity < 0.0:
            raise ValueError(f"intensity cannot be negative, got {intensity}")
        dynamic = self.dynamic_kw * self.efficiency_factor * utilization * intensity
        leakage = max(0.0, temperature_excess_f) * self.cooling_sensitivity_kw
        return self.idle_kw + dynamic + leakage

    def dc_load_kw_vector(
        self,
        utilization: np.ndarray,
        intensity: np.ndarray,
        efficiency_factors: np.ndarray,
        temperature_excess_f: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized draw across racks (flat-index order).

        This is the hot path of the simulation engine; it bypasses the
        per-rack ``efficiency_factor`` attribute in favour of an
        explicit per-rack vector.
        """
        dynamic = self.dynamic_kw * efficiency_factors * utilization * intensity
        load = self.idle_kw + dynamic
        if temperature_excess_f is not None:
            load = load + np.maximum(0.0, temperature_excess_f) * self.cooling_sensitivity_kw
        return load


def system_power_mw(rack_ac_draws_kw: np.ndarray) -> float:
    """Aggregate system power (MW) from per-rack AC draws (kW)."""
    return float(np.sum(rack_ac_draws_kw)) / 1000.0


def expected_system_power_mw(
    utilization: float,
    intensity: float = 1.0,
    power_model: Optional[RackPowerModel] = None,
    bpm: Optional[BulkPowerModule] = None,
) -> float:
    """Quick closed-form system power estimate for calibration checks."""
    model = power_model or RackPowerModel()
    module = bpm or BulkPowerModule()
    per_rack = module.ac_draw_kw(model.dc_load_kw(utilization, intensity))
    return per_rack * constants.NUM_RACKS / 1000.0
