"""Mira rack topology and naming.

Mira's 48 liquid-cooled compute racks are laid out in 3 rows of 16.
The paper (and the ALCF operators) name a rack by its row number and a
hexadecimal column, e.g. rack ``(0, D)`` is row 0, column 13.  This
module provides:

* :class:`RackId` — a hashable identity with the paper's naming,
* :class:`Rack` — the static structure of one rack (midplanes, node
  boards, node count),
* :class:`MiraTopology` — the full floor: rack enumeration, row/column
  lookups, airflow-impedance factors used by the ambient model, and
  flat-index mapping used by the vectorized simulator.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro import constants


@dataclasses.dataclass(frozen=True, order=True)
class RackId:
    """Identity of one compute rack, named as in the paper.

    Attributes:
        row: Row index, 0..2.
        col: Column index, 0..15 (printed as a hex digit).
    """

    row: int
    col: int

    def __post_init__(self) -> None:
        if not 0 <= self.row < constants.NUM_ROWS:
            raise ValueError(f"row must be in [0, {constants.NUM_ROWS}), got {self.row}")
        if not 0 <= self.col < constants.RACKS_PER_ROW:
            raise ValueError(
                f"col must be in [0, {constants.RACKS_PER_ROW}), got {self.col}"
            )

    @property
    def label(self) -> str:
        """The paper's display name, e.g. ``(0, D)``."""
        return f"({self.row}, {self.col:X})"

    @property
    def flat_index(self) -> int:
        """Row-major flat index in 0..47, used by vectorized telemetry."""
        return self.row * constants.RACKS_PER_ROW + self.col

    @classmethod
    def from_flat_index(cls, index: int) -> "RackId":
        """Inverse of :attr:`flat_index`."""
        if not 0 <= index < constants.NUM_RACKS:
            raise ValueError(f"flat index must be in [0, {constants.NUM_RACKS})")
        return cls(index // constants.RACKS_PER_ROW, index % constants.RACKS_PER_ROW)

    @classmethod
    def parse(cls, label: str) -> "RackId":
        """Parse a display label like ``(1, 8)`` or ``1,A`` or ``(2,f)``."""
        cleaned = label.strip().strip("()").replace(" ", "")
        parts = cleaned.split(",")
        if len(parts) != 2:
            raise ValueError(f"cannot parse rack label {label!r}")
        row = int(parts[0])
        col = int(parts[1], 16)
        return cls(row, col)

    def __str__(self) -> str:
        return self.label


@dataclasses.dataclass(frozen=True)
class Rack:
    """Static structure of one Blue Gene/Q compute rack."""

    rack_id: RackId
    midplanes: int = constants.MIDPLANES_PER_RACK
    node_boards_per_midplane: int = constants.NODE_BOARDS_PER_MIDPLANE
    nodes_per_board: int = constants.NODES_PER_BOARD

    @property
    def num_nodes(self) -> int:
        """Total compute nodes in the rack (1,024 on Mira)."""
        return self.midplanes * self.node_boards_per_midplane * self.nodes_per_board

    @property
    def num_cores(self) -> int:
        """Active compute cores in the rack."""
        return self.num_nodes * constants.COMPUTE_CORES_PER_NODE


class MiraTopology:
    """The 3 x 16 Mira floor plan and its derived spatial factors.

    The topology is immutable; one instance can be shared by the
    scheduler, the cooling loop, and the ambient model.

    The *airflow impedance* factors encode the paper's Section V root
    cause for the rack-to-rack spread of ambient temperature and
    humidity: underfloor airflow is significantly lower near the ends of
    each row (obstructive surfaces), and there are localized blockages
    such as the plumbing/vent/torus-cable tangle under rack (1, 8).
    A factor of 1.0 means unobstructed airflow; lower means blocked.
    """

    #: How many racks at each row end see reduced airflow (paper: the
    #: last three or four racks on either side).
    ROW_END_AFFECTED = 4

    #: Airflow factor at the very end of a row (linearly recovering to
    #: 1.0 over ROW_END_AFFECTED racks).
    ROW_END_FACTOR = 0.55

    #: Airflow factor at localized blockage hotspots.
    HOTSPOT_FACTOR = 0.50

    def __init__(self, hotspots: Sequence[Tuple[int, int]] = ((1, 0x8),)) -> None:
        self._racks: List[Rack] = [
            Rack(RackId.from_flat_index(i)) for i in range(constants.NUM_RACKS)
        ]
        self._hotspots = {RackId(r, c) for r, c in hotspots}
        self._airflow = self._compute_airflow_factors()

    # -- enumeration --------------------------------------------------------

    @property
    def racks(self) -> Tuple[Rack, ...]:
        """All 48 compute racks in flat-index order."""
        return tuple(self._racks)

    @property
    def rack_ids(self) -> Tuple[RackId, ...]:
        """All 48 rack identities in flat-index order."""
        return tuple(rack.rack_id for rack in self._racks)

    @property
    def num_racks(self) -> int:
        return len(self._racks)

    @property
    def total_nodes(self) -> int:
        """Total compute nodes across the machine (49,152 on Mira)."""
        return sum(rack.num_nodes for rack in self._racks)

    def __iter__(self) -> Iterator[Rack]:
        return iter(self._racks)

    def __len__(self) -> int:
        return len(self._racks)

    def rack(self, rack_id: RackId) -> Rack:
        """Look up the :class:`Rack` for an identity."""
        return self._racks[rack_id.flat_index]

    def row(self, row_index: int) -> Tuple[RackId, ...]:
        """All rack identities in one row, by column order."""
        if not 0 <= row_index < constants.NUM_ROWS:
            raise ValueError(f"row must be in [0, {constants.NUM_ROWS})")
        return tuple(
            RackId(row_index, col) for col in range(constants.RACKS_PER_ROW)
        )

    # -- spatial factors -----------------------------------------------------

    @property
    def hotspots(self) -> frozenset:
        """Racks with localized underfloor airflow blockage."""
        return frozenset(self._hotspots)

    def airflow_factor(self, rack_id: RackId) -> float:
        """Underfloor airflow factor for one rack (1.0 = unobstructed)."""
        return float(self._airflow[rack_id.flat_index])

    def airflow_factors(self) -> np.ndarray:
        """Vector of airflow factors in flat-index order (copy)."""
        return self._airflow.copy()

    def _compute_airflow_factors(self) -> np.ndarray:
        factors = np.ones(constants.NUM_RACKS)
        n = constants.RACKS_PER_ROW
        for rack in self._racks:
            col = rack.rack_id.col
            distance_from_end = min(col, n - 1 - col)
            if distance_from_end < self.ROW_END_AFFECTED:
                # Linear recovery from ROW_END_FACTOR at the very end to
                # 1.0 just past the affected region.
                frac = distance_from_end / self.ROW_END_AFFECTED
                factors[rack.rack_id.flat_index] = (
                    self.ROW_END_FACTOR + (1.0 - self.ROW_END_FACTOR) * frac
                )
        for hotspot in self._hotspots:
            factors[hotspot.flat_index] = min(
                factors[hotspot.flat_index], self.HOTSPOT_FACTOR
            )
        return factors
