"""The assembled Mira machine: topology + power plant + dependencies.

:class:`Machine` is the object the simulation engine drives.  It owns
the static structure (topology, dependency graph, per-rack electrical
parameters) and the *current* electrical state (per-rack BPM health).
Thermal and hydraulic state live in :mod:`repro.cooling`; job state
lives in :mod:`repro.scheduler`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro import constants
from repro.facility.dependencies import DependencyGraph
from repro.facility.power import BulkPowerModule, RackPowerModel
from repro.facility.topology import MiraTopology, RackId


class Machine:
    """Static structure and electrical state of the Mira system.

    Args:
        rng: Randomness source for the per-rack efficiency spread and
            the link-mediation graph.  Pass a seeded generator for
            reproducible machines.
        power_model: Base rack power model; per-rack efficiency factors
            are drawn around it.
        efficiency_spread: Half-width of the uniform distribution from
            which per-rack efficiency factors are drawn.  The default
            produces the up-to-15 % rack-to-rack power variation of
            Fig 6(a) once utilization differences are layered on.
        topology: Floor plan; a default Mira topology is built if
            omitted.
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        power_model: Optional[RackPowerModel] = None,
        efficiency_spread: float = 0.12,
        topology: Optional[MiraTopology] = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        self.topology = topology if topology is not None else MiraTopology()
        self.dependencies = DependencyGraph(self.topology, rng=rng)
        self.power_model = power_model if power_model is not None else RackPowerModel()
        self._efficiency = 1.0 + rng.uniform(
            -efficiency_spread, efficiency_spread, size=self.topology.num_racks
        )
        # Give the paper's highest-power rack (0, D) a nudged-up factor so
        # the spatial analysis lands where the paper reports it.  This is
        # calibration, not physics: (0, D) simply hosted the most
        # power-hungry job mix on real Mira.
        hot = RackId(*constants.HIGHEST_POWER_RACK).flat_index
        self._efficiency[hot] = 1.0 + efficiency_spread * 1.4
        self._bpms: Dict[RackId, BulkPowerModule] = {
            rack_id: BulkPowerModule() for rack_id in self.topology.rack_ids
        }

    # -- electrical ----------------------------------------------------------

    @property
    def efficiency_factors(self) -> np.ndarray:
        """Per-rack dynamic-power efficiency factors (flat-index order)."""
        return self._efficiency.copy()

    def bpm(self, rack_id: RackId) -> BulkPowerModule:
        """The bulk power module of one rack."""
        return self._bpms[rack_id]

    def bpm_health_vector(self) -> np.ndarray:
        """Boolean vector of BPM health in flat-index order."""
        return np.array(
            [self._bpms[r].healthy for r in self.topology.rack_ids], dtype=bool
        )

    def rack_ac_draw_kw(
        self,
        utilization: np.ndarray,
        intensity: np.ndarray,
        temperature_excess_f: Optional[np.ndarray] = None,
        powered: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-rack AC-side power draw (the coolant monitor's channel).

        Args:
            utilization: Per-rack node-occupancy fraction, flat order.
            intensity: Per-rack aggregate job CPU intensity.
            temperature_excess_f: Optional per-rack thermal excess.
            powered: Optional boolean mask; racks that are powered off
                (e.g. after a CMF solenoid/power shutoff) draw zero.

        Returns:
            Per-rack AC draw in kW, flat-index order.
        """
        dc = self.power_model.dc_load_kw_vector(
            utilization, intensity, self._efficiency, temperature_excess_f
        )
        bpm0 = next(iter(self._bpms.values()))
        ac = dc / bpm0.conversion_efficiency + bpm0.fan_power_kw
        healthy = self.bpm_health_vector()
        ac = np.where(healthy, ac, 0.0)
        if powered is not None:
            ac = np.where(powered, ac, 0.0)
        return ac

    # -- failure propagation ------------------------------------------------

    def failure_closure(self, epicenter: RackId) -> Tuple[RackId, ...]:
        """Racks deterministically taken down by a failure at ``epicenter``."""
        return tuple(sorted(self.dependencies.affected_by_failure(epicenter)))
