"""Unit conversions and small physical helpers.

The paper reports temperatures in degrees Fahrenheit, coolant flow in
gallons per minute (GPM), and power in megawatts.  Internally the
simulator occasionally needs SI units (heat-balance arithmetic is done
in kilowatts, kilograms per second, and Kelvin-equivalent Celsius
deltas), so the conversions live here in one place.
"""

from __future__ import annotations

import math

#: Specific heat capacity of water, kJ/(kg K).
WATER_SPECIFIC_HEAT_KJ_PER_KG_K = 4.186

#: Density of water, kg per litre.
WATER_DENSITY_KG_PER_L = 0.997

#: Litres per US gallon.
LITRES_PER_GALLON = 3.785411784

#: Kilowatts of heat removal per ton of refrigeration.
KW_PER_TON_REFRIGERATION = 3.51685


def fahrenheit_to_celsius(temp_f: float) -> float:
    """Convert degrees Fahrenheit to degrees Celsius."""
    return (temp_f - 32.0) * 5.0 / 9.0


def celsius_to_fahrenheit(temp_c: float) -> float:
    """Convert degrees Celsius to degrees Fahrenheit."""
    return temp_c * 9.0 / 5.0 + 32.0


def fahrenheit_delta_to_celsius(delta_f: float) -> float:
    """Convert a temperature *difference* in F to a difference in C."""
    return delta_f * 5.0 / 9.0


def celsius_delta_to_fahrenheit(delta_c: float) -> float:
    """Convert a temperature *difference* in C to a difference in F."""
    return delta_c * 9.0 / 5.0


def gpm_to_kg_per_s(flow_gpm: float) -> float:
    """Convert a volumetric water flow in GPM to a mass flow in kg/s."""
    litres_per_s = flow_gpm * LITRES_PER_GALLON / 60.0
    return litres_per_s * WATER_DENSITY_KG_PER_L


def kg_per_s_to_gpm(flow_kg_s: float) -> float:
    """Convert a mass water flow in kg/s to a volumetric flow in GPM."""
    litres_per_s = flow_kg_s / WATER_DENSITY_KG_PER_L
    return litres_per_s * 60.0 / LITRES_PER_GALLON


def coolant_temperature_rise_f(heat_kw: float, flow_gpm: float) -> float:
    """Temperature rise (in F) of water absorbing ``heat_kw`` at ``flow_gpm``.

    Applies the steady-state heat balance ``Q = m_dot * c_p * dT``.  This
    is the relation that couples rack power to the outlet coolant
    temperature in the internal-loop model.

    Raises:
        ValueError: if ``flow_gpm`` is not positive (stagnant coolant has
            no steady-state temperature rise; the caller must handle the
            solenoid-closed case explicitly).
    """
    if flow_gpm <= 0.0:
        raise ValueError(f"flow must be positive, got {flow_gpm} GPM")
    m_dot = gpm_to_kg_per_s(flow_gpm)
    delta_c = heat_kw / (m_dot * WATER_SPECIFIC_HEAT_KJ_PER_KG_K)
    return celsius_delta_to_fahrenheit(delta_c)


def heat_absorbed_kw(delta_t_f: float, flow_gpm: float) -> float:
    """Heat (kW) absorbed by water warming ``delta_t_f`` F at ``flow_gpm``."""
    m_dot = gpm_to_kg_per_s(flow_gpm)
    delta_c = fahrenheit_delta_to_celsius(delta_t_f)
    return m_dot * WATER_SPECIFIC_HEAT_KJ_PER_KG_K * delta_c


def tons_to_kw(tons: float) -> float:
    """Convert tons of refrigeration to kW of heat removal capacity."""
    return tons * KW_PER_TON_REFRIGERATION


def saturation_vapor_pressure_hpa(temp_c: float) -> float:
    """Saturation vapor pressure (hPa) via the Magnus formula.

    Valid over roughly -45 C .. 60 C, which comfortably covers both the
    Chicago outdoor range and data-center conditions.
    """
    return 6.112 * math.exp(17.62 * temp_c / (243.12 + temp_c))


def dewpoint_c(temp_c: float, relative_humidity: float) -> float:
    """Dewpoint temperature (C) from dry-bulb temperature and RH.

    Uses the Magnus approximation.  ``relative_humidity`` is a
    percentage in (0, 100].

    Raises:
        ValueError: if ``relative_humidity`` is outside (0, 100].
    """
    if not 0.0 < relative_humidity <= 100.0:
        raise ValueError(
            f"relative humidity must be in (0, 100], got {relative_humidity}"
        )
    gamma = math.log(relative_humidity / 100.0) + (
        17.62 * temp_c / (243.12 + temp_c)
    )
    return 243.12 * gamma / (17.62 - gamma)


def dewpoint_f(temp_f: float, relative_humidity: float) -> float:
    """Dewpoint in degrees F from a dry-bulb temperature in degrees F."""
    return celsius_to_fahrenheit(
        dewpoint_c(fahrenheit_to_celsius(temp_f), relative_humidity)
    )
