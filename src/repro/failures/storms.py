"""RAS storm generation: the raw message flood around a CMF.

When a coolant monitor trips, the RAS log does not record one tidy
event — it records a *storm*: the tripping rack floods the log with
fatal coolant messages until its power is cut, neighbouring monitors
log warnings, and every affected rack repeats the pattern.  The paper
reports storms of upwards of 10,000 messages (Section VI methodology).

The analysis layer must recover the true per-rack failures from this
flood using the 6 h per-rack dedup rule; this module produces the
flood.  Storm size is drawn heavy-tailed so that large incidents
produce the >10k-message events the paper describes while small ones
stay modest.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro import timeutil
from repro.facility.topology import RackId
from repro.failures.cmf import CmfIncident
from repro.failures.noncmf import NonCmfFailure
from repro.telemetry.ras import CMF_CATEGORY, RasEvent, RasLog, Severity


@dataclasses.dataclass(frozen=True)
class StormConfig:
    """Message-volume parameters for RAS storms."""

    #: Mean fatal messages logged per affected rack before shutdown.
    mean_messages_per_rack: int = 120
    #: Lognormal sigma of the per-rack message count.
    sigma: float = 1.0
    #: Seconds over which a rack's messages spread before power-off.
    burst_duration_s: float = 900.0
    #: Warn-severity messages logged by unaffected racks per incident.
    bystander_warnings: int = 40

    def __post_init__(self) -> None:
        if self.mean_messages_per_rack < 1:
            raise ValueError("need at least one message per rack")


class StormGenerator:
    """Expands a failure schedule into a raw RAS message stream."""

    def __init__(self, config: Optional[StormConfig] = None) -> None:
        self.config = config if config is not None else StormConfig()

    def _rack_burst(
        self,
        rng: np.random.Generator,
        epoch_s: float,
        rack_id: RackId,
        reason: str,
    ) -> List[RasEvent]:
        cfg = self.config
        mu = np.log(cfg.mean_messages_per_rack) - cfg.sigma**2 / 2.0
        count = max(1, int(rng.lognormal(mu, cfg.sigma)))
        offsets = np.sort(rng.uniform(0.0, cfg.burst_duration_s, size=count))
        offsets[0] = 0.0  # the trip itself is the first message
        return [
            RasEvent(
                epoch_s=epoch_s + float(offset),
                rack_id=rack_id,
                severity=Severity.FATAL,
                category=CMF_CATEGORY,
                message=f"coolant monitor fatal: {reason}",
            )
            for offset in offsets
        ]

    def storm_for_incident(
        self, rng: np.random.Generator, incident: CmfIncident
    ) -> List[RasEvent]:
        """All raw RAS messages for one CMF incident."""
        events: List[RasEvent] = []
        for cmf_event in incident.events:
            events.extend(
                self._rack_burst(
                    rng, cmf_event.epoch_s, cmf_event.rack_id, cmf_event.reason
                )
            )
        # Bystander racks log warn-severity messages as the loop
        # pressure transient passes them.
        for _ in range(self.config.bystander_warnings):
            rack = RackId.from_flat_index(int(rng.integers(48)))
            offset = float(rng.uniform(0.0, 2.0 * self.config.burst_duration_s))
            events.append(
                RasEvent(
                    epoch_s=incident.epoch_s + offset,
                    rack_id=rack,
                    severity=Severity.WARN,
                    category=CMF_CATEGORY,
                    message="coolant monitor warn: loop transient",
                )
            )
        return events

    def build_ras_log(
        self,
        rng: np.random.Generator,
        incidents: Sequence[CmfIncident],
        noncmf_failures: Sequence[NonCmfFailure] = (),
    ) -> RasLog:
        """The full raw RAS log for a production period.

        CMF incidents expand into storms; non-CMF failures are logged
        as single fatal events of their category (their own small
        repeat bursts are folded into the one event — the paper's
        1-hour dedup for non-CMF failures makes the distinction
        immaterial).
        """
        log = RasLog()
        all_events: List[RasEvent] = []
        for incident in incidents:
            all_events.extend(self.storm_for_incident(rng, incident))
        for failure in noncmf_failures:
            all_events.append(
                RasEvent(
                    epoch_s=failure.epoch_s,
                    rack_id=failure.rack_id,
                    severity=Severity.FATAL,
                    category=failure.category,
                    message=f"fatal: {failure.category}",
                )
            )
        log.extend(all_events)
        return log
