"""Failure processes: CMF hazard, precursors, storms, and aftermath.

* :mod:`repro.failures.dewpoint` — condensation-risk arithmetic,
* :mod:`repro.failures.cmf` — the coolant-monitor-failure schedule
  (era-modulated, rack-factored) and the pre-failure telemetry
  signatures of Fig 12,
* :mod:`repro.failures.noncmf` — the elevated post-CMF failure process
  of Fig 14,
* :mod:`repro.failures.storms` — raw RAS-storm message generation that
  the Section VI dedup methodology is applied against.
"""

from repro.failures.cmf import CmfEvent, CmfIncident, CmfSchedule, PrecursorSignature
from repro.failures.noncmf import AftermathProcess, NonCmfFailure
from repro.failures.storms import StormGenerator

__all__ = [
    "CmfEvent",
    "CmfIncident",
    "CmfSchedule",
    "PrecursorSignature",
    "AftermathProcess",
    "NonCmfFailure",
    "StormGenerator",
]
