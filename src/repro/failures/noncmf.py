"""The post-CMF elevated failure process (Section VI-C, Figs 14-15).

After a CMF, the machine enters a fragile period: the failure rate of
*non-CMF* fatal events (BPM "AC to DC power" conversion failures,
compute-card (BQC) and link-module (BQL) failures, clock card,
software, and background-process failures) is sharply elevated and
decays over ~48 hours.  Half of all post-CMF failures are AC-to-DC
power failures; process failures are rare (<2 %).

The decay is a two-timescale exponential calibrated so the rate within
6 h is ~70 % of the 3 h rate and the 48 h rate is ~10 % of it — the
Fig 14(a) shape.  Failure *locations* are not epicenter-local: racks
are interlinked through the clock tree and torus mediation, so the
elevated hazard lands mostly anywhere on the system (Fig 15), with
only a mild tilt toward the disturbance set of the epicenter.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants, timeutil
from repro.facility.dependencies import DependencyGraph
from repro.facility.topology import RackId
from repro.failures.cmf import CmfIncident


@dataclasses.dataclass(frozen=True)
class NonCmfFailure:
    """One fatal non-CMF failure."""

    epoch_s: float
    rack_id: RackId
    category: str
    #: The CMF incident this failure followed, or None for background.
    incident_id: Optional[int]

    @property
    def is_background(self) -> bool:
        return self.incident_id is None


@dataclasses.dataclass(frozen=True)
class AftermathConfig:
    """Shape of the post-CMF hazard."""

    #: Expected number of induced non-CMF failures per CMF incident.
    expected_per_incident: float = 2.2
    #: Fast and slow decay time constants (hours).
    fast_tau_h: float = 5.0
    slow_tau_h: float = 30.0
    #: Weight of the fast component.
    fast_weight: float = 0.7
    #: Hazard window after an incident (hours).
    window_h: float = float(constants.AFTERMATH_WINDOW_HOURS)
    #: Probability an induced failure lands inside the epicenter's
    #: disturbance set (the rest land uniformly anywhere).
    disturbance_bias: float = 0.35
    #: Background (not CMF-induced) fatal non-CMF failures per day
    #: machine-wide.
    background_rate_per_day: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.fast_weight <= 1.0:
            raise ValueError("fast_weight must be in [0, 1]")
        if self.fast_tau_h <= 0 or self.slow_tau_h <= 0:
            raise ValueError("decay constants must be positive")


class AftermathProcess:
    """Samples the non-CMF failures that follow CMF incidents.

    Args:
        dependencies: The inter-rack dependency graph (for the mild
            disturbance-set bias of failure locations).
        config: Hazard shape.
    """

    def __init__(
        self,
        dependencies: Optional[DependencyGraph] = None,
        config: Optional[AftermathConfig] = None,
    ) -> None:
        self._dependencies = dependencies
        self.config = config if config is not None else AftermathConfig()
        categories = list(constants.AFTERMATH_TYPE_DISTRIBUTION.items())
        self._category_names = [name for name, _ in categories]
        self._category_probs = np.array([p for _, p in categories])
        self._category_probs = self._category_probs / self._category_probs.sum()

    # -- hazard shape -----------------------------------------------------------

    def relative_rate(self, hours_after: np.ndarray) -> np.ndarray:
        """Unnormalized hazard at a given lag after an incident."""
        tau = np.asarray(hours_after, dtype="float64")
        cfg = self.config
        rate = cfg.fast_weight * np.exp(-tau / cfg.fast_tau_h) + (
            1.0 - cfg.fast_weight
        ) * np.exp(-tau / cfg.slow_tau_h)
        return np.where((tau < 0) | (tau > cfg.window_h), 0.0, rate)

    def _sample_lag_s(self, rng: np.random.Generator) -> float:
        """Inverse-free sampling of a lag from the mixture by component."""
        cfg = self.config
        while True:
            if rng.random() < cfg.fast_weight:
                lag_h = float(rng.exponential(cfg.fast_tau_h))
            else:
                lag_h = float(rng.exponential(cfg.slow_tau_h))
            if lag_h <= cfg.window_h:
                return lag_h * timeutil.HOUR_S

    # -- location choice ----------------------------------------------------------

    def _sample_rack(
        self, rng: np.random.Generator, epicenter: RackId
    ) -> RackId:
        if (
            self._dependencies is not None
            and rng.random() < self.config.disturbance_bias
        ):
            disturbed = sorted(self._dependencies.disturbance_set(epicenter))
            if disturbed:
                return disturbed[int(rng.integers(len(disturbed)))]
        return RackId.from_flat_index(int(rng.integers(constants.NUM_RACKS)))

    def _sample_category(self, rng: np.random.Generator) -> str:
        index = int(rng.choice(len(self._category_names), p=self._category_probs))
        return self._category_names[index]

    # -- generation ------------------------------------------------------------------

    def induced_failures(
        self, rng: np.random.Generator, incidents: Sequence[CmfIncident]
    ) -> List[NonCmfFailure]:
        """Sample the failures induced by each CMF incident."""
        failures: List[NonCmfFailure] = []
        for incident in incidents:
            count = int(rng.poisson(self.config.expected_per_incident))
            for _ in range(count):
                failures.append(
                    NonCmfFailure(
                        epoch_s=incident.epoch_s + self._sample_lag_s(rng),
                        rack_id=self._sample_rack(rng, incident.epicenter),
                        category=self._sample_category(rng),
                        incident_id=incident.incident_id,
                    )
                )
        failures.sort(key=lambda f: f.epoch_s)
        return failures

    def background_failures(
        self,
        rng: np.random.Generator,
        start_epoch_s: float,
        end_epoch_s: float,
    ) -> List[NonCmfFailure]:
        """Sample the low-level background failure stream."""
        if end_epoch_s <= start_epoch_s:
            raise ValueError("empty interval")
        days = (end_epoch_s - start_epoch_s) / timeutil.DAY_S
        count = int(rng.poisson(self.config.background_rate_per_day * days))
        times = np.sort(rng.uniform(start_epoch_s, end_epoch_s, size=count))
        return [
            NonCmfFailure(
                epoch_s=float(t),
                rack_id=RackId.from_flat_index(int(rng.integers(constants.NUM_RACKS))),
                category=self._sample_category(rng),
                incident_id=None,
            )
            for t in times
        ]
