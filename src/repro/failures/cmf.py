"""The coolant-monitor-failure (CMF) process.

Three findings from Section VI shape this model:

* **Non-bathtub timing** (Fig 10): failures cluster around external
  events — ~40 % of all CMFs landed in 2016 while Theta was being
  plumbed into Mira's water loop — with a >2-year quiet stretch
  afterwards.  The schedule therefore samples incident times from an
  *era-weighted* density rather than a constant or bathtub hazard.
* **Rack factors uncorrelated with load** (Fig 11): per-rack CMF
  counts ranged from 5 (rack (2, 7)) to 14 (rack (1, 8)) with no other
  rack above 9, and correlate with neither utilization, outlet
  temperature, nor humidity.  Rack budgets here are latent factors
  drawn independently of every load metric.
* **Precursor signatures** (Fig 12): inlet coolant temperature sags by
  up to 7 % starting ~4 h out then snaps up ~8 % in the last half
  hour; outlet sags 5 % from ~3 h out; flow holds steady until a rapid
  collapse in the final ~30 min.  :class:`PrecursorSignature` encodes
  those shapes as piecewise-linear multipliers that the simulation
  engine applies to the affected rack's telemetry.

A CMF *incident* is one physical cooling event; it produces CMF
*events* on one or more racks (the paper's methodology counts each
affected rack as a failure).  Incidents are spaced more than the 6 h
dedup window apart so the downstream dedup recovers the schedule
exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import constants, timeutil
from repro.facility.topology import RackId

#: Failure reasons, matching the coolant monitor's fatal conditions.
REASON_FLOW = "coolant_flow_loss"
REASON_CONDENSATION = "condensation_risk"


@dataclasses.dataclass(frozen=True)
class CmfEvent:
    """One rack's fatal coolant-monitor failure."""

    epoch_s: float
    rack_id: RackId
    incident_id: int
    reason: str
    is_epicenter: bool
    #: How long the rack stays down (up to six hours, Section VI).
    recovery_s: float
    #: Relative strength of the pre-failure telemetry signature.  The
    #: paper reports drops "by as much as" 7-8 %: event severities
    #: vary, and weak-precursor events are the ones the predictor
    #: struggles with at long leads.
    severity: float = 1.0

    @property
    def recovery_epoch_s(self) -> float:
        return self.epoch_s + self.recovery_s


@dataclasses.dataclass(frozen=True)
class CmfIncident:
    """One physical cooling incident and the rack failures it caused."""

    incident_id: int
    epoch_s: float
    epicenter: RackId
    events: Tuple[CmfEvent, ...]

    @property
    def affected_racks(self) -> Tuple[RackId, ...]:
        return tuple(e.rack_id for e in self.events)

    @property
    def size(self) -> int:
        return len(self.events)


class PrecursorSignature:
    """Piecewise-linear pre-failure telemetry multipliers (Fig 12).

    Each channel's multiplier is 1.0 outside the lead-up window and
    follows the paper's reported shape inside it.  ``tau_s`` is the
    time *remaining* until the failure (0 at the event itself).
    """

    #: Lead-up window length: signatures are flat (1.0) beyond this.
    #: The strong Fig 12 shapes live inside six hours; a weak onset
    #: tail extends to ten hours (this is what lets the paper's
    #: predictor reach ~87 % accuracy a full six hours out — the
    #: change features evaluated at a 6 h lead look back over the
    #: 6..12 h-before span and catch the onset).
    WINDOW_S = 10 * timeutil.HOUR_S

    #: (tau_hours, relative_change) knots, tau decreasing to the event.
    INLET_KNOTS: Tuple[Tuple[float, float], ...] = (
        (10.0, 0.0),
        (8.0, -0.014),
        (6.0, -0.030),
        (constants.LEADUP_INLET_DROP_HOURS, -constants.LEADUP_INLET_DROP),
        (1.0, -0.045),
        (0.5, 0.0),
        (0.0, constants.LEADUP_INLET_RISE),
    )
    OUTLET_KNOTS: Tuple[Tuple[float, float], ...] = (
        (10.0, 0.0),
        (8.0, -0.009),
        (6.0, -0.020),
        (constants.LEADUP_OUTLET_DROP_HOURS, -constants.LEADUP_OUTLET_DROP),
        (0.5, -constants.LEADUP_OUTLET_DROP),
        (0.0, -0.03),
    )
    FLOW_KNOTS: Tuple[Tuple[float, float], ...] = (
        (10.0, 0.0),
        (constants.LEADUP_FLOW_COLLAPSE_HOURS, 0.0),
        (0.0, -0.70),
    )
    #: Localized humidity rise used for condensation-triggered events.
    HUMIDITY_KNOTS: Tuple[Tuple[float, float], ...] = (
        (10.0, 0.0),
        (7.0, 0.02),
        (2.0, 0.06),
        (0.0, 0.30),
    )

    @staticmethod
    def _interp(
        knots: Tuple[Tuple[float, float], ...],
        tau_s: np.ndarray,
        amplitude: Union[np.ndarray, float] = 1.0,
    ) -> np.ndarray:
        # ``amplitude`` may be a scalar or an array broadcastable
        # against ``tau_s`` (the vectorized engine passes per-event
        # severities for whole blocks of steps at once).
        tau_h = np.asarray(tau_s, dtype="float64") / timeutil.HOUR_S
        taus = np.array([k[0] for k in knots])
        vals = np.array([k[1] for k in knots])
        # np.interp needs increasing x; knots are tau-decreasing.
        change = np.interp(tau_h, taus[::-1], vals[::-1], left=vals[-1], right=0.0)
        change = np.where(tau_h > knots[0][0], 0.0, change)
        change = np.where(tau_h < 0.0, 0.0, change)
        return 1.0 + amplitude * change

    @classmethod
    def inlet_factor(
        cls, tau_s: np.ndarray, amplitude: Union[np.ndarray, float] = 1.0
    ) -> np.ndarray:
        """Multiplier on inlet coolant temperature at lead ``tau_s``."""
        return cls._interp(cls.INLET_KNOTS, tau_s, amplitude)

    @classmethod
    def outlet_factor(
        cls, tau_s: np.ndarray, amplitude: Union[np.ndarray, float] = 1.0
    ) -> np.ndarray:
        """Multiplier on outlet coolant temperature at lead ``tau_s``."""
        return cls._interp(cls.OUTLET_KNOTS, tau_s, amplitude)

    @classmethod
    def flow_factor(
        cls, tau_s: np.ndarray, amplitude: Union[np.ndarray, float] = 1.0
    ) -> np.ndarray:
        """Multiplier on coolant flow at lead ``tau_s``.

        The flow collapse *is* the failure mechanism for most events,
        so its amplitude is floored high enough that even
        weak-precursor events drop a ~26 GPM rack below the 10 GPM
        fatal threshold at the event.
        """
        return cls._interp(cls.FLOW_KNOTS, tau_s, np.maximum(amplitude, 0.9))

    @classmethod
    def humidity_factor(
        cls,
        tau_s: np.ndarray,
        condensation_triggered: bool = False,
        amplitude: Union[np.ndarray, float] = 1.0,
    ) -> np.ndarray:
        """Multiplier on local DC humidity at lead ``tau_s``."""
        if not condensation_triggered:
            return np.ones_like(np.asarray(tau_s, dtype="float64"))
        return cls._interp(cls.HUMIDITY_KNOTS, tau_s, amplitude)


@dataclasses.dataclass(frozen=True)
class CmfScheduleConfig:
    """Knobs for schedule generation; defaults reproduce the paper."""

    total_events: int = constants.TOTAL_CMFS
    fraction_2016: float = constants.CMF_2016_FRACTION
    most_rack: Tuple[int, int] = constants.MOST_CMF_RACK
    most_count: int = constants.MOST_CMF_COUNT
    fewest_rack: Tuple[int, int] = constants.FEWEST_CMF_RACK
    fewest_count: int = constants.FEWEST_CMF_COUNT
    other_min: int = 6
    other_max: int = constants.OTHER_RACK_MAX_CMFS
    #: Minimum spacing between incidents; larger than the 6 h dedup
    #: window so dedup recovers the schedule exactly.
    min_incident_spacing_s: float = 6.5 * timeutil.HOUR_S
    #: Condensation-triggered share of incidents (the rest are flow
    #: collapses).
    condensation_fraction: float = 0.35
    min_recovery_s: float = 3.0 * timeutil.HOUR_S
    max_recovery_s: float = 6.0 * timeutil.HOUR_S


class CmfSchedule:
    """The realized six-year CMF schedule.

    Build with :meth:`generate`; query incidents, per-rack events, and
    the precursor state needed by the telemetry engine.
    """

    def __init__(self, incidents: Sequence[CmfIncident]) -> None:
        self._incidents = tuple(sorted(incidents, key=lambda i: i.epoch_s))
        self._events = tuple(
            sorted(
                (e for i in self._incidents for e in i.events),
                key=lambda e: e.epoch_s,
            )
        )
        self._per_rack: Dict[RackId, List[CmfEvent]] = {}
        for event in self._events:
            self._per_rack.setdefault(event.rack_id, []).append(event)

    # -- queries ---------------------------------------------------------------

    @property
    def incidents(self) -> Tuple[CmfIncident, ...]:
        return self._incidents

    @property
    def events(self) -> Tuple[CmfEvent, ...]:
        return self._events

    def events_for_rack(self, rack_id: RackId) -> Tuple[CmfEvent, ...]:
        return tuple(self._per_rack.get(rack_id, ()))

    def rack_counts(self) -> np.ndarray:
        """Per-rack event counts in flat-index order (Fig 11)."""
        counts = np.zeros(constants.NUM_RACKS, dtype=int)
        for event in self._events:
            counts[event.rack_id.flat_index] += 1
        return counts

    def events_between(self, start_epoch_s: float, end_epoch_s: float) -> Tuple[CmfEvent, ...]:
        return tuple(
            e for e in self._events if start_epoch_s <= e.epoch_s < end_epoch_s
        )

    def event_time_matrix(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, rack_indices, condensation_flags) arrays for the engine."""
        times = np.array([e.epoch_s for e in self._events])
        racks = np.array([e.rack_id.flat_index for e in self._events], dtype=int)
        condensation = np.array(
            [e.reason == REASON_CONDENSATION for e in self._events], dtype=bool
        )
        return times, racks, condensation

    # -- generation ---------------------------------------------------------------

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        start_epoch_s: Optional[float] = None,
        end_epoch_s: Optional[float] = None,
        config: Optional[CmfScheduleConfig] = None,
    ) -> "CmfSchedule":
        """Sample a schedule consistent with the paper's Figs 10-11."""
        cfg = config if config is not None else CmfScheduleConfig()
        start = (
            start_epoch_s
            if start_epoch_s is not None
            else timeutil.to_epoch(constants.PRODUCTION_START)
        )
        end = (
            end_epoch_s
            if end_epoch_s is not None
            else timeutil.to_epoch(constants.PRODUCTION_END)
        )
        eras = cls._eras(start, end, cfg)
        mass = sum(w for _, w in eras)
        scaled_total = int(round(cfg.total_events * min(1.0, mass)))
        if scaled_total == 0 or not eras:
            return cls(())
        if scaled_total >= cfg.total_events:
            budgets = cls._rack_budgets(rng, cfg)
        else:
            # Partial window: thin the full-period rack profile.
            full = cls._rack_budgets(rng, cfg).astype(float)
            budgets = rng.multinomial(scaled_total, full / full.sum())
        multiplicities = cls._incident_multiplicities(rng, int(budgets.sum()))
        times = cls._incident_times(rng, len(multiplicities), eras, cfg)
        incidents = cls._assemble(rng, budgets, multiplicities, times, cfg)
        return cls(incidents)

    @staticmethod
    def _rack_budgets(rng: np.random.Generator, cfg: CmfScheduleConfig) -> np.ndarray:
        """Per-rack event budgets matching the Fig 11 profile."""
        budgets = np.zeros(constants.NUM_RACKS, dtype=int)
        most = RackId(*cfg.most_rack).flat_index
        fewest = RackId(*cfg.fewest_rack).flat_index
        budgets[most] = cfg.most_count
        budgets[fewest] = cfg.fewest_count
        others = [i for i in range(constants.NUM_RACKS) if i not in (most, fewest)]
        remaining = cfg.total_events - cfg.most_count - cfg.fewest_count
        draw = rng.integers(cfg.other_min, cfg.other_max + 1, size=len(others))
        budgets[others] = draw
        # Adjust random racks up/down (within bounds) until the total
        # matches exactly.
        delta = remaining - int(draw.sum())
        step = 1 if delta > 0 else -1
        guard = 0
        while delta != 0:
            index = int(rng.choice(others))
            candidate = budgets[index] + step
            if cfg.other_min <= candidate <= cfg.other_max:
                budgets[index] = candidate
                delta -= step
            guard += 1
            if guard > 100_000:
                raise RuntimeError("rack budget adjustment failed to converge")
        return budgets

    @staticmethod
    def _incident_multiplicities(
        rng: np.random.Generator, total_events: int
    ) -> List[int]:
        """How many racks each incident takes down (sums to the total)."""
        sizes: List[int] = []
        produced = 0
        while produced < total_events:
            roll = rng.random()
            if roll < 0.62:
                size = 1
            elif roll < 0.82:
                size = 2
            elif roll < 0.92:
                size = int(rng.integers(3, 6))
            elif roll < 0.985:
                size = int(rng.integers(6, 13))
            else:
                size = int(rng.integers(16, 49))  # system-scale storm
            size = min(size, total_events - produced)
            sizes.append(size)
            produced += size
        return sizes

    @staticmethod
    def _eras(
        start: float, end: float, cfg: CmfScheduleConfig
    ) -> List[Tuple[Tuple[float, float], float]]:
        """Era windows with their event-mass weights, clipped to [start, end).

        The full-period eras are: pre-Theta (2014 .. mid-2016), the
        Theta-integration burst (carrying the 2016 share), the >2-year
        quiet stretch (zero mass), and the late era (Nov 2018 on).
        Eras outside the requested window are clipped proportionally,
        so a short simulation gets a correspondingly thinned schedule.
        """
        production_start = timeutil.to_epoch(constants.PRODUCTION_START)
        production_end = timeutil.to_epoch(constants.PRODUCTION_END)
        theta = timeutil.to_epoch(constants.THETA_ADDITION_DATE)
        quiet_start = timeutil.to_epoch(constants.CMF_QUIET_START)
        quiet_end = timeutil.to_epoch(constants.CMF_QUIET_END)
        theta_era = (theta - 30 * timeutil.DAY_S, quiet_start)
        pre_era = (production_start, theta_era[0])
        post_era = (quiet_end, production_end)
        pre_len = pre_era[1] - pre_era[0]
        post_len = post_era[1] - post_era[0]
        rest = 1.0 - cfg.fraction_2016
        full = [
            (pre_era, rest * pre_len / (pre_len + post_len)),
            (theta_era, cfg.fraction_2016),
            (post_era, rest * post_len / (pre_len + post_len)),
        ]
        clipped: List[Tuple[Tuple[float, float], float]] = []
        for (lo, hi), weight in full:
            new_lo, new_hi = max(lo, start), min(hi, end)
            if new_hi <= new_lo:
                continue
            clipped.append(((new_lo, new_hi), weight * (new_hi - new_lo) / (hi - lo)))
        return clipped

    @staticmethod
    def _incident_times(
        rng: np.random.Generator,
        count: int,
        eras: List[Tuple[Tuple[float, float], float]],
        cfg: CmfScheduleConfig,
    ) -> np.ndarray:
        """Era-weighted incident times (Fig 10's non-bathtub shape)."""
        weights = np.array([w for _, w in eras])
        weights = weights / weights.sum()
        times: List[float] = []
        attempts = 0
        while len(times) < count:
            era_index = int(rng.choice(len(eras), p=weights))
            lo, hi = eras[era_index][0]
            candidate = float(rng.uniform(lo, hi))
            if all(abs(candidate - t) >= cfg.min_incident_spacing_s for t in times):
                times.append(candidate)
            attempts += 1
            if attempts > 100 * count + 1000:
                raise RuntimeError("incident time sampling failed to converge")
        return np.sort(np.array(times))

    @staticmethod
    def _assemble(
        rng: np.random.Generator,
        budgets: np.ndarray,
        multiplicities: List[int],
        times: np.ndarray,
        cfg: CmfScheduleConfig,
    ) -> List[CmfIncident]:
        """Assign racks to incidents respecting per-rack budgets."""
        remaining = budgets.astype(float).copy()
        # Large incidents need many racks with budget left, so place
        # them first (times stay as sampled: sizes are shuffled onto
        # times independently).
        order = np.argsort([-m for m in multiplicities])
        incidents: List[CmfIncident] = []
        for position, incident_index in enumerate(order):
            size = multiplicities[incident_index]
            epoch = float(times[incident_index])
            available = np.flatnonzero(remaining > 0)
            if len(available) < size:
                size = len(available)
            probs = remaining[available] / remaining[available].sum()
            chosen = rng.choice(available, size=size, replace=False, p=probs)
            remaining[chosen] -= 1
            condensation = rng.random() < cfg.condensation_fraction
            reason = REASON_CONDENSATION if condensation else REASON_FLOW
            events = []
            for k, rack_index in enumerate(chosen):
                offset = 0.0 if k == 0 else float(rng.uniform(30.0, 1800.0))
                events.append(
                    CmfEvent(
                        epoch_s=epoch + offset,
                        rack_id=RackId.from_flat_index(int(rack_index)),
                        incident_id=incident_index,
                        reason=reason,
                        is_epicenter=(k == 0),
                        recovery_s=float(
                            rng.uniform(cfg.min_recovery_s, cfg.max_recovery_s)
                        ),
                        severity=float(rng.uniform(0.45, 1.25)),
                    )
                )
            incidents.append(
                CmfIncident(
                    incident_id=incident_index,
                    epoch_s=epoch,
                    epicenter=events[0].rack_id,
                    events=tuple(events),
                )
            )
        return incidents
