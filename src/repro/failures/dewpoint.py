"""Condensation-risk arithmetic around the dewpoint.

The fatal CMF trigger is a condensation guard: when the dewpoint of
the air around a rack approaches the temperature of the cold surfaces
(the inlet coolant plumbing), water condenses on the electronics.  The
coolant monitor therefore watches the *condensation margin* — inlet
coolant temperature minus air dewpoint — and trips when it collapses.

Vectorized versions of the Magnus dewpoint live here; the scalar
versions are in :mod:`repro.units`.
"""

from __future__ import annotations

import numpy as np

from repro import units


def dewpoint_f_vec(temp_f: np.ndarray, relative_humidity: np.ndarray) -> np.ndarray:
    """Vectorized Magnus dewpoint, inputs/outputs in degrees F.

    Raises:
        ValueError: if any humidity is outside (0, 100].
    """
    rh = np.asarray(relative_humidity, dtype="float64")
    if np.any((rh <= 0.0) | (rh > 100.0)):
        raise ValueError("relative humidity must be in (0, 100]")
    temp_c = (np.asarray(temp_f, dtype="float64") - 32.0) * 5.0 / 9.0
    gamma = np.log(rh / 100.0) + 17.62 * temp_c / (243.12 + temp_c)
    dew_c = 243.12 * gamma / (17.62 - gamma)
    return dew_c * 9.0 / 5.0 + 32.0


def condensation_margin_f(
    inlet_temp_f: np.ndarray,
    dc_temp_f: np.ndarray,
    dc_humidity_rh: np.ndarray,
) -> np.ndarray:
    """Inlet coolant temperature minus air dewpoint, in degrees F.

    Positive margins are safe; margins near zero or negative mean
    condensation on the cold plumbing is imminent (the fatal trigger).
    """
    return np.asarray(inlet_temp_f, dtype="float64") - dewpoint_f_vec(
        dc_temp_f, dc_humidity_rh
    )


def humidity_for_margin(
    inlet_temp_f: float, dc_temp_f: float, target_margin_f: float
) -> float:
    """Relative humidity at which the condensation margin equals a target.

    Inverts the Magnus dewpoint: finds RH such that
    ``dewpoint(dc_temp, RH) == inlet_temp - target_margin``.  Used by
    the failure injector to synthesize locally-elevated humidity that
    is physically consistent with a margin collapse.

    Raises:
        ValueError: if the required dewpoint is not below the air
            temperature (no RH <= 100 can achieve it).
    """
    dew_f = inlet_temp_f - target_margin_f
    dew_c = units.fahrenheit_to_celsius(dew_f)
    temp_c = units.fahrenheit_to_celsius(dc_temp_f)
    if dew_c >= temp_c:
        raise ValueError(
            f"required dewpoint {dew_f:.1f} F is not below air temp {dc_temp_f:.1f} F"
        )
    gamma = 17.62 * dew_c / (243.12 + dew_c)
    rh = 100.0 * np.exp(gamma - 17.62 * temp_c / (243.12 + temp_c))
    return float(rh)
