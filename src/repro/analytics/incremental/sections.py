"""Append-only report-section reducers.

The pure time-fold sections of the full report — trends, calendar
profiles, per-rack spatial profiles, ambient statistics — do not need
the raw ``(time, rack)`` matrices to produce their rows; they need
derived quantities that can be *folded block by block*:

* **system series** (Figs 2, 3, 4, 5, 8): every derived 1-D series the
  trend/profile analyses consume (system power, utilization, total
  flow, across-rack coolant and ambient means) is a per-row reduction
  along the rack axis.  Row reductions are row-local, so computing
  them on an appended block and concatenating yields *bit-identical*
  arrays to recomputing on the grown matrix.  The state blob stores
  the derived ``(time, 7)`` matrix (~3 MB/yr at hourly cadence vs
  ~140 MB of raw columns); finalization reconstructs the series and
  runs the exact reference statistics code
  (:func:`repro.core.trends.yearly_trends_from_series` and friends).
* **rack profiles** (Figs 6, 7, 9): the per-rack time means fold as
  (finite-sum, finite-count) accumulator pairs per channel.  Within a
  block the partial sums use numpy's pairwise summation, across
  blocks they accumulate sequentially, so a folded profile can differ
  from the from-scratch ``nanmean`` by a few ULPs — well inside the
  report's 1e-12 float tolerance (the discrete argmax/argmin rack
  picks are safe: the paper's spreads are percent-level).

A state blob carries a chunk-prefix watermark (the full-chunk digests
plus the tail-range hash of everything it folded).  Before reuse the
watermark is revalidated against the live store: if the prefix still
matches, only rows past the watermark are folded; any rewrite of
history (a scrubber pass, a duplicate merge) invalidates the state
and it rebuilds from scratch.  Sections with no incremental form fall
back to whole-section memoization in
:mod:`repro.analytics.incremental.memo`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.core.environment import AmbientSpatial, ambient_trends_from_series
from repro.core.spatial import RackCoolantProfile, RackPowerProfile
from repro.core.trends import (
    coolant_trends_from_series,
    monthly_profiles_from_matrix,
    weekday_profiles_from_matrix,
    yearly_trends_from_series,
)
from repro.telemetry import nanstats
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.digest import DigestInfo
from repro.telemetry.records import CHANNELS, Channel
from repro.telemetry.series import TimeSeries

#: Shared state blob identifiers (several sections fold one state).
SYSTEM_SERIES_STATE = "system-series"
RACK_PROFILE_STATE = "rack-profile"

#: Column order of the system-series state matrix.  The first five
#: match the Fig 4/5 channel tuple ``(None, UTILIZATION, FLOW, INLET,
#: OUTLET)`` so the calendar profiles reduce the matrix slice directly.
SERIES_COLUMNS: Tuple[str, ...] = (
    "system_power_mw",
    "system_utilization",
    "total_flow_gpm",
    Channel.INLET_TEMPERATURE.column,
    Channel.OUTLET_TEMPERATURE.column,
    Channel.DC_TEMPERATURE.column,
    Channel.DC_HUMIDITY.column,
)


@dataclasses.dataclass
class SectionState:
    """One reducer's compact fold state plus its dataset watermark.

    Attributes:
        state_id: Which builder produced (and can advance) the payload.
        chunk_rows: Digest chunk size the watermark was recorded under.
        rows_folded: Rows of the store folded into the payload.
        prefix_chunks: Digests of the full chunks covered by
            ``rows_folded``.
        prefix_tail: Hash of the remaining rows past the last full
            chunk (``""`` when ``rows_folded`` is chunk-aligned).
        payload: The builder-specific arrays.
    """

    state_id: str
    chunk_rows: int
    rows_folded: int
    prefix_chunks: Tuple[str, ...]
    prefix_tail: str
    payload: Dict[str, np.ndarray]


def _covered_sum_rows(values: np.ndarray, num_racks: int) -> np.ndarray:
    """Row-wise coverage-corrected across-rack sum.

    Mirrors ``EnvironmentalDatabase._covered_sum`` operation for
    operation so a block slice folds bit-identically to the full-matrix
    computation.
    """
    finite = np.isfinite(values)
    counts = finite.sum(axis=1)
    total = np.nansum(values, axis=1)
    scale = np.divide(
        float(num_racks),
        counts,
        out=np.full(len(counts), np.nan),
        where=counts > 0,
    )
    return total * scale


class _SystemSeriesBuilder:
    """Folds the seven derived system-level series (bit-identical)."""

    state_id = SYSTEM_SERIES_STATE

    def empty(self, database: EnvironmentalDatabase) -> Dict[str, np.ndarray]:
        return {
            "epoch_s": np.empty(0, dtype="float64"),
            "series": np.empty((0, len(SERIES_COLUMNS)), dtype="float64"),
        }

    def fold(
        self,
        payload: Dict[str, np.ndarray],
        database: EnvironmentalDatabase,
        lo: int,
        hi: int,
    ) -> Dict[str, np.ndarray]:
        if hi <= lo:
            return payload
        epoch = np.asarray(database.epoch_s[lo:hi], dtype="float64")
        racks = database.num_racks
        power = np.asarray(database.channel(Channel.POWER).values[lo:hi])
        util = np.asarray(database.channel(Channel.UTILIZATION).values[lo:hi])
        flow = np.asarray(database.channel(Channel.FLOW).values[lo:hi])
        columns = [
            _covered_sum_rows(power, racks) / 1000.0,
            nanstats.nanmean(util, axis=1),
            _covered_sum_rows(flow, racks),
        ]
        for channel in (
            Channel.INLET_TEMPERATURE,
            Channel.OUTLET_TEMPERATURE,
            Channel.DC_TEMPERATURE,
            Channel.DC_HUMIDITY,
        ):
            block = np.asarray(database.channel(channel).values[lo:hi])
            columns.append(nanstats.nanmean(block, axis=1))
        payload["epoch_s"] = np.concatenate([payload["epoch_s"], epoch])
        payload["series"] = np.concatenate(
            [payload["series"], np.column_stack(columns)], axis=0
        )
        return payload


class _RackProfileBuilder:
    """Folds per-rack (finite-sum, finite-count) pairs per channel."""

    state_id = RACK_PROFILE_STATE

    def empty(self, database: EnvironmentalDatabase) -> Dict[str, np.ndarray]:
        shape = (len(CHANNELS), database.num_racks)
        return {
            "sums": np.zeros(shape, dtype="float64"),
            "counts": np.zeros(shape, dtype="float64"),
        }

    def fold(
        self,
        payload: Dict[str, np.ndarray],
        database: EnvironmentalDatabase,
        lo: int,
        hi: int,
    ) -> Dict[str, np.ndarray]:
        if hi <= lo:
            return payload
        for j, channel in enumerate(CHANNELS):
            block = np.asarray(database.channel(channel).values[lo:hi])
            finite = np.isfinite(block)
            payload["sums"][j] += np.where(finite, block, 0.0).sum(axis=0)
            payload["counts"][j] += finite.sum(axis=0)
        return payload


STATE_BUILDERS: Dict[str, Any] = {
    builder.state_id: builder
    for builder in (_SystemSeriesBuilder(), _RackProfileBuilder())
}


# -- state advance -----------------------------------------------------------


def _sealed(
    state_id: str,
    payload: Dict[str, np.ndarray],
    database: EnvironmentalDatabase,
    info: DigestInfo,
) -> SectionState:
    """Stamp a payload with the current dataset watermark.

    The full-chunk prefix digests come straight from ``info`` (the tail
    chunk of a non-aligned store *is* the remainder range, so no extra
    hashing happens here).
    """
    full = info.rows // info.chunk_rows
    tail = "" if info.rows == full * info.chunk_rows else info.chunk_hashes[full]
    return SectionState(
        state_id=state_id,
        chunk_rows=info.chunk_rows,
        rows_folded=info.rows,
        prefix_chunks=tuple(info.chunk_hashes[:full]),
        prefix_tail=tail,
        payload=payload,
    )


def _prefix_valid(
    state: SectionState, database: EnvironmentalDatabase, info: DigestInfo
) -> bool:
    """Does the live store still start with exactly what ``state`` folded?

    Full chunks compare against the (cached) chunk digests; the
    sub-chunk remainder is rehashed — at most ``chunk_rows`` rows, so
    validation stays O(chunk) regardless of store size.
    """
    full = state.rows_folded // state.chunk_rows
    if tuple(info.chunk_hashes[:full]) != tuple(state.prefix_chunks):
        return False
    lo = full * state.chunk_rows
    if state.rows_folded == lo:
        return state.prefix_tail == ""
    try:
        return database.hash_row_range(lo, state.rows_folded) == state.prefix_tail
    except IndexError:
        return False


def advance_state(
    database: EnvironmentalDatabase,
    state_id: str,
    prior: Any,
    info: DigestInfo,
) -> Tuple[SectionState, str]:
    """Bring a reducer state up to the store's current content.

    Returns:
        ``(state, outcome)`` where outcome is ``"hit"`` (dataset
        unchanged, state reused as-is), ``"append"`` (only rows past
        the watermark were folded), ``"cold"`` (no usable prior
        state), or ``"invalidated"`` (a prior state existed but its
        prefix no longer matches the store — history was rewritten).
    """
    builder = STATE_BUILDERS[state_id]
    outcome = "cold"
    if (
        isinstance(prior, SectionState)
        and prior.state_id == state_id
        and prior.chunk_rows == info.chunk_rows
        and 0 <= prior.rows_folded <= info.rows
    ):
        if _prefix_valid(prior, database, info):
            if prior.rows_folded == info.rows:
                return prior, "hit"
            payload = builder.fold(
                prior.payload, database, prior.rows_folded, info.rows
            )
            return _sealed(state_id, payload, database, info), "append"
        outcome = "invalidated"
    elif prior is not None:
        outcome = "invalidated"
    payload = builder.fold(builder.empty(database), database, 0, info.rows)
    return _sealed(state_id, payload, database, info), outcome


# -- finalizers --------------------------------------------------------------


def _series(payload: Dict[str, np.ndarray], column: str) -> TimeSeries:
    index = SERIES_COLUMNS.index(column)
    return TimeSeries(
        payload["epoch_s"], payload["series"][:, index], name=column
    )


def _profile_mean(payload: Dict[str, np.ndarray], channel: Channel) -> np.ndarray:
    """Per-rack mean from the accumulator pairs (nanmean semantics)."""
    j = CHANNELS.index(channel)
    sums, counts = payload["sums"][j], payload["counts"][j]
    return np.divide(
        sums, counts, out=np.full_like(sums, np.nan), where=counts > 0
    )


def _finalize_fig2(payload: Dict[str, np.ndarray], result: Any) -> List[Any]:
    from repro.core import experiments

    trends = yearly_trends_from_series(
        _series(payload, "system_power_mw"),
        _series(payload, "system_utilization"),
    )
    return experiments.rows_from_yearly_trends(trends)


def _finalize_fig3(payload: Dict[str, np.ndarray], result: Any) -> List[Any]:
    from repro.core import experiments

    trends = coolant_trends_from_series(
        _series(payload, "total_flow_gpm"),
        _series(payload, Channel.INLET_TEMPERATURE.column),
        _series(payload, Channel.OUTLET_TEMPERATURE.column),
    )
    return experiments.rows_from_coolant_trends(trends)


def _calendar_inputs(
    payload: Dict[str, np.ndarray]
) -> Tuple[np.ndarray, Tuple[str, ...], np.ndarray]:
    # The reference path column-stacks five 1-D series into a fresh
    # C-contiguous matrix; mirror that exactly rather than handing the
    # reducers a strided view of the state matrix.
    names = SERIES_COLUMNS[:5]
    matrix = np.column_stack(
        [payload["series"][:, j] for j in range(5)]
    )
    return payload["epoch_s"], names, matrix


def _finalize_fig4(payload: Dict[str, np.ndarray], result: Any) -> List[Any]:
    from repro.core import experiments

    epoch, names, matrix = _calendar_inputs(payload)
    profiles = monthly_profiles_from_matrix(epoch, names, matrix)
    return experiments.rows_from_monthly_profiles(profiles)


def _finalize_fig5(payload: Dict[str, np.ndarray], result: Any) -> List[Any]:
    from repro.core import experiments

    epoch, names, matrix = _calendar_inputs(payload)
    profiles = weekday_profiles_from_matrix(epoch, names, matrix)
    return experiments.rows_from_weekday_profiles(profiles)


def _finalize_fig6(payload: Dict[str, np.ndarray], result: Any) -> List[Any]:
    from repro.core import experiments

    profile = RackPowerProfile(
        power_kw=_profile_mean(payload, Channel.POWER),
        utilization=_profile_mean(payload, Channel.UTILIZATION),
    )
    return experiments.rows_from_rack_power(profile)


def _finalize_fig7(payload: Dict[str, np.ndarray], result: Any) -> List[Any]:
    from repro.core import experiments

    profile = RackCoolantProfile(
        flow_gpm=_profile_mean(payload, Channel.FLOW),
        inlet_f=_profile_mean(payload, Channel.INLET_TEMPERATURE),
        outlet_f=_profile_mean(payload, Channel.OUTLET_TEMPERATURE),
    )
    return experiments.rows_from_rack_coolant(profile)


def _finalize_fig8(payload: Dict[str, np.ndarray], result: Any) -> List[Any]:
    from repro.core import experiments

    trends = ambient_trends_from_series(
        _series(payload, Channel.DC_TEMPERATURE.column),
        _series(payload, Channel.DC_HUMIDITY.column),
    )
    return experiments.rows_from_ambient_trends(trends)


def _finalize_fig9(payload: Dict[str, np.ndarray], result: Any) -> List[Any]:
    from repro.core import experiments

    spatial = AmbientSpatial(
        temperature_f=_profile_mean(payload, Channel.DC_TEMPERATURE),
        humidity_rh=_profile_mean(payload, Channel.DC_HUMIDITY),
    )
    return experiments.rows_from_ambient_spatial(spatial)


@dataclasses.dataclass(frozen=True)
class IncrementalSection:
    """One section's incremental form: which state it folds, and how
    finished rows are produced from that state."""

    section_id: str
    state_id: str
    finalize: Callable[[Dict[str, np.ndarray], Any], List[Any]]


#: Sections with an append-only reducer, keyed by builder name.  The
#: remaining sections (CMF analyses, windows, aftermath) have no
#: incremental form and fall back to whole-section memoization.
INCREMENTAL_SECTIONS: Dict[str, IncrementalSection] = {
    spec.section_id: spec
    for spec in (
        IncrementalSection("fig2_rows", SYSTEM_SERIES_STATE, _finalize_fig2),
        IncrementalSection("fig3_rows", SYSTEM_SERIES_STATE, _finalize_fig3),
        IncrementalSection("fig4_rows", SYSTEM_SERIES_STATE, _finalize_fig4),
        IncrementalSection("fig5_rows", SYSTEM_SERIES_STATE, _finalize_fig5),
        IncrementalSection("fig6_rows", RACK_PROFILE_STATE, _finalize_fig6),
        IncrementalSection("fig7_rows", RACK_PROFILE_STATE, _finalize_fig7),
        IncrementalSection("fig8_rows", SYSTEM_SERIES_STATE, _finalize_fig8),
        IncrementalSection("fig9_rows", RACK_PROFILE_STATE, _finalize_fig9),
    )
}

#: Sections whose rows depend only on the simulation config (RAS log,
#: schedule), not on the telemetry matrices: they memoize under a
#: config-only root so a telemetry append does not evict them.
TELEMETRY_INDEPENDENT_SECTIONS = frozenset({"fig14_15_rows"})
