"""The on-disk section memo store.

Caches finished report-section rows and incremental reducer states
under the existing ``~/.cache/repro`` layout (``sections/`` subtree),
keyed by ``(root_digest, section_id, config_digest, code_epoch)``:

* ``root_digest`` — the dataset's chunked content address
  (:meth:`~repro.telemetry.database.EnvironmentalDatabase.dataset_digest`),
  so any value *or quality* change misses;
* ``section_id`` — the section builder's name (``fig2_rows`` ...);
* ``config_digest`` — sha256 of the ``SimulationConfig`` repr, so any
  report-relevant config change misses (worker counts and other
  runtime knobs are not part of the config and correctly hit);
* ``code_epoch`` — the package version, so a release never serves
  rows computed by older analysis code.

Durability follows the PR 7 dataset-manifest idiom: every file is a
sha256-prefixed pickle written to a temp name and published with
``os.replace``; a load that fails verification quarantines the file
aside (``.quarantine-*``) and reports a miss, so corruption costs a
recompute, never a silently wrong report.  Set
``REPRO_SECTION_CACHE=0`` to disable the layer entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro import __version__

#: Environment variable: set to ``0`` to disable the section memo store.
SECTION_CACHE_ENV = "REPRO_SECTION_CACHE"

#: File magic; bump to orphan every existing entry on a format change.
_MAGIC = b"repro-section-memo-v1"

#: Sentinel root for sections whose inputs carry no telemetry at all
#: (e.g. the RAS-log-only aftermath section): their rows survive an
#: append untouched, so keying them by the dataset digest would force
#: a pointless recompute on every new row.
CONFIG_ONLY_ROOT = "config-only"


def config_digest(config: Any) -> str:
    """Cache-key digest of a simulation configuration.

    ``SimulationConfig`` is a frozen dataclass of plain values, so its
    ``repr`` is a complete, stable description of the run (the same
    idiom as the dataset cache).  The package version is *not* mixed
    in here — ``code_epoch`` is its own key component.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class SectionKey:
    """The full cache key of one memoized section."""

    root_digest: str
    section_id: str
    config_digest: str
    code_epoch: str

    @property
    def scope(self) -> str:
        """Digest of the dataset-independent key half.

        Entries sharing a scope describe the same config and code but
        (possibly) different dataset contents — exactly the siblings
        that go stale when the dataset advances.
        """
        payload = f"{self.config_digest}\n{self.code_epoch}"
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    @property
    def digest(self) -> str:
        payload = "\n".join(
            (self.root_digest, self.section_id, self.config_digest, self.code_epoch)
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    @property
    def filename(self) -> str:
        return f"{self.section_id}-{self.scope}-{self.digest}.rows.pkl"


@dataclasses.dataclass
class SectionCacheCounters:
    """Hit/miss/invalidation observability for ``--stats``/``/metrics``."""

    #: Finished-row entries served from disk.
    hits: int = 0
    #: Row lookups that found nothing usable.
    misses: int = 0
    #: Row entries written.
    stores: int = 0
    #: Reducer states reused as-is (dataset unchanged).
    state_hits: int = 0
    #: Reducer states advanced by folding only appended rows.
    state_appends: int = 0
    #: Reducer states built from scratch (no prior state).
    state_misses: int = 0
    #: Stored entries rejected: stale prefix, key mismatch, or corrupt.
    invalidations: int = 0
    #: Files that failed sha256/unpickle verification and were quarantined.
    corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class SectionCacheEntry:
    """One on-disk memo entry (for ``repro cache info``)."""

    path: Path
    section: str
    kind: str  # "rows" or "state"
    key_digest: str
    size_bytes: int
    age_s: float


class SectionMemoStore:
    """Atomic, verified, quarantining disk cache for report sections.

    Args:
        root: Directory for the entries.  Defaults to
            ``<dataset cache root>/sections`` — resolved lazily, so a
            later ``REPRO_CACHE_DIR`` change is honored.
        enabled: Force the store on/off; defaults to the
            ``REPRO_SECTION_CACHE`` environment gate (lazy as well).
        code_epoch: Key component tying entries to the analysis code;
            defaults to the package version.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        enabled: Optional[bool] = None,
        code_epoch: Optional[str] = None,
    ) -> None:
        self._root_override = Path(root) if root is not None else None
        self._enabled_override = enabled
        self.code_epoch = code_epoch if code_epoch is not None else __version__
        self.counters = SectionCacheCounters()

    @property
    def root(self) -> Path:
        if self._root_override is not None:
            return self._root_override
        from repro.simulation.datasets import cache_root

        return cache_root() / "sections"

    @property
    def enabled(self) -> bool:
        if self._enabled_override is not None:
            return self._enabled_override
        return os.environ.get(SECTION_CACHE_ENV, "1") != "0"

    # -- keys -----------------------------------------------------------------

    def key(
        self, root_digest: str, section_id: str, config_digest: str
    ) -> SectionKey:
        return SectionKey(
            root_digest=root_digest,
            section_id=section_id,
            config_digest=config_digest,
            code_epoch=self.code_epoch,
        )

    # -- verified file I/O ----------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Move a failed-verification file aside (best effort)."""
        target = path.parent / f".quarantine-{path.name}-{os.getpid()}"
        try:
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.counters.corrupt += 1

    def _read(self, path: Path) -> Optional[Dict[str, Any]]:
        """Load and verify one entry; quarantine and miss on any defect."""
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            magic, digest_hex, payload = raw.split(b"\n", 2)
            if magic != _MAGIC:
                raise ValueError("bad magic")
            if hashlib.sha256(payload).hexdigest() != digest_hex.decode("ascii"):
                raise ValueError("payload digest mismatch")
            record = pickle.loads(payload)
            if not isinstance(record, dict):
                raise ValueError("unexpected record type")
            return record
        except Exception:
            self._quarantine(path)
            return None

    def _write(self, path: Path, record: Dict[str, Any]) -> bool:
        """Atomically publish one entry (best effort; False on failure)."""
        payload = pickle.dumps(record, protocol=4)
        blob = b"\n".join(
            (_MAGIC, hashlib.sha256(payload).hexdigest().encode("ascii"), payload)
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                return False
        except OSError:
            return False
        return True

    # -- finished-row entries -------------------------------------------------

    def load_rows(self, key: SectionKey) -> Optional[List[Any]]:
        """The cached rows for ``key``, or ``None`` on a miss."""
        if not self.enabled:
            return None
        record = self._read(self.root / key.filename)
        if record is None:
            self.counters.misses += 1
            return None
        if record.get("kind") != "rows" or record.get("key") != dataclasses.asdict(key):
            # A filename collision or a foreign entry: never serve it.
            self.counters.invalidations += 1
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        return record["rows"]

    def store_rows(self, key: SectionKey, rows: List[Any]) -> None:
        """Publish rows for ``key`` and prune same-scope stale roots.

        An append-only dataset leaves a trail of entries for superseded
        roots; keeping only the newest per ``(section, config, code)``
        scope bounds the cache instead of growing it per append.
        """
        if not self.enabled:
            return
        record = {"kind": "rows", "key": dataclasses.asdict(key), "rows": rows}
        if self._write(self.root / key.filename, record):
            self.counters.stores += 1
            self._prune_siblings(key)

    def _prune_siblings(self, key: SectionKey) -> None:
        pattern = f"{key.section_id}-{key.scope}-*.rows.pkl"
        try:
            for path in self.root.glob(pattern):
                if path.name != key.filename:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        except OSError:
            pass

    # -- reducer-state entries ------------------------------------------------

    def _state_path(self, state_id: str, config_digest: str) -> Path:
        scope = self.key("", state_id, config_digest).scope
        return self.root / f"{state_id}-{scope}.state.pkl"

    def load_state(self, state_id: str, config_digest: str) -> Optional[Any]:
        """The cached reducer state blob, or ``None``.

        States are keyed by scope only (config + code epoch): unlike
        finished rows they are *designed* to be reused across dataset
        roots — validation against the current data happens via the
        state's own chunk-prefix watermark.
        """
        if not self.enabled:
            return None
        record = self._read(self._state_path(state_id, config_digest))
        if record is None:
            return None
        if (
            record.get("kind") != "state"
            or record.get("state_id") != state_id
            or record.get("config_digest") != config_digest
            or record.get("code_epoch") != self.code_epoch
        ):
            self.counters.invalidations += 1
            return None
        return record["state"]

    def store_state(self, state_id: str, config_digest: str, state: Any) -> None:
        if not self.enabled:
            return
        record = {
            "kind": "state",
            "state_id": state_id,
            "config_digest": config_digest,
            "code_epoch": self.code_epoch,
            "state": state,
        }
        self._write(self._state_path(state_id, config_digest), record)

    # -- maintenance ----------------------------------------------------------

    def entries(self) -> List[SectionCacheEntry]:
        """Describe every memo entry on disk, newest first."""
        root = self.root
        if not root.is_dir():
            return []
        now = time.time()
        found: List[SectionCacheEntry] = []
        for path in sorted(root.iterdir()):
            if path.name.startswith("."):
                continue
            if path.suffixes[-2:] == [".rows", ".pkl"]:
                kind = "rows"
            elif path.suffixes[-2:] == [".state", ".pkl"]:
                kind = "state"
            else:
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            stem = path.name[: -len(f".{kind}.pkl")]
            parts = stem.rsplit("-", 2 if kind == "rows" else 1)
            section = parts[0]
            key_digest = parts[-1] if len(parts) > 1 else ""
            found.append(
                SectionCacheEntry(
                    path=path,
                    section=section,
                    kind=kind,
                    key_digest=key_digest,
                    size_bytes=stat.st_size,
                    age_s=max(0.0, now - stat.st_mtime),
                )
            )
        found.sort(key=lambda e: e.age_s)
        return found

    def total_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.entries())

    def clear(self) -> int:
        """Remove every memo entry plus stale temp/quarantine files.

        Returns:
            The number of entries removed.
        """
        root = self.root
        if not root.is_dir():
            return 0
        removed = 0
        for path in root.iterdir():
            if not path.is_file():
                continue
            is_entry = not path.name.startswith(".") and path.suffix == ".pkl"
            stale = path.name.startswith((".tmp-", ".quarantine-"))
            if is_entry or stale:
                try:
                    path.unlink()
                    removed += int(is_entry)
                except OSError:
                    pass
        return removed


_DEFAULT_STORE: Optional[SectionMemoStore] = None


def default_store() -> SectionMemoStore:
    """The process-wide store (counters accumulate across reports)."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = SectionMemoStore()
    return _DEFAULT_STORE


def reset_default_store() -> None:
    """Forget the process-wide store (tests re-point the cache root)."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = None
