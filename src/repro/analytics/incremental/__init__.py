"""Content-addressed section memoization and append-only recompute.

Two cooperating pieces:

* :mod:`~repro.analytics.incremental.memo` — the on-disk section memo
  store, keyed by ``(root_digest, section_id, config_digest,
  code_epoch)`` with atomic writes, verified loads, and
  quarantine-on-corruption;
* :mod:`~repro.analytics.incremental.sections` — append-only reducers
  for the pure time-fold sections, pinned bit-identical (exact
  discrete values, <= 1e-12 floats) to the from-scratch builders.

:func:`repro.core.experiments.full_report` wires both into its section
fan-out: finished rows are served from the memo before any worker task
is dispatched, incremental sections fold only rows past their cached
watermark, and everything else falls back to whole-section
memoization.  Disable with ``REPRO_SECTION_CACHE=0`` or
``full_report(..., section_cache=False)``.
"""

from repro.analytics.incremental.memo import (
    CONFIG_ONLY_ROOT,
    SECTION_CACHE_ENV,
    SectionCacheCounters,
    SectionCacheEntry,
    SectionKey,
    SectionMemoStore,
    config_digest,
    default_store,
    reset_default_store,
)
from repro.analytics.incremental.sections import (
    INCREMENTAL_SECTIONS,
    RACK_PROFILE_STATE,
    SERIES_COLUMNS,
    STATE_BUILDERS,
    SYSTEM_SERIES_STATE,
    TELEMETRY_INDEPENDENT_SECTIONS,
    IncrementalSection,
    SectionState,
    advance_state,
)

__all__ = [
    "CONFIG_ONLY_ROOT",
    "SECTION_CACHE_ENV",
    "SectionCacheCounters",
    "SectionCacheEntry",
    "SectionKey",
    "SectionMemoStore",
    "config_digest",
    "default_store",
    "reset_default_store",
    "INCREMENTAL_SECTIONS",
    "RACK_PROFILE_STATE",
    "SERIES_COLUMNS",
    "STATE_BUILDERS",
    "SYSTEM_SERIES_STATE",
    "TELEMETRY_INDEPENDENT_SECTIONS",
    "IncrementalSection",
    "SectionState",
    "advance_state",
]
