"""Analytics infrastructure layered on top of the core analyses.

:mod:`repro.analytics.incremental` is the first member: a
content-addressed section memo store plus append-only reducers that
let :func:`repro.core.experiments.full_report` skip or fold work when
the underlying telemetry has not changed (or has only grown).
"""
