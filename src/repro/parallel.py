"""Process-pool parallelism with deterministic seeding.

The predictor pipeline (and, over time, the other analysis suites)
fans its outer loops — cross-validation folds, Bayesian-optimization
trials, the Fig 13 lead sweep — out over a :class:`ProcessPoolExecutor`.
This module centralizes the three things every call site needs:

* **one worker-count rule** (:func:`resolve_workers`): an explicit
  argument wins verbatim (so determinism tests can oversubscribe a
  small machine), otherwise the ``REPRO_WORKERS`` environment variable,
  otherwise all cores; the env/auto paths are capped at
  ``os.cpu_count()`` and everything is capped at the task count;
* **deterministic per-task randomness** (:func:`spawn_seeds` /
  :func:`task_rngs`): ``SeedSequence.spawn`` children derived from one
  master seed, so a task's stream depends only on its index — never on
  which worker ran it or in what order;
* **a chunked, order-preserving map** (:func:`pmap`) with a serial
  fallback at ``workers=1`` and first-error propagation, so results
  are bit-identical between the serial and parallel paths.

Workers are separate processes (``fork`` where available), so mapped
functions and their payloads must be picklable: module-level functions
and plain data, not closures.

The map is hardened against the two ways a pool dies in practice:

* a **killed worker** (OOM killer, SIGKILL, segfault) breaks the whole
  ``ProcessPoolExecutor``; :func:`pmap` harvests the chunks that
  completed, resubmits the rest to a fresh pool up to
  ``pool_retries`` times, and past that budget finishes the remaining
  chunks in-process — the caller sees complete, in-order results (or
  the task's own first exception, which still propagates);
* a **wedged task**: pass ``timeout_s`` (a per-task deadline) and the
  gather raises :class:`TimeoutError` instead of hanging forever,
  after abandoning the pool without waiting on the stuck worker.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(
    workers: Optional[int] = None, max_tasks: Optional[int] = None
) -> int:
    """The shared worker-count rule for every parallel entry point.

    Args:
        workers: Explicit request; honored verbatim (even above the
            core count, which the determinism tests rely on).
        max_tasks: Number of tasks available; the result never exceeds
            it (no point spawning idle workers).

    Returns:
        The number of workers to use, always >= 1.

    Raises:
        ValueError: on a non-positive request or a malformed
            ``REPRO_WORKERS`` value.
    """
    cores = os.cpu_count() or 1
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None
            if workers < 1:
                raise ValueError(f"{WORKERS_ENV} must be >= 1, got {workers}")
            workers = min(workers, cores)
        else:
            workers = cores
    else:
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
    if max_tasks is not None:
        workers = min(workers, max(1, int(max_tasks)))
    return workers


def require_generator(rng: np.random.Generator) -> np.random.Generator:
    """Insist on an explicit ``numpy`` Generator.

    The parallel pipeline reseeds per task; accepting ints or legacy
    ``RandomState`` objects would let a call site silently draw from a
    different stream than the serial path, which is exactly the
    divergence the explicit-Generator rule exists to prevent.

    Raises:
        TypeError: if ``rng`` is not a ``np.random.Generator``.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError(
            "rng must be a numpy Generator (e.g. np.random.default_rng(seed)); "
            f"got {type(rng).__name__}"
        )
    return rng


def spawn_seeds(seed: int, count: int) -> List[np.random.SeedSequence]:
    """``count`` independent child seed sequences from one master seed.

    Task ``i`` always receives the same child regardless of worker
    count or completion order, which is what keeps ``workers=1`` and
    ``workers=N`` runs bit-identical.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return list(np.random.SeedSequence(seed).spawn(count))


def task_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Per-task generators over :func:`spawn_seeds` children."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """Prefer ``fork`` (cheap, inherits the parent image) where offered."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _run_chunk(fn: Callable[[_T], _R], chunk: Sequence[_T]) -> List[_R]:
    """One dispatched unit of work: a contiguous slice of the items."""
    return [fn(item) for item in chunk]


def pmap(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    timeout_s: Optional[float] = None,
    pool_retries: int = 2,
) -> List[_R]:
    """Map ``fn`` over ``items`` on a process pool, preserving order.

    Falls back to a plain in-process loop when the resolved worker
    count is 1 (or there is at most one item), so the serial path runs
    exactly the same code on exactly the same inputs.  The first
    exception raised by any task propagates to the caller and cancels
    the pool.

    Killed workers don't lose the batch: when the pool breaks (a
    worker was OOM-killed or segfaulted), completed chunks are
    harvested, the unfinished ones are resubmitted to a fresh pool up
    to ``pool_retries`` times, and past that budget they finish
    in-process — a lone bad worker degrades throughput, not
    correctness.  Note a chunk whose worker died mid-task is *re-run*
    on retry; tasks should be idempotent (every mapped task in this
    codebase is a pure function).

    Args:
        fn: A picklable (module-level) single-argument callable.
        items: Task payloads; must be picklable for ``workers > 1``.
        workers: See :func:`resolve_workers`.
        chunksize: Tasks per worker dispatch; defaults to roughly four
            dispatches per worker to amortize IPC on long task lists.
        timeout_s: Per-task deadline, seconds.  Waiting on a dispatched
            chunk is bounded by ``timeout_s * len(chunk)``; on expiry
            the pool is abandoned (without waiting on the stuck
            worker) and :class:`TimeoutError` is raised.  ``None``
            (the default) waits forever, and the serial path never
            times out.
        pool_retries: Fresh-pool resubmissions allowed after broken
            pools before falling back to in-process execution.

    Returns:
        ``[fn(item) for item in items]``, in input order.

    Raises:
        TimeoutError: when ``timeout_s`` expires for any chunk.
    """
    items = list(items)
    count = resolve_workers(workers, max_tasks=len(items))
    if count <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if pool_retries < 0:
        raise ValueError(f"pool_retries cannot be negative, got {pool_retries}")
    if chunksize is None:
        chunksize = max(1, len(items) // (count * 4))
    chunks = [items[i : i + chunksize] for i in range(0, len(items), chunksize)]
    results: List[Optional[List[_R]]] = [None] * len(chunks)
    pending = list(range(len(chunks)))
    broken_pools = 0
    while pending:
        pool = ProcessPoolExecutor(
            max_workers=min(count, len(pending)), mp_context=_fork_context()
        )
        futures = {
            index: pool.submit(_run_chunk, fn, chunks[index]) for index in pending
        }
        broken = False
        try:
            for index in list(pending):
                future = futures[index]
                deadline = (
                    None if timeout_s is None else timeout_s * len(chunks[index])
                )
                try:
                    results[index] = future.result(timeout=deadline)
                except BrokenProcessPool:
                    broken = True
                    break
                except _FuturesTimeout:
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise TimeoutError(
                        f"parallel chunk of {len(chunks[index])} task(s) "
                        f"exceeded its deadline ({timeout_s:g}s per task)"
                    ) from None
                pending.remove(index)
        finally:
            # A broken pool cannot be waited on; otherwise let queued
            # work cancel and running work finish.
            pool.shutdown(wait=not broken, cancel_futures=True)
        if not broken:
            break
        # Harvest whatever finished before the crash, then retry the rest.
        for index in list(pending):
            future = futures[index]
            if not future.done():
                continue
            exc = future.exception()
            if exc is None:
                results[index] = future.result()
                pending.remove(index)
            elif not isinstance(exc, BrokenProcessPool):
                raise exc  # the task's own failure still propagates
        broken_pools += 1
        if broken_pools > pool_retries and pending:
            for index in pending:
                results[index] = _run_chunk(fn, chunks[index])
            pending = []
    return [value for chunk_results in results for value in chunk_results]


def pstarmap(
    fn: Callable[..., _R],
    items: Iterable[Sequence[Any]],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    timeout_s: Optional[float] = None,
    pool_retries: int = 2,
) -> List[_R]:
    """:func:`pmap` for multi-argument callables (payloads are tuples)."""
    return pmap(
        _StarCall(fn),
        [tuple(item) for item in items],
        workers,
        chunksize,
        timeout_s=timeout_s,
        pool_retries=pool_retries,
    )


class _StarCall:
    """Picklable ``lambda args: fn(*args)``."""

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    def __call__(self, args: Sequence[Any]) -> Any:
        return self.fn(*args)
