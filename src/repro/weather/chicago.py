"""A synthetic Chicago climate model.

The cooling plant's waterside economizer and the data-center ambient
humidity both depend on outdoor conditions, so the simulator needs a
weather source.  Real Mira operations used real Chicago weather; we
substitute a seasonal + diurnal + autocorrelated-noise model calibrated
to Chicago normals:

* daily-mean temperature swings from about 24 F (late January) to about
  75 F (late July),
* a diurnal cycle of roughly +-8 F around the daily mean,
* outdoor relative humidity is *higher in summer in absolute moisture
  terms* — what matters for the data-center model is the absolute
  moisture content of the intake air, which peaks in summer (the
  paper's stated reason DC humidity is summer-high: "the outdoor
  humidity of Chicago ... is lower in winter months due to the dryer
  air"),
* weather fronts are modelled as an AR(1) process with a ~3-day
  correlation time.

The model is deterministic given its seed; the same timestamps always
produce the same weather.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple, Union

import numpy as np

from repro import timeutil


@dataclasses.dataclass(frozen=True)
class WeatherSample:
    """Outdoor conditions at one instant."""

    temperature_f: float
    relative_humidity: float


class ChicagoWeather:
    """Deterministic synthetic Chicago weather.

    Args:
        seed: Seed for the front-noise process.  Two instances with the
            same seed produce identical weather for the same
            timestamps, regardless of query order or granularity —
            the noise is a fixed Fourier-basis random field rather than
            a sequentially-generated series.
    """

    #: Annual-mean daily temperature, F.
    MEAN_TEMP_F = 50.0

    #: Half the summer-winter swing of the daily mean, F.
    SEASONAL_AMPLITUDE_F = 26.0

    #: Day of year at which the seasonal cycle peaks (late July).
    PEAK_DAY_OF_YEAR = 205

    #: Diurnal half-swing, F.
    DIURNAL_AMPLITUDE_F = 8.0

    #: Hour of day of the diurnal peak.
    PEAK_HOUR = 15

    #: Mean outdoor relative humidity, %.
    MEAN_RH = 68.0

    #: Seasonal half-swing of the moisture-driven RH proxy, %.
    SEASONAL_RH_AMPLITUDE = 11.0

    #: Number of random Fourier components in the front-noise field.
    _NOISE_COMPONENTS = 96

    #: Standard deviation of front noise, F.
    FRONT_NOISE_STD_F = 7.0

    def __init__(self, seed: int = 2014) -> None:
        rng = np.random.default_rng(seed)
        # Random Fourier field: sum of sinusoids with periods from ~1.5
        # days to ~60 days gives weather-front-like autocorrelation while
        # remaining a pure function of the timestamp.
        periods_days = np.exp(
            rng.uniform(np.log(1.5), np.log(60.0), size=self._NOISE_COMPONENTS)
        )
        self._omegas = 2.0 * np.pi / (periods_days * timeutil.DAY_S)
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=self._NOISE_COMPONENTS)
        amplitudes = rng.standard_normal(self._NOISE_COMPONENTS)
        # Normalize so the field has the requested standard deviation.
        amplitudes *= self.FRONT_NOISE_STD_F / np.sqrt(0.5 * np.sum(amplitudes**2))
        self._amplitudes = amplitudes

    # -- internals -----------------------------------------------------------

    def _front_noise(self, epoch_s: np.ndarray) -> np.ndarray:
        t = np.asarray(epoch_s, dtype="float64")[..., None]
        return np.sum(
            self._amplitudes * np.sin(self._omegas * t + self._phases), axis=-1
        )

    def _seasonal_phase(self, epoch_s: np.ndarray) -> np.ndarray:
        doy = timeutil.days_of_year(epoch_s)
        return np.cos(2.0 * np.pi * (doy - self.PEAK_DAY_OF_YEAR) / 365.25)

    # -- public API ----------------------------------------------------------

    def temperature_f(self, epoch_s: Union[np.ndarray, float]) -> np.ndarray:
        """Outdoor dry-bulb temperature (F) at the given timestamps."""
        epoch = np.asarray(epoch_s, dtype="float64")
        return self._temperature_from_noise(epoch, self._front_noise(epoch))

    def _temperature_from_noise(
        self, epoch: np.ndarray, front_noise: np.ndarray
    ) -> np.ndarray:
        seasonal = self.MEAN_TEMP_F + self.SEASONAL_AMPLITUDE_F * self._seasonal_phase(
            epoch
        )
        hours = (epoch % timeutil.DAY_S) / timeutil.HOUR_S
        diurnal = self.DIURNAL_AMPLITUDE_F * np.cos(
            2.0 * np.pi * (hours - self.PEAK_HOUR) / 24.0
        )
        return seasonal + diurnal + front_noise

    def relative_humidity(self, epoch_s: Union[np.ndarray, float]) -> np.ndarray:
        """Outdoor moisture proxy as relative humidity (%).

        Peaks in summer (moist Gulf air) and bottoms out in winter (dry
        continental air), with front noise anti-correlated with the
        temperature noise (cold fronts are dry).
        """
        epoch = np.asarray(epoch_s, dtype="float64")
        return self._humidity_from_noise(epoch, self._front_noise(epoch))

    def _humidity_from_noise(
        self, epoch: np.ndarray, front_noise: np.ndarray
    ) -> np.ndarray:
        seasonal = self.MEAN_RH + self.SEASONAL_RH_AMPLITUDE * self._seasonal_phase(
            epoch
        )
        return np.clip(seasonal - 0.30 * front_noise, 15.0, 100.0)

    def conditions(
        self, epoch_s: Union[np.ndarray, float]
    ) -> "Tuple[np.ndarray, np.ndarray]":
        """Temperature (F) and relative humidity (%) in one pass.

        Evaluating both channels together shares the random-Fourier
        front-noise field (the expensive part: ``_NOISE_COMPONENTS``
        sinusoids per timestamp), halving the cost of whole-grid
        weather tables in the simulation engine.
        """
        epoch = np.asarray(epoch_s, dtype="float64")
        front = self._front_noise(epoch)
        return (
            self._temperature_from_noise(epoch, front),
            self._humidity_from_noise(epoch, front),
        )

    def sample(self, epoch_s: float) -> WeatherSample:
        """Scalar convenience sampler."""
        return WeatherSample(
            temperature_f=float(self.temperature_f(epoch_s)),
            relative_humidity=float(self.relative_humidity(epoch_s)),
        )

    def free_cooling_available(
        self, epoch_s: Union[np.ndarray, float], threshold_f: float = 42.0
    ) -> np.ndarray:
        """Whether outdoor conditions permit waterside free cooling.

        The economizer can displace the chillers when the outdoor
        wet-bulb (approximated here by dry-bulb) temperature is below
        the loop approach threshold.  In Chicago this holds through
        most of December-March, matching the plant design described in
        Section II.
        """
        return np.asarray(self.temperature_f(epoch_s)) <= threshold_f
