"""Synthetic outdoor weather for the facility's Chicago location."""

from repro.weather.chicago import ChicagoWeather, WeatherSample

__all__ = ["ChicagoWeather", "WeatherSample"]
