"""Facts and calibration targets from the paper.

Every number the paper states about Mira, its cooling plant, or its
measured behaviour is recorded here so that the simulator, the analyses,
and the benchmarks all calibrate against a single source of truth.

The constants are grouped as:

* **Machine facts** (Section II): topology counts, clock rates, power
  plant sizing.
* **Operational facts** (Sections III-V): flow rates, temperature
  setpoints, measured standard deviations and spreads.
* **Failure facts** (Section VI): CMF counts, per-rack extremes,
  correlation coefficients, predictor performance curve.

Nothing in this module is tunable; tunable knobs live in
:mod:`repro.simulation.config`.
"""

from __future__ import annotations

import datetime as _dt

# ---------------------------------------------------------------------------
# Machine facts (Section II)
# ---------------------------------------------------------------------------

#: Number of rack rows on the Mira floor.
NUM_ROWS = 3

#: Compute racks per row.
RACKS_PER_ROW = 16

#: Total compute racks (3 rows x 16 racks).
NUM_RACKS = NUM_ROWS * RACKS_PER_ROW

#: Midplanes per rack.
MIDPLANES_PER_RACK = 2

#: Node boards per midplane.
NODE_BOARDS_PER_MIDPLANE = 16

#: Compute cards (nodes) per node board.
NODES_PER_BOARD = 32

#: Nodes per rack (2 midplanes x 16 boards x 32 cards).
NODES_PER_RACK = MIDPLANES_PER_RACK * NODE_BOARDS_PER_MIDPLANE * NODES_PER_BOARD

#: Total compute nodes in Mira.
TOTAL_NODES = NUM_RACKS * NODES_PER_RACK

#: Cores per PowerPC A2 processor usable for computation.
COMPUTE_CORES_PER_NODE = 16

#: Total active compute cores (786,432).
TOTAL_COMPUTE_CORES = TOTAL_NODES * COMPUTE_CORES_PER_NODE

#: Processor clock in MHz.
CPU_CLOCK_MHZ = 1600

#: Memory per node in GB (DDR3).
MEMORY_PER_NODE_GB = 16

#: Peak performance in PFlops.
PEAK_PFLOPS = 10.0

#: ION (I/O forwarding node) racks per row; these are air-cooled.
ION_RACKS_PER_ROW = 2

#: Machine floor area in square feet.
FLOOR_AREA_SQFT = 1632

#: Maximum supported facility power draw in MW.
MAX_POWER_MW = 6.0

#: Typical average facility load in MW.
AVG_POWER_MW = 4.0

#: Bulk power module line cords per rack (480 V three-phase, 60 A).
BPM_LINE_CORDS_PER_RACK = 4

#: Substation voltage feeding the BPM distribution, in kV.
SUBSTATION_KV = 13.2

#: Production period covered by the study (inclusive start, exclusive end).
PRODUCTION_START = _dt.datetime(2014, 1, 1)
PRODUCTION_END = _dt.datetime(2020, 1, 1)

#: Coolant monitor sampling period in seconds.
MONITOR_SAMPLE_PERIOD_S = 300

# ---------------------------------------------------------------------------
# Cooling plant facts (Section II)
# ---------------------------------------------------------------------------

#: Chiller tower capacity at the Chilled Water Plant, in tons, each.
CHILLER_TONS = 1500

#: Number of chiller towers built for Mira.
NUM_CHILLERS = 2

#: Daily energy saved if free cooling covers 100% of CWP capacity (kWh).
FREE_COOLING_KWH_PER_DAY = 17_820

#: Seasonal energy saving from free cooling over Dec-Mar (kWh).
FREE_COOLING_KWH_PER_SEASON = 2_174_040

#: Months in which the waterside economizer can fully displace the
#: chillers in Chicago (December through March).
FREE_COOLING_MONTHS = (12, 1, 2, 3)

# ---------------------------------------------------------------------------
# Operational calibration targets (Sections III-V)
# ---------------------------------------------------------------------------

#: System power at the beginning of 2014, MW (Fig 2a).
POWER_2014_MW = 2.5

#: System power near the end of 2019, MW (Fig 2a).
POWER_2019_MW = 2.9

#: System utilization at the beginning of 2014 (fraction; Fig 2b).
UTILIZATION_2014 = 0.80

#: System utilization near the end of 2019 (fraction; Fig 2b).
UTILIZATION_2019 = 0.93

#: Total coolant flow before the Theta addition, GPM (Fig 3a).
FLOW_PRE_THETA_GPM = 1250.0

#: Total coolant flow after the Theta addition, GPM (Fig 3a).
FLOW_POST_THETA_GPM = 1300.0

#: Date at which Theta joined Mira's water loop and the flow was raised.
THETA_ADDITION_DATE = _dt.datetime(2016, 7, 1)

#: Date by which Theta's early-testing heat load subsided (early 2017);
#: between THETA_ADDITION_DATE and this date the inlet/outlet coolant
#: temperatures ran high (Fig 3b/3c).
THETA_SETTLED_DATE = _dt.datetime(2017, 2, 1)

#: Long-run inlet coolant temperature, degrees F (Fig 3b).
INLET_TEMP_F = 64.0

#: Long-run outlet coolant temperature, degrees F (Fig 3c).
OUTLET_TEMP_F = 79.0

#: Reported overall standard deviations (Fig 3 caption).
FLOW_STD_GPM = 41.0
INLET_TEMP_STD_F = 0.61
OUTLET_TEMP_STD_F = 0.71

#: Monthly change of flow/inlet/outlet relative to January (< 1.5 %;
#: Fig 4 caption).
MONTHLY_COOLANT_MAX_CHANGE = 0.015

#: Non-Monday increases relative to Monday (Fig 5 caption).
NON_MONDAY_POWER_INCREASE = 0.06
NON_MONDAY_UTILIZATION_INCREASE = 0.015
NON_MONDAY_OUTLET_INCREASE = 0.02

#: Day of week on which maintenance happens (Monday == 0).
MAINTENANCE_WEEKDAY = 0

#: Maintenance window: starts 9 AM, lasts 6-10 hours.
MAINTENANCE_START_HOUR = 9
MAINTENANCE_MIN_HOURS = 6
MAINTENANCE_MAX_HOURS = 10

#: Rack-level spreads, max relative to min (Sections IV-V).
RACK_POWER_SPREAD = 0.15        # up to 15 % (Fig 6a)
RACK_FLOW_SPREAD = 0.11         # up to 11 % (Fig 7a)
RACK_INLET_SPREAD = 0.01        # ~1 % (Fig 7b)
RACK_OUTLET_SPREAD = 0.03       # ~3 % (Fig 7c)
RACK_DC_TEMP_SPREAD = 0.11      # up to 11 % (Fig 9a)
RACK_DC_HUMIDITY_SPREAD = 0.36  # up to 36 % (Fig 9b)

#: Pearson correlation between rack power and rack utilization (Sec IV-A).
POWER_UTILIZATION_CORRELATION = 0.45

#: Rack with the highest average power consumption (Fig 6a).
HIGHEST_POWER_RACK = (0, 0xD)

#: Rack with the highest average utilization (Fig 6b).
HIGHEST_UTILIZATION_RACK = (0, 0xA)

#: Row with the highest utilization (prod-long queue row).
PROD_LONG_ROW = 0

#: Ambient data-center temperature range over the six years, F (Fig 8a).
DC_TEMP_MIN_F = 76.0
DC_TEMP_MAX_F = 90.0

#: Ambient data-center relative-humidity range, %RH (Fig 8b).
DC_HUMIDITY_MIN_RH = 28.0
DC_HUMIDITY_MAX_RH = 37.0

#: Reported overall standard deviations (Fig 8 caption).
DC_TEMP_STD_F = 2.48
DC_HUMIDITY_STD_RH = 3.66

#: The localized humidity hotspot rack in the center of row 1 (Sec V).
HUMIDITY_HOTSPOT_RACK = (1, 0x8)

# ---------------------------------------------------------------------------
# Failure calibration targets (Section VI)
# ---------------------------------------------------------------------------

#: Total coolant monitor failures over the six years (Fig 10).
TOTAL_CMFS = 361

#: Fraction of all CMFs that occurred in 2016 (Theta integration).
CMF_2016_FRACTION = 0.40

#: The quiet period with no CMFs (over two years, 2017 to late 2018).
CMF_QUIET_START = _dt.datetime(2016, 11, 1)
CMF_QUIET_END = _dt.datetime(2018, 11, 1)

#: Rack with the most CMFs and its count (Fig 11).
MOST_CMF_RACK = (1, 0x8)
MOST_CMF_COUNT = 14

#: Rack with the fewest CMFs and its count (Fig 11).
FEWEST_CMF_RACK = (2, 0x7)
FEWEST_CMF_COUNT = 5

#: No rack other than MOST_CMF_RACK exceeds this many CMFs (Fig 11).
OTHER_RACK_MAX_CMFS = 9

#: Correlation of per-rack CMF count with rack metrics (Sec VI-A).
CMF_UTILIZATION_CORRELATION = -0.21
CMF_OUTLET_TEMP_CORRELATION = -0.06
CMF_HUMIDITY_CORRELATION = 0.06

#: Per-rack dedup window after a CMF: the rack is down and further CMF
#: messages on it within this window are the same failure (Sec VI).
CMF_DEDUP_WINDOW_S = 6 * 3600

#: Dedup window for non-CMF failures (rack back up in ~1 hour).
NONCMF_DEDUP_WINDOW_S = 3600

#: RAS storms can log upwards of this many raw messages (Sec VI).
STORM_MESSAGE_SCALE = 10_000

#: Lead-up signature (Fig 12): relative changes in coolant temperatures
#: before a CMF.
LEADUP_INLET_DROP = 0.07        # inlet drops by up to 7 %, ~4 h before
LEADUP_INLET_DROP_HOURS = 4.0
LEADUP_INLET_RISE = 0.08        # then rises by up to 8 %, 30 min before
LEADUP_OUTLET_DROP = 0.05       # outlet drops by 5 %, ~3 h before
LEADUP_OUTLET_DROP_HOURS = 3.0
LEADUP_FLOW_COLLAPSE_HOURS = 0.5  # flow stable until ~30 min before

#: Predictor performance (Fig 13): accuracy at 6 h and at 30 min lead.
PREDICTOR_ACCURACY_6H = 0.87
PREDICTOR_ACCURACY_30MIN = 0.97

#: Predictor false-positive rates (Sec VI-B).
PREDICTOR_FPR_6H = 0.06
PREDICTOR_FPR_30MIN = 0.012

#: The Bayesian-optimized network architecture (hidden layer sizes).
PREDICTOR_HIDDEN_LAYERS = (12, 12, 6)

#: Training epochs used by the paper.
PREDICTOR_EPOCHS = 50

#: Train : test : validation split ratio.
PREDICTOR_SPLIT = (3, 1, 1)

#: Cross-validation folds.
PREDICTOR_CV_FOLDS = 5

#: Post-CMF non-CMF failure rates relative to the 3 h rate (Fig 14a):
#: the rate within 6 h is < 75 % of the 3 h rate; at 48 h it is 10 %.
AFTERMATH_RATE_6H = 0.75
AFTERMATH_RATE_48H = 0.10

#: Post-CMF failure type distribution (Fig 14b).  "AC to DC Power" is
#: half of all non-CMF failures after a CMF; process failures are rare.
AFTERMATH_TYPE_DISTRIBUTION = {
    "ac_dc_power": 0.50,
    "bqc": 0.17,
    "bql": 0.15,
    "card": 0.08,
    "software": 0.08,
    "process": 0.02,
}

#: Hours after a CMF within which non-CMF failure risk is elevated.
AFTERMATH_WINDOW_HOURS = 48

#: Racks through which clock signals are distributed: every rack receives
#: its clock through rack (1, 4); rack (0, 9) additionally receives its
#: clock through rack (0, A) (Sec VI-A examples).
GLOBAL_CLOCK_RACK = (1, 0x4)
CLOCK_CHAINS = {(0, 0x9): (0, 0xA)}
