"""CMF analysis: the dedup methodology and Figs 10-11.

The raw RAS log contains storms of thousands of coolant-monitor
messages per incident.  The paper's methodology (Section VI):

* only *fatal* coolant-monitor events count,
* on a given rack, all CMF messages within **six hours** of the first
  are the same failure (the rack is down for up to six hours),
* the window applies **per rack**, not system-wide — if eight racks
  storm together, that is eight failures (capturing how many racks an
  incident took down),
* non-CMF failures deduplicate with a **one hour** window (racks
  return in about an hour).

:func:`deduplicate_cmf_events` implements that rule;
:func:`analyze_cmfs` layers the Fig 10/11 statistics on top.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants, timeutil
from repro.core.correlation import pearson
from repro.facility.topology import RackId
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.ras import RasEvent, RasLog, Severity
from repro.telemetry.records import Channel


@dataclasses.dataclass(frozen=True)
class DeduplicatedFailures:
    """The recovered failure events after windowed per-rack dedup."""

    events: Tuple[RasEvent, ...]
    window_s: float
    raw_count: int

    @property
    def count(self) -> int:
        return len(self.events)

    def rack_counts(self) -> np.ndarray:
        """Per-rack failure counts, flat-index order (Fig 11)."""
        counts = np.zeros(constants.NUM_RACKS, dtype=int)
        for event in self.events:
            counts[event.rack_id.flat_index] += 1
        return counts

    def yearly_counts(self) -> Dict[int, int]:
        """Failures per calendar year (Fig 10)."""
        out: Dict[int, int] = {}
        for event in self.events:
            year = int(timeutil.years(event.epoch_s))
            out[year] = out.get(year, 0) + 1
        return out

    def times(self) -> np.ndarray:
        return np.array([e.epoch_s for e in self.events])


def _windowed_dedup(
    events: Sequence[RasEvent], window_s: float
) -> DeduplicatedFailures:
    last_seen: Dict[RackId, float] = {}
    kept: List[RasEvent] = []
    for event in sorted(events):
        previous = last_seen.get(event.rack_id)
        if previous is None or event.epoch_s - previous >= window_s:
            kept.append(event)
            last_seen[event.rack_id] = event.epoch_s
    return DeduplicatedFailures(
        events=tuple(kept), window_s=window_s, raw_count=len(events)
    )


def deduplicate_cmf_events(
    ras_log: RasLog, window_s: float = float(constants.CMF_DEDUP_WINDOW_S)
) -> DeduplicatedFailures:
    """Recover true CMF events from the raw storm-y RAS log."""
    return _windowed_dedup(ras_log.fatal_cmf_events(), window_s)


def deduplicate_noncmf_events(
    ras_log: RasLog, window_s: float = float(constants.NONCMF_DEDUP_WINDOW_S)
) -> DeduplicatedFailures:
    """Recover true non-CMF fatal events (1 h per-rack window)."""
    return _windowed_dedup(ras_log.fatal_noncmf_events(), window_s)


@dataclasses.dataclass(frozen=True)
class CmfAnalysis:
    """Figs 10-11: the full CMF characterization."""

    failures: DeduplicatedFailures
    yearly: Dict[int, int]
    rack_counts: np.ndarray
    utilization_correlation: float
    outlet_correlation: float
    humidity_correlation: float
    longest_quiet_gap_days: float

    @property
    def total(self) -> int:
        """Paper: 361 over the six years."""
        return self.failures.count

    @property
    def fraction_2016(self) -> float:
        """Paper: ~40 % of all CMFs landed in 2016."""
        return self.yearly.get(2016, 0) / max(1, self.total)

    @property
    def most_failing_rack(self) -> RackId:
        """Paper: rack (1, 8) with 14 events."""
        return RackId.from_flat_index(int(np.argmax(self.rack_counts)))

    @property
    def least_failing_rack(self) -> RackId:
        """Paper: rack (2, 7) with 5 events."""
        return RackId.from_flat_index(int(np.argmin(self.rack_counts)))

    @property
    def max_rack_count(self) -> int:
        return int(self.rack_counts.max())

    @property
    def min_rack_count(self) -> int:
        return int(self.rack_counts.min())

    @property
    def second_max_rack_count(self) -> int:
        """Paper: no rack other than (1, 8) exceeds nine events."""
        return int(np.sort(self.rack_counts)[-2])

    def is_bathtub(self, edge_fraction: float = 0.25) -> bool:
        """Whether failures concentrate at the period's edges.

        A bathtub hazard puts most failures in the first and last
        quarters of life.  The paper's finding is that CMFs do *not*
        follow a bathtub (the mass sits in 2016, mid-life).
        """
        times = self.failures.times()
        if times.size == 0:
            return False
        lo, hi = times.min(), times.max()
        span = hi - lo
        if span <= 0:
            return False
        early = np.sum(times < lo + edge_fraction * span)
        late = np.sum(times > hi - edge_fraction * span)
        return (early + late) / times.size > 0.7


def analyze_cmfs(
    ras_log: RasLog,
    database: Optional[EnvironmentalDatabase] = None,
) -> CmfAnalysis:
    """Run the full Fig 10/11 characterization.

    Args:
        ras_log: The raw RAS log (storms included).
        database: Optional telemetry for the rack-metric correlations;
            without it the correlations are reported as NaN.
    """
    failures = deduplicate_cmf_events(ras_log)
    rack_counts = failures.rack_counts()

    if database is not None and failures.count > 0:
        utilization = database.channel(Channel.UTILIZATION).per_rack_mean()
        outlet = database.channel(Channel.OUTLET_TEMPERATURE).per_rack_mean()
        humidity = database.channel(Channel.DC_HUMIDITY).per_rack_mean()
        util_corr = pearson(rack_counts, utilization)
        outlet_corr = pearson(rack_counts, outlet)
        humidity_corr = pearson(rack_counts, humidity)
    else:
        util_corr = outlet_corr = humidity_corr = float("nan")

    times = failures.times()
    if times.size >= 2:
        quiet_days = float(np.max(np.diff(times)) / timeutil.DAY_S)
    else:
        quiet_days = 0.0

    return CmfAnalysis(
        failures=failures,
        yearly=failures.yearly_counts(),
        rack_counts=rack_counts,
        utilization_correlation=util_corr,
        outlet_correlation=outlet_corr,
        humidity_correlation=humidity_corr,
        longest_quiet_gap_days=quiet_days,
    )
