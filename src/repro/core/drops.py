"""Transient utilization drops: the Section III-A characterization.

The paper: "drop in utilization occurs frequently at both longer and
smaller time period for various reasons" — reserved-but-unused racks,
failures, and draining for near-full-machine jobs — and those drops
drag power with them.  This module detects the drops from the
telemetry alone (as the paper's authors had to) and characterizes
their depth, duration, and coincidence with known causes.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import timeutil
from repro.simulation.engine import SimulationResult
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.series import TimeSeries


@dataclasses.dataclass(frozen=True)
class UtilizationDrop:
    """One detected transient drop."""

    start_epoch_s: float
    end_epoch_s: float
    depth: float
    baseline: float

    @property
    def duration_h(self) -> float:
        return (self.end_epoch_s - self.start_epoch_s) / timeutil.HOUR_S

    @property
    def relative_depth(self) -> float:
        return self.depth / self.baseline if self.baseline > 0 else 0.0

    def contains(self, epoch_s: float) -> bool:
        return self.start_epoch_s <= epoch_s < self.end_epoch_s


@dataclasses.dataclass(frozen=True)
class DropAnalysis:
    """All detected drops plus summary statistics."""

    drops: Tuple[UtilizationDrop, ...]
    observation_days: float
    #: Pearson correlation between the utilization and power series —
    #: the paper's point that utilization swings drag power along.
    power_utilization_tracking: float

    @property
    def drops_per_week(self) -> float:
        weeks = self.observation_days / 7.0
        return len(self.drops) / weeks if weeks > 0 else 0.0

    @property
    def median_duration_h(self) -> float:
        if not self.drops:
            return 0.0
        return float(np.median([d.duration_h for d in self.drops]))

    @property
    def median_relative_depth(self) -> float:
        if not self.drops:
            return 0.0
        return float(np.median([d.relative_depth for d in self.drops]))

    def fraction_on_weekday(self, weekday: int) -> float:
        """Share of drops starting on a given weekday (0 = Monday)."""
        if not self.drops:
            return 0.0
        starts = np.array([d.start_epoch_s for d in self.drops])
        return float(np.mean(timeutil.weekdays(starts) == weekday))

    def fraction_near_failures(
        self, failure_epochs: Sequence[float], window_s: float = 6 * 3600.0
    ) -> float:
        """Share of drops within ``window_s`` of a known failure."""
        if not self.drops:
            return 0.0
        failures = np.asarray(list(failure_epochs))
        if failures.size == 0:
            return 0.0
        hits = 0
        for drop in self.drops:
            nearest = np.min(np.abs(failures - drop.start_epoch_s))
            hits += nearest <= window_s
        return hits / len(self.drops)


def detect_drops(
    utilization: TimeSeries,
    baseline_window: int = 24 * 7,
    threshold: float = 0.05,
    min_duration_s: float = 2 * 3600.0,
) -> List[UtilizationDrop]:
    """Detect transient drops against a rolling baseline.

    A drop is a maximal run of samples sitting more than ``threshold``
    (absolute utilization) below the centered rolling baseline, lasting
    at least ``min_duration_s``.

    Raises:
        ValueError: if the series is per-rack (reduce it first).
    """
    if utilization.is_per_rack:
        raise ValueError("detect_drops expects a system-level series")
    baseline = utilization.rolling_mean(baseline_window).values
    values = utilization.values
    epochs = utilization.epoch_s
    below = values < baseline - threshold
    drops: List[UtilizationDrop] = []
    start: Optional[int] = None
    for i, flag in enumerate(below):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            drops.append(_make_drop(epochs, values, baseline, start, i))
            start = None
    if start is not None:
        drops.append(_make_drop(epochs, values, baseline, start, len(values)))
    return [d for d in drops if d.end_epoch_s - d.start_epoch_s >= min_duration_s]


def _make_drop(
    epochs: np.ndarray,
    values: np.ndarray,
    baseline: np.ndarray,
    start: int,
    end: int,
) -> UtilizationDrop:
    segment_baseline = float(np.mean(baseline[start:end]))
    depth = float(np.max(baseline[start:end] - values[start:end]))
    end_epoch = epochs[end] if end < len(epochs) else epochs[-1] + (
        epochs[-1] - epochs[-2] if len(epochs) > 1 else 0.0
    )
    return UtilizationDrop(
        start_epoch_s=float(epochs[start]),
        end_epoch_s=float(end_epoch),
        depth=depth,
        baseline=segment_baseline,
    )


def analyze_drops(
    database: EnvironmentalDatabase,
    threshold: float = 0.05,
) -> DropAnalysis:
    """Run the Section III-A drop characterization on a database."""
    utilization = database.system_utilization()
    power = database.system_power_mw()
    drops = detect_drops(utilization, threshold=threshold)
    observation_days = (
        (utilization.epoch_s[-1] - utilization.epoch_s[0]) / timeutil.DAY_S
        if len(utilization) > 1
        else 0.0
    )
    from repro.core.correlation import pearson

    tracking = pearson(utilization.values, power.values)
    return DropAnalysis(
        drops=tuple(drops),
        observation_days=observation_days,
        power_utilization_tracking=tracking,
    )
