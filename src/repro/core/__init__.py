"""The paper's analyses: every figure of the evaluation, as code.

Each module maps to a slice of the paper:

* :mod:`repro.core.correlation` — Pearson/Spearman coefficients,
* :mod:`repro.core.trends` — Figs 2-5 (yearly, monthly, daily),
* :mod:`repro.core.spatial` — Figs 6-7 (rack-level power/utilization
  and coolant telemetry),
* :mod:`repro.core.environment` — Figs 8-9 (ambient temperature and
  humidity, temporal and spatial),
* :mod:`repro.core.failure_analysis` — Figs 10-11 (CMF dedup
  methodology, counts, per-rack distribution, correlations),
* :mod:`repro.core.leadup` — Fig 12 (pre-CMF telemetry signatures),
* :mod:`repro.core.prediction` — Fig 13 (the NN CMF predictor),
* :mod:`repro.core.aftermath` — Figs 14-15 (post-CMF failure rates,
  types, and spatial spread),
* :mod:`repro.core.report` — printable paper-vs-measured tables.
"""

from repro.core.correlation import pearson, spearman
from repro.core.trends import (
    CoolantTrends,
    MonthlyProfile,
    WeekdayProfile,
    YearlyTrends,
    coolant_trends,
    monthly_profile,
    weekday_profile,
    yearly_trends,
)
from repro.core.spatial import RackCoolantProfile, RackPowerProfile, rack_coolant_profile, rack_power_profile
from repro.core.environment import AmbientSpatial, AmbientTrends, ambient_spatial, ambient_trends
from repro.core.failure_analysis import (
    CmfAnalysis,
    DeduplicatedFailures,
    analyze_cmfs,
    deduplicate_cmf_events,
    deduplicate_noncmf_events,
)
from repro.core.leadup import LeadupAggregate, aggregate_leadup
from repro.core.prediction import (
    PredictorDataset,
    PredictorEvaluation,
    batch_change_features,
    batch_level_features,
    build_dataset,
    build_datasets,
    evaluate_at_leads,
    sweep_leads,
    tune_architecture,
)
from repro.core.aftermath import AftermathAnalysis, StormSpreadExample, analyze_aftermath
from repro.core.drops import DropAnalysis, UtilizationDrop, analyze_drops, detect_drops
from repro.core.floormap import render_counts, render_floor
from repro.core.hazard import BathtubVerdict, WeibullFit, bathtub_verdict, fit_weibull
from repro.core.validation import ValidationScorecard, validate_result

__all__ = [
    "pearson",
    "spearman",
    "CoolantTrends",
    "MonthlyProfile",
    "WeekdayProfile",
    "YearlyTrends",
    "coolant_trends",
    "monthly_profile",
    "weekday_profile",
    "yearly_trends",
    "RackCoolantProfile",
    "RackPowerProfile",
    "rack_coolant_profile",
    "rack_power_profile",
    "AmbientSpatial",
    "AmbientTrends",
    "ambient_spatial",
    "ambient_trends",
    "CmfAnalysis",
    "DeduplicatedFailures",
    "analyze_cmfs",
    "deduplicate_cmf_events",
    "deduplicate_noncmf_events",
    "LeadupAggregate",
    "aggregate_leadup",
    "PredictorDataset",
    "batch_change_features",
    "batch_level_features",
    "build_datasets",
    "sweep_leads",
    "PredictorEvaluation",
    "build_dataset",
    "evaluate_at_leads",
    "tune_architecture",
    "AftermathAnalysis",
    "StormSpreadExample",
    "analyze_aftermath",
    "DropAnalysis",
    "UtilizationDrop",
    "analyze_drops",
    "detect_drops",
    "render_counts",
    "render_floor",
    "BathtubVerdict",
    "WeibullFit",
    "bathtub_verdict",
    "fit_weibull",
    "ValidationScorecard",
    "validate_result",
]
