"""Correlation coefficients.

The paper quotes a correlation of 0.45 between rack power and rack
utilization (Section IV-A, citing the Spearman coefficient reference)
and near-zero correlations between per-rack CMF counts and rack
metrics (Section VI-A).  Both Pearson's r and Spearman's rho are
implemented; the analyses default to Pearson and report Spearman in
the ablation benches.
"""

from __future__ import annotations

import numpy as np


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson's product-moment correlation coefficient.

    Raises:
        ValueError: on length mismatch or fewer than two samples, or
            if either input is constant (undefined correlation).
    """
    a = np.asarray(x, dtype="float64").ravel()
    b = np.asarray(y, dtype="float64").ravel()
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("need at least two samples")
    a_std = a.std()
    b_std = b.std()
    if a_std == 0.0 or b_std == 0.0:
        raise ValueError("correlation undefined for constant input")
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (a_std * b_std))


def _ranks(values: np.ndarray) -> np.ndarray:
    """Fractional ranks (ties get the mean of their positions)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype="float64")
    ranks[order] = np.arange(1, len(values) + 1, dtype="float64")
    # Average ranks over tie groups.
    sorted_vals = values[order]
    i = 0
    while i < len(sorted_vals):
        j = i
        while j + 1 < len(sorted_vals) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            mean_rank = (i + j + 2) / 2.0
            ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman's rank correlation coefficient (tie-aware)."""
    a = np.asarray(x, dtype="float64").ravel()
    b = np.asarray(y, dtype="float64").ravel()
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    return pearson(_ranks(a), _ranks(b))
