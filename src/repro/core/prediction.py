"""The CMF predictor: Fig 13.

The paper's pipeline, end to end:

1. **Dataset**: for every CMF, the coolant-monitor metrics from the
   six hours before it (positive class); an equal number of samples
   drawn evenly across the production period with no CMF within the
   horizon (negative class).
2. **Features**: the *change* in each monitored metric (flow, outlet
   temperature, inlet temperature, power, DC temperature, DC
   humidity) over the past six hours, evaluated at the prediction
   time — Section VI-D stresses that changes, not levels, carry the
   signal.
3. **Model**: an MLP with hidden layers (12, 12, 6) — sized by
   Bayesian optimization — ReLU activations, a sigmoid output, 50
   training epochs.
4. **Evaluation**: accuracy/precision/recall/F1 (plus FPR) under
   5-fold cross-validation, swept over prediction leads from six
   hours down to 30 minutes before the failure.

Since model retraining is a recurring production workload in
operational-data-analytics deployments, the pipeline is built for
throughput: features for *all* windows and *all* leads come out of
one columnar interpolation pass (:func:`batch_change_features`), and
the outer loops — cross-validation folds, the lead sweep, the
Bayesian-optimization initial design — fan out over a process pool
via :mod:`repro.parallel`.  :func:`window_features` remains as the
per-window reference implementation; the batch path matches it to
float precision, and results are bit-identical between ``workers=1``
and ``workers>1`` because every task reseeds from the same constants.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants, timeutil
from repro.ml.bayesopt import BayesianOptimizer
from repro.ml.crossval import CrossValidationResult, stratified_k_fold
from repro.ml.metrics import BinaryClassificationReport, evaluate_binary
from repro.ml.network import NeuralNetwork
from repro.ml.train import TrainConfig, three_way_split, train_classifier
from repro.parallel import pmap
from repro.simulation.windows import LeadupWindow
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel

#: Lags (hours) over which per-channel changes are computed.
FEATURE_LAGS_H: Tuple[float, ...] = (6.0, 3.0, 1.0)

#: The prediction leads of Fig 13, hours before the CMF.
DEFAULT_LEADS_H: Tuple[float, ...] = (6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.5)


def window_features(window: LeadupWindow, lead_h: float) -> np.ndarray:
    """Change features for one window at one prediction lead.

    For each predictor channel and each lag in :data:`FEATURE_LAGS_H`,
    the relative change between the value at prediction time and the
    value ``lag`` earlier.

    This is the per-window reference implementation; the pipeline
    itself runs :func:`batch_change_features`, which computes the same
    features for every window and lead in one vectorized pass.

    Raises:
        ValueError: if the window is too short for the largest lag.
    """
    t_pred = window.end_epoch_s - lead_h * timeutil.HOUR_S
    earliest_needed = t_pred - max(FEATURE_LAGS_H) * timeutil.HOUR_S
    if earliest_needed < window.epoch_s[0] - 1e-6:
        raise ValueError(
            f"window too short: needs data at lead {lead_h} h plus "
            f"{max(FEATURE_LAGS_H)} h of lookback"
        )
    features: List[float] = []
    for channel in PREDICTOR_CHANNELS:
        now = window.value_at(channel, t_pred)
        for lag_h in FEATURE_LAGS_H:
            then = window.value_at(channel, t_pred - lag_h * timeutil.HOUR_S)
            denominator = abs(then) if abs(then) > 1e-9 else 1.0
            features.append((now - then) / denominator)
    return np.array(features)


def window_level_features(window: LeadupWindow, lead_h: float) -> np.ndarray:
    """Raw channel *levels* at the prediction time (ablation baseline).

    This is what conventional threshold-based monitoring sees; the
    Section VI-D ablation contrasts it with the change features.
    """
    t_pred = window.end_epoch_s - lead_h * timeutil.HOUR_S
    return np.array(
        [window.value_at(channel, t_pred) for channel in PREDICTOR_CHANNELS]
    )


# -- batched feature extraction ---------------------------------------------


@dataclasses.dataclass(frozen=True)
class WindowStack:
    """A columnar view over same-geometry lead-up windows.

    Attributes:
        values: ``(n_windows, n_channels, n_times)`` channel samples in
            :data:`PREDICTOR_CHANNELS` order.
        rel_s: ``(n_windows, n_times)`` sample times relative to each
            window's end (non-positive, ascending per row).
        end_epoch_s: ``(n_windows,)`` absolute window end times.
    """

    values: np.ndarray
    rel_s: np.ndarray
    end_epoch_s: np.ndarray


def stack_windows(windows: Sequence[LeadupWindow]) -> Optional[WindowStack]:
    """Build the columnar view, or ``None`` if geometries differ.

    All windows from one :class:`WindowSynthesizer` share the same
    sample count and (up to float rounding of the absolute epochs) the
    same relative grid; windows of differing shapes force the callers
    back onto the per-window path.
    """
    if not windows:
        return None
    n_t = windows[0].epoch_s.shape[0]
    n_w = len(windows)
    n_c = len(PREDICTOR_CHANNELS)
    values = np.empty((n_w, n_c, n_t), dtype="float64")
    rel = np.empty((n_w, n_t), dtype="float64")
    ends = np.empty(n_w, dtype="float64")
    ref = windows[0].epoch_s - windows[0].end_epoch_s
    for i, window in enumerate(windows):
        if window.epoch_s.shape[0] != n_t:
            return None
        ends[i] = window.end_epoch_s
        # Relative offsets are exact (Sterbenz subtraction), so the
        # batch interpolation reproduces the absolute-coordinate
        # per-window result to float precision.
        rel[i] = window.epoch_s - window.end_epoch_s
        if np.abs(rel[i] - ref).max() > 1e-3:
            return None
        for c, channel in enumerate(PREDICTOR_CHANNELS):
            values[i, c] = window.channels[channel]
    return WindowStack(values=values, rel_s=rel, end_epoch_s=ends)


def _batch_interp(stack: WindowStack, rel_q: np.ndarray) -> np.ndarray:
    """Linear interpolation of every channel at per-window offsets.

    One ``searchsorted`` over the shared grid geometry locates each
    query's bracket; a one-step per-window fix-up absorbs the sub-ulp
    differences between window grids so the bracket always contains
    the query, and exact grid hits return the stored sample verbatim
    (matching ``np.interp``, including through NaN-holed data).

    Args:
        stack: The columnar window view.
        rel_q: ``(n_windows, n_queries)`` query offsets relative to
            each window's end.

    Returns:
        ``(n_windows, n_channels, n_queries)`` interpolated values,
        clamped at the window edges like ``np.interp``.
    """
    values, rel = stack.values, stack.rel_s
    n_w, n_c, n_t = values.shape
    n_q = rel_q.shape[1]
    hi = np.clip(np.searchsorted(rel[0], rel_q[0], side="left"), 1, n_t - 1)
    hi = np.broadcast_to(hi, (n_w, n_q)).copy()
    rows = np.arange(n_w)[:, None]
    # Per-window bracket fix-up: grids differ only in the last float
    # bits, so at most one shift in either direction is ever needed.
    shift = (rel_q > rel[rows, hi]) & (hi < n_t - 1)
    hi[shift] += 1
    shift = (rel_q < rel[rows, hi - 1]) & (hi > 1)
    hi[shift] -= 1
    lo = hi - 1
    x0 = rel[rows, lo]
    x1 = rel[rows, hi]
    with np.errstate(invalid="ignore"):
        t = np.clip((rel_q - x0) / (x1 - x0), 0.0, 1.0)[:, None, :]
    cols = np.arange(n_c)[None, :, None]
    v0 = values[rows[:, :, None], cols, lo[:, None, :]]
    v1 = values[rows[:, :, None], cols, hi[:, None, :]]
    out = v0 + (v1 - v0) * t
    # Exact grid hits return the sample itself (np.interp semantics),
    # which matters both for bit-exactness and for NaN-holed windows
    # where the interpolation formula would smear the hole.
    out = np.where((rel_q == x0)[:, None, :], v0, out)
    out = np.where((rel_q == x1)[:, None, :], v1, out)
    return out


def _change_query_offsets(
    stack: WindowStack, leads_h: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-window relative offsets for the now/then change queries.

    Replicates the per-window arithmetic (``end - lead`` then
    ``- lag``) before re-basing to window-relative coordinates, so the
    batch path lands on the exact same float queries as
    :func:`window_features`.

    Returns:
        (now offsets ``(n_w, n_leads)``,
        then offsets ``(n_w, n_leads * n_lags)``).
    """
    ends = stack.end_epoch_s[:, None]
    leads = np.asarray(leads_h, dtype="float64")[None, :]
    t_pred = ends - leads * timeutil.HOUR_S
    lags = np.asarray(FEATURE_LAGS_H, dtype="float64")[None, None, :]
    t_then = t_pred[:, :, None] - lags * timeutil.HOUR_S
    earliest = t_pred - max(FEATURE_LAGS_H) * timeutil.HOUR_S
    starts = stack.rel_s[:, 0] + stack.end_epoch_s
    short = earliest < starts[:, None] - 1e-6
    if short.any():
        lead = float(leads.ravel()[int(np.argmax(short.any(axis=0)))])
        raise ValueError(
            f"window too short: needs data at lead {lead} h plus "
            f"{max(FEATURE_LAGS_H)} h of lookback"
        )
    ends3 = stack.end_epoch_s[:, None, None]
    return t_pred - stack.end_epoch_s[:, None], (t_then - ends3).reshape(
        len(stack.end_epoch_s), -1
    )


def batch_change_features(
    windows: Sequence[LeadupWindow], leads_h: Sequence[float]
) -> np.ndarray:
    """:func:`window_features` for every window and lead in one pass.

    Returns:
        ``(n_leads, n_windows, n_channels * n_lags)`` features, rows
        ordered like the input windows, columns channel-major then lag
        (identical to the per-window layout).

    Raises:
        ValueError: if any window is too short for the largest lag at
            any requested lead.
    """
    stack = stack_windows(windows)
    if stack is None:
        return np.stack(
            [[window_features(w, lead) for w in windows] for lead in leads_h]
        )
    n_w = len(windows)
    n_leads = len(leads_h)
    n_lags = len(FEATURE_LAGS_H)
    q_now, q_then = _change_query_offsets(stack, leads_h)
    merged = _batch_interp(stack, np.concatenate([q_now, q_then], axis=1))
    now = merged[:, :, :n_leads, None]
    then = merged[:, :, n_leads:].reshape(n_w, -1, n_leads, n_lags)
    with np.errstate(invalid="ignore"):
        magnitude = np.abs(then)
        denominator = np.where(magnitude > 1e-9, magnitude, 1.0)
        features = (now - then) / denominator
    # (n_w, n_c, n_leads, n_lags) -> (n_leads, n_w, n_c * n_lags)
    return np.transpose(features, (2, 0, 1, 3)).reshape(n_leads, n_w, -1)


def batch_level_features(
    windows: Sequence[LeadupWindow], leads_h: Sequence[float]
) -> np.ndarray:
    """:func:`window_level_features` for every window and lead.

    Returns:
        ``(n_leads, n_windows, n_channels)`` channel levels at each
        prediction time.
    """
    stack = stack_windows(windows)
    if stack is None:
        return np.stack(
            [
                [window_level_features(w, lead) for w in windows]
                for lead in leads_h
            ]
        )
    leads = np.asarray(leads_h, dtype="float64")[None, :]
    t_pred = stack.end_epoch_s[:, None] - leads * timeutil.HOUR_S
    levels = _batch_interp(stack, t_pred - stack.end_epoch_s[:, None])
    return np.transpose(levels, (2, 0, 1))


@dataclasses.dataclass(frozen=True)
class PredictorDataset:
    """A labeled feature matrix for one prediction lead."""

    lead_h: float
    features: np.ndarray
    labels: np.ndarray

    @property
    def positives(self) -> int:
        return int(self.labels.sum())

    @property
    def negatives(self) -> int:
        return int((1 - self.labels).sum())

    def finite_mask(self) -> np.ndarray:
        """Rows whose features are all finite (quality-usable samples).

        NaN-holed (faulted) windows flow through the batch extractor
        as NaN feature rows; this mask is how callers respect them.
        """
        return np.isfinite(self.features).all(axis=1)


def build_datasets(
    positive_windows: Sequence[LeadupWindow],
    negative_windows: Sequence[LeadupWindow],
    leads_h: Sequence[float],
    feature_fn: Callable[[LeadupWindow, float], np.ndarray] = window_features,
    drop_nonfinite: bool = False,
) -> List[PredictorDataset]:
    """Assemble the balanced datasets for every lead in one pass.

    The known feature functions (:func:`window_features`,
    :func:`window_level_features`) route through the batch extractor,
    so the window tensor is built and interpolated once for the whole
    lead sweep; any other callable falls back to per-window calls.

    Args:
        drop_nonfinite: Drop rows with non-finite features (NaN-holed
            faulted windows) instead of passing them to training.

    Raises:
        ValueError: if either class is empty, any window is too short,
            or dropping non-finite rows empties a class.
    """
    if not positive_windows or not negative_windows:
        raise ValueError("both classes need at least one window")
    windows = list(positive_windows) + list(negative_windows)
    labels = np.array(
        [1] * len(positive_windows) + [0] * len(negative_windows), dtype=int
    )
    if feature_fn is window_features:
        features = batch_change_features(windows, leads_h)
    elif feature_fn is window_level_features:
        features = batch_level_features(windows, leads_h)
    else:
        features = np.stack(
            [[feature_fn(w, lead) for w in windows] for lead in leads_h]
        )
    datasets = []
    for i, lead_h in enumerate(leads_h):
        x, y = features[i], labels
        if drop_nonfinite:
            keep = np.isfinite(x).all(axis=1)
            x, y = x[keep], y[keep]
            if y.sum() == 0 or (1 - y).sum() == 0:
                raise ValueError(
                    "dropping non-finite feature rows emptied a class; "
                    "too many faulted windows"
                )
        datasets.append(
            PredictorDataset(lead_h=float(lead_h), features=x, labels=y)
        )
    return datasets


def build_dataset(
    positive_windows: Sequence[LeadupWindow],
    negative_windows: Sequence[LeadupWindow],
    lead_h: float,
    feature_fn: Callable[[LeadupWindow, float], np.ndarray] = window_features,
    drop_nonfinite: bool = False,
) -> PredictorDataset:
    """Assemble the balanced dataset for one lead time.

    Raises:
        ValueError: if either class is empty.
    """
    return build_datasets(
        positive_windows,
        negative_windows,
        [lead_h],
        feature_fn=feature_fn,
        drop_nonfinite=drop_nonfinite,
    )[0]


@dataclasses.dataclass(frozen=True)
class PredictorEvaluation:
    """Fig 13 point: cross-validated metrics at one lead."""

    lead_h: float
    cross_validation: CrossValidationResult

    @property
    def report(self) -> BinaryClassificationReport:
        return self.cross_validation.summary()


def _nn_fit_predict(
    hidden: Sequence[int],
    epochs: int,
    seed: int,
) -> Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]:
    def fit_predict(
        x_train: np.ndarray, y_train: np.ndarray, x_test: np.ndarray
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        network = NeuralNetwork.mlp(x_train.shape[1], tuple(hidden), rng=rng)
        result = train_classifier(
            network,
            x_train,
            y_train,
            config=TrainConfig(epochs=epochs),
            rng=rng,
        )
        return result.predict(x_test)

    return fit_predict


def _fold_task(payload: tuple) -> BinaryClassificationReport:
    """Train and score one (lead, fold) cell — the pool work unit.

    The training RNG reseeds from the payload constants, so the report
    depends only on the payload, never on worker identity or order.
    """
    hidden, epochs, seed, x_train, y_train, x_test, y_test = payload
    predict = _nn_fit_predict(hidden, epochs, seed)
    return evaluate_binary(y_test, predict(x_train, y_train, x_test))


def sweep_leads(
    positive_windows: Sequence[LeadupWindow],
    negative_windows: Sequence[LeadupWindow],
    leads_h: Sequence[float] = DEFAULT_LEADS_H,
    hidden: Sequence[int] = constants.PREDICTOR_HIDDEN_LAYERS,
    epochs: int = constants.PREDICTOR_EPOCHS,
    folds: int = constants.PREDICTOR_CV_FOLDS,
    seed: int = 5,
    feature_fn: Callable[[LeadupWindow, float], np.ndarray] = window_features,
    workers: Optional[int] = None,
    drop_nonfinite: bool = False,
) -> List[PredictorEvaluation]:
    """Sweep prediction leads and cross-validate at each (Fig 13).

    Features for all leads come from one batch-extraction pass; the
    ``len(leads_h) * folds`` train/score cells then fan out over a
    process pool.  Fold assignment happens up front in the parent with
    an explicit per-lead generator, and each cell reseeds from
    ``seed``, so results are bit-identical for any worker count.

    Args:
        workers: Process-pool size (None = ``REPRO_WORKERS`` or all
            cores; 1 = serial in-process).
    """
    datasets = build_datasets(
        positive_windows,
        negative_windows,
        leads_h,
        feature_fn=feature_fn,
        drop_nonfinite=drop_nonfinite,
    )
    hidden = tuple(int(h) for h in hidden)
    tasks = []
    fold_counts = []
    for dataset in datasets:
        assignments = stratified_k_fold(
            dataset.labels, folds, np.random.default_rng(seed)
        )
        fold_counts.append(len(assignments))
        x = np.asarray(dataset.features, dtype="float64")
        y = dataset.labels
        for train_idx, test_idx in assignments:
            tasks.append(
                (hidden, epochs, seed, x[train_idx], y[train_idx],
                 x[test_idx], y[test_idx])
            )
    reports = pmap(_fold_task, tasks, workers=workers)
    evaluations = []
    offset = 0
    for dataset, count in zip(datasets, fold_counts):
        evaluations.append(
            PredictorEvaluation(
                lead_h=dataset.lead_h,
                cross_validation=CrossValidationResult(
                    fold_reports=tuple(reports[offset : offset + count])
                ),
            )
        )
        offset += count
    return evaluations


def evaluate_at_leads(
    positive_windows: Sequence[LeadupWindow],
    negative_windows: Sequence[LeadupWindow],
    leads_h: Sequence[float] = DEFAULT_LEADS_H,
    hidden: Sequence[int] = constants.PREDICTOR_HIDDEN_LAYERS,
    epochs: int = constants.PREDICTOR_EPOCHS,
    folds: int = constants.PREDICTOR_CV_FOLDS,
    seed: int = 5,
    feature_fn: Callable[[LeadupWindow, float], np.ndarray] = window_features,
    workers: Optional[int] = None,
) -> List[PredictorEvaluation]:
    """Historical name for :func:`sweep_leads` (kept for API stability)."""
    return sweep_leads(
        positive_windows,
        negative_windows,
        leads_h=leads_h,
        hidden=hidden,
        epochs=epochs,
        folds=folds,
        seed=seed,
        feature_fn=feature_fn,
        workers=workers,
    )


def default_architecture_grid() -> List[Tuple[int, int, int]]:
    """The layer-size search space for Bayesian optimization."""
    sizes = (4, 6, 8, 12, 16, 24)
    return [
        (a, b, c)
        for a in sizes
        for b in sizes
        for c in (4, 6, 8, 12)
        if a >= b >= c
    ]


def _trial_task(payload: tuple) -> float:
    """Train one architecture candidate and return validation accuracy."""
    candidate, epochs, seed, x_train, y_train, x_val, y_val = payload
    hidden = tuple(int(h) for h in candidate)
    rng = np.random.default_rng(seed)
    network = NeuralNetwork.mlp(x_train.shape[1], hidden, rng=rng)
    result = train_classifier(
        network,
        x_train,
        y_train,
        config=TrainConfig(epochs=epochs),
        rng=rng,
    )
    return evaluate_binary(y_val, result.predict(x_val)).accuracy


def tune_architecture(
    dataset: PredictorDataset,
    candidates: Optional[Sequence[Tuple[int, ...]]] = None,
    budget: int = 10,
    epochs: int = constants.PREDICTOR_EPOCHS,
    seed: int = 5,
    workers: Optional[int] = None,
) -> Tuple[Tuple[int, ...], float]:
    """Bayesian-optimize the hidden-layer sizes (Section VI-B).

    The objective is validation accuracy under the paper's 3:1:1
    split.  The optimizer's initial random design — the only batch of
    trials that is independent by construction — is evaluated on the
    process pool; the sequential expected-improvement phase stays in
    the parent.  Scores depend only on the candidate and ``seed``, so
    the search trajectory is identical for any worker count.

    Returns:
        (best hidden-layer sizes, best validation accuracy).
    """
    grid = list(candidates) if candidates is not None else default_architecture_grid()
    rng = np.random.default_rng(seed)
    (x_train, y_train), _, (x_val, y_val) = three_way_split(
        dataset.features, dataset.labels, rng, ratio=constants.PREDICTOR_SPLIT
    )

    def payload(candidate: Tuple[float, ...]) -> tuple:
        return (candidate, epochs, seed, x_train, y_train, x_val, y_val)

    def objective(candidate: Tuple[float, ...]) -> float:
        return _trial_task(payload(candidate))

    def evaluate_batch(batch: Sequence[Tuple[float, ...]]) -> List[float]:
        return pmap(_trial_task, [payload(c) for c in batch], workers=workers)

    optimizer = BayesianOptimizer(grid, rng=rng)
    best, _ = optimizer.maximize(
        objective, budget=budget, evaluate_batch=evaluate_batch
    )
    return tuple(int(h) for h in best.candidate), best.score
