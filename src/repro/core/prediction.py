"""The CMF predictor: Fig 13.

The paper's pipeline, end to end:

1. **Dataset**: for every CMF, the coolant-monitor metrics from the
   six hours before it (positive class); an equal number of samples
   drawn evenly across the production period with no CMF within the
   horizon (negative class).
2. **Features**: the *change* in each monitored metric (flow, outlet
   temperature, inlet temperature, power, DC temperature, DC
   humidity) over the past six hours, evaluated at the prediction
   time — Section VI-D stresses that changes, not levels, carry the
   signal.
3. **Model**: an MLP with hidden layers (12, 12, 6) — sized by
   Bayesian optimization — ReLU activations, a sigmoid output, 50
   training epochs.
4. **Evaluation**: accuracy/precision/recall/F1 (plus FPR) under
   5-fold cross-validation, swept over prediction leads from six
   hours down to 30 minutes before the failure.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants, timeutil
from repro.ml.bayesopt import BayesianOptimizer
from repro.ml.crossval import CrossValidationResult, cross_validate
from repro.ml.metrics import BinaryClassificationReport, evaluate_binary
from repro.ml.network import NeuralNetwork
from repro.ml.train import TrainConfig, three_way_split, train_classifier
from repro.simulation.windows import LeadupWindow
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel

#: Lags (hours) over which per-channel changes are computed.
FEATURE_LAGS_H: Tuple[float, ...] = (6.0, 3.0, 1.0)

#: The prediction leads of Fig 13, hours before the CMF.
DEFAULT_LEADS_H: Tuple[float, ...] = (6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.5)


def window_features(window: LeadupWindow, lead_h: float) -> np.ndarray:
    """Change features for one window at one prediction lead.

    For each predictor channel and each lag in :data:`FEATURE_LAGS_H`,
    the relative change between the value at prediction time and the
    value ``lag`` earlier.

    Raises:
        ValueError: if the window is too short for the largest lag.
    """
    t_pred = window.end_epoch_s - lead_h * timeutil.HOUR_S
    earliest_needed = t_pred - max(FEATURE_LAGS_H) * timeutil.HOUR_S
    if earliest_needed < window.epoch_s[0] - 1e-6:
        raise ValueError(
            f"window too short: needs data at lead {lead_h} h plus "
            f"{max(FEATURE_LAGS_H)} h of lookback"
        )
    features: List[float] = []
    for channel in PREDICTOR_CHANNELS:
        now = window.value_at(channel, t_pred)
        for lag_h in FEATURE_LAGS_H:
            then = window.value_at(channel, t_pred - lag_h * timeutil.HOUR_S)
            denominator = abs(then) if abs(then) > 1e-9 else 1.0
            features.append((now - then) / denominator)
    return np.array(features)


def window_level_features(window: LeadupWindow, lead_h: float) -> np.ndarray:
    """Raw channel *levels* at the prediction time (ablation baseline).

    This is what conventional threshold-based monitoring sees; the
    Section VI-D ablation contrasts it with the change features.
    """
    t_pred = window.end_epoch_s - lead_h * timeutil.HOUR_S
    return np.array(
        [window.value_at(channel, t_pred) for channel in PREDICTOR_CHANNELS]
    )


@dataclasses.dataclass(frozen=True)
class PredictorDataset:
    """A labeled feature matrix for one prediction lead."""

    lead_h: float
    features: np.ndarray
    labels: np.ndarray

    @property
    def positives(self) -> int:
        return int(self.labels.sum())

    @property
    def negatives(self) -> int:
        return int((1 - self.labels).sum())


def build_dataset(
    positive_windows: Sequence[LeadupWindow],
    negative_windows: Sequence[LeadupWindow],
    lead_h: float,
    feature_fn: Callable[[LeadupWindow, float], np.ndarray] = window_features,
) -> PredictorDataset:
    """Assemble the balanced dataset for one lead time.

    Raises:
        ValueError: if either class is empty.
    """
    if not positive_windows or not negative_windows:
        raise ValueError("both classes need at least one window")
    rows = []
    labels = []
    for window in positive_windows:
        rows.append(feature_fn(window, lead_h))
        labels.append(1)
    for window in negative_windows:
        rows.append(feature_fn(window, lead_h))
        labels.append(0)
    return PredictorDataset(
        lead_h=lead_h,
        features=np.vstack(rows),
        labels=np.array(labels, dtype=int),
    )


@dataclasses.dataclass(frozen=True)
class PredictorEvaluation:
    """Fig 13 point: cross-validated metrics at one lead."""

    lead_h: float
    cross_validation: CrossValidationResult

    @property
    def report(self) -> BinaryClassificationReport:
        return self.cross_validation.summary()


def _nn_fit_predict(
    hidden: Sequence[int],
    epochs: int,
    seed: int,
) -> Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]:
    def fit_predict(
        x_train: np.ndarray, y_train: np.ndarray, x_test: np.ndarray
    ) -> np.ndarray:
        rng = np.random.default_rng(seed)
        network = NeuralNetwork.mlp(x_train.shape[1], tuple(hidden), rng=rng)
        result = train_classifier(
            network,
            x_train,
            y_train,
            config=TrainConfig(epochs=epochs),
            rng=rng,
        )
        return result.predict(x_test)

    return fit_predict


def evaluate_at_leads(
    positive_windows: Sequence[LeadupWindow],
    negative_windows: Sequence[LeadupWindow],
    leads_h: Sequence[float] = DEFAULT_LEADS_H,
    hidden: Sequence[int] = constants.PREDICTOR_HIDDEN_LAYERS,
    epochs: int = constants.PREDICTOR_EPOCHS,
    folds: int = constants.PREDICTOR_CV_FOLDS,
    seed: int = 5,
    feature_fn: Callable[[LeadupWindow, float], np.ndarray] = window_features,
) -> List[PredictorEvaluation]:
    """Sweep prediction leads and cross-validate at each (Fig 13)."""
    evaluations = []
    for lead_h in leads_h:
        dataset = build_dataset(
            positive_windows, negative_windows, lead_h, feature_fn=feature_fn
        )
        cv = cross_validate(
            _nn_fit_predict(hidden, epochs, seed),
            dataset.features,
            dataset.labels,
            k=folds,
            rng=np.random.default_rng(seed),
        )
        evaluations.append(PredictorEvaluation(lead_h=lead_h, cross_validation=cv))
    return evaluations


def default_architecture_grid() -> List[Tuple[int, int, int]]:
    """The layer-size search space for Bayesian optimization."""
    sizes = (4, 6, 8, 12, 16, 24)
    return [
        (a, b, c)
        for a in sizes
        for b in sizes
        for c in (4, 6, 8, 12)
        if a >= b >= c
    ]


def tune_architecture(
    dataset: PredictorDataset,
    candidates: Optional[Sequence[Tuple[int, ...]]] = None,
    budget: int = 10,
    epochs: int = constants.PREDICTOR_EPOCHS,
    seed: int = 5,
) -> Tuple[Tuple[int, ...], float]:
    """Bayesian-optimize the hidden-layer sizes (Section VI-B).

    The objective is validation accuracy under the paper's 3:1:1
    split.

    Returns:
        (best hidden-layer sizes, best validation accuracy).
    """
    grid = list(candidates) if candidates is not None else default_architecture_grid()
    rng = np.random.default_rng(seed)
    (x_train, y_train), _, (x_val, y_val) = three_way_split(
        dataset.features, dataset.labels, rng, ratio=constants.PREDICTOR_SPLIT
    )

    def objective(candidate: Tuple[float, ...]) -> float:
        hidden = tuple(int(h) for h in candidate)
        net_rng = np.random.default_rng(seed)
        network = NeuralNetwork.mlp(x_train.shape[1], hidden, rng=net_rng)
        result = train_classifier(
            network,
            x_train,
            y_train,
            config=TrainConfig(epochs=epochs),
            rng=net_rng,
        )
        predictions = result.predict(x_val)
        return evaluate_binary(y_val, predictions).accuracy

    optimizer = BayesianOptimizer(grid, rng=rng)
    best, _ = optimizer.maximize(objective, budget=budget)
    return tuple(int(h) for h in best.candidate), best.score
