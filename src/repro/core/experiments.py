"""The full experiment index: every figure's paper-vs-measured record.

:func:`full_report` runs every analysis in the package against a
simulation result and returns the complete list of
:class:`~repro.core.report.ReportRow` comparisons, grouped by figure.
``EXPERIMENTS.md`` is generated from this module (see
:func:`render_markdown`), and the figure benchmarks assert subsets of
the same rows — one source of truth for what "reproduced" means.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import constants
from repro.core.aftermath import analyze_aftermath
from repro.core.environment import ambient_spatial, ambient_trends
from repro.core.failure_analysis import analyze_cmfs
from repro.core.leadup import aggregate_leadup
from repro.core.prediction import evaluate_at_leads
from repro.core.report import ReportRow, format_value
from repro.core.spatial import rack_coolant_profile, rack_power_profile
from repro.core.trends import (
    coolant_trends,
    monthly_profiles,
    weekday_profiles,
    yearly_trends,
)
from repro.parallel import pstarmap, resolve_workers
from repro.simulation.engine import SimulationResult
from repro.simulation.windows import LeadupWindow, WindowSynthesizer
from repro.telemetry.records import Channel


def rows_from_yearly_trends(trends) -> List[ReportRow]:
    """Fig 2 rows from finished statistics (shared with the
    incremental reducer, so both paths assemble identical rows)."""
    return [
        ReportRow("Fig 2a", "system power at start of 2014",
                  constants.POWER_2014_MW, trends.power_start_mw, "MW"),
        ReportRow("Fig 2a", "system power at end of 2019",
                  constants.POWER_2019_MW, trends.power_end_mw, "MW"),
        ReportRow("Fig 2b", "utilization at start of 2014",
                  constants.UTILIZATION_2014, trends.utilization_start),
        ReportRow("Fig 2b", "utilization at end of 2019",
                  constants.UTILIZATION_2019, trends.utilization_end),
    ]


def fig2_rows(result: SimulationResult) -> List[ReportRow]:
    return rows_from_yearly_trends(yearly_trends(result.database))


def rows_from_coolant_trends(trends) -> List[ReportRow]:
    return [
        ReportRow("Fig 3a", "total flow before Theta",
                  constants.FLOW_PRE_THETA_GPM, trends.flow_pre_theta_gpm, "GPM"),
        ReportRow("Fig 3a", "total flow after Theta",
                  constants.FLOW_POST_THETA_GPM, trends.flow_post_theta_gpm, "GPM"),
        ReportRow("Fig 3a", "flow overall std",
                  constants.FLOW_STD_GPM, trends.flow_std_gpm, "GPM"),
        ReportRow("Fig 3b", "inlet coolant mean",
                  constants.INLET_TEMP_F, trends.inlet_mean_f, "F"),
        ReportRow("Fig 3b", "inlet overall std",
                  constants.INLET_TEMP_STD_F, trends.inlet_std_f, "F"),
        ReportRow("Fig 3c", "outlet coolant mean",
                  constants.OUTLET_TEMP_F, trends.outlet_mean_f, "F"),
        ReportRow("Fig 3c", "outlet overall std",
                  constants.OUTLET_TEMP_STD_F, trends.outlet_std_f, "F"),
    ]


def fig3_rows(result: SimulationResult) -> List[ReportRow]:
    return rows_from_coolant_trends(coolant_trends(result.database))


def rows_from_monthly_profiles(profiles) -> List[ReportRow]:
    power, util, flow, inlet, outlet = profiles
    return [
        ReportRow("Fig 4a", "power H2/H1 median ratio", 1.04,
                  power.second_half_ratio),
        ReportRow("Fig 4b", "utilization H2/H1 median ratio", 1.02,
                  util.second_half_ratio),
        ReportRow("Fig 4c", "flow max monthly change vs January",
                  constants.MONTHLY_COOLANT_MAX_CHANGE,
                  flow.max_change_from_january),
        ReportRow("Fig 4d", "inlet max monthly change vs January",
                  constants.MONTHLY_COOLANT_MAX_CHANGE,
                  inlet.max_change_from_january),
        ReportRow("Fig 4e", "outlet max monthly change vs January",
                  constants.MONTHLY_COOLANT_MAX_CHANGE,
                  outlet.max_change_from_january),
    ]


def fig4_rows(result: SimulationResult) -> List[ReportRow]:
    # All five monthly profiles share one group-by pass over the
    # database's common timestamp grid (see trends.monthly_profiles).
    return rows_from_monthly_profiles(monthly_profiles(
        result.database,
        (None, Channel.UTILIZATION, Channel.FLOW,
         Channel.INLET_TEMPERATURE, Channel.OUTLET_TEMPERATURE),
    ))


def rows_from_weekday_profiles(profiles) -> List[ReportRow]:
    power, util, flow, inlet, outlet = profiles
    return [
        ReportRow("Fig 5a", "non-Monday power increase",
                  constants.NON_MONDAY_POWER_INCREASE,
                  power.non_monday_increase),
        ReportRow("Fig 5b", "non-Monday utilization increase",
                  constants.NON_MONDAY_UTILIZATION_INCREASE,
                  util.non_monday_increase),
        ReportRow("Fig 5c", "non-Monday flow change", 0.0,
                  flow.non_monday_increase),
        ReportRow("Fig 5d", "non-Monday inlet change", 0.0,
                  inlet.non_monday_increase),
        ReportRow("Fig 5e", "non-Monday outlet increase",
                  constants.NON_MONDAY_OUTLET_INCREASE,
                  outlet.non_monday_increase),
    ]


def fig5_rows(result: SimulationResult) -> List[ReportRow]:
    return rows_from_weekday_profiles(weekday_profiles(
        result.database,
        (None, Channel.UTILIZATION, Channel.FLOW,
         Channel.INLET_TEMPERATURE, Channel.OUTLET_TEMPERATURE),
    ))


def rows_from_rack_power(profile) -> List[ReportRow]:
    return [
        ReportRow("Fig 6a", "rack power spread",
                  constants.RACK_POWER_SPREAD, profile.power_spread),
        ReportRow("Fig 6a", "highest-power rack is (0, D)", 1.0,
                  float(profile.highest_power_rack
                        == _rack(constants.HIGHEST_POWER_RACK))),
        ReportRow("Fig 6b", "highest-utilization rack is (0, A)", 1.0,
                  float(profile.highest_utilization_rack
                        == _rack(constants.HIGHEST_UTILIZATION_RACK))),
        ReportRow("Fig 6b", "lowest-utilization rack is (2, D)", 1.0,
                  float(profile.lowest_utilization_rack == _rack((2, 0xD)))),
        ReportRow("Fig 6", "corr(rack power, rack utilization)",
                  constants.POWER_UTILIZATION_CORRELATION,
                  profile.power_utilization_correlation),
    ]


def fig6_rows(result: SimulationResult) -> List[ReportRow]:
    return rows_from_rack_power(rack_power_profile(result.database))


def rows_from_rack_coolant(profile) -> List[ReportRow]:
    return [
        ReportRow("Fig 7a", "rack flow spread",
                  constants.RACK_FLOW_SPREAD, profile.flow_spread),
        ReportRow("Fig 7b", "rack inlet spread",
                  constants.RACK_INLET_SPREAD, profile.inlet_spread),
        ReportRow("Fig 7c", "rack outlet spread",
                  constants.RACK_OUTLET_SPREAD, profile.outlet_spread),
        ReportRow("Fig 7a", "mean per-rack flow", 26.0,
                  profile.mean_flow_per_rack_gpm, "GPM"),
    ]


def fig7_rows(result: SimulationResult) -> List[ReportRow]:
    return rows_from_rack_coolant(rack_coolant_profile(result.database))


def rows_from_ambient_trends(trends) -> List[ReportRow]:
    return [
        ReportRow("Fig 8a", "DC temperature min", constants.DC_TEMP_MIN_F,
                  trends.temperature_min_f, "F"),
        ReportRow("Fig 8a", "DC temperature max", constants.DC_TEMP_MAX_F,
                  trends.temperature_max_f, "F"),
        ReportRow("Fig 8a", "DC temperature std", constants.DC_TEMP_STD_F,
                  trends.temperature_std_f, "F"),
        ReportRow("Fig 8b", "DC humidity min", constants.DC_HUMIDITY_MIN_RH,
                  trends.humidity_min_rh, "%RH"),
        ReportRow("Fig 8b", "DC humidity max", constants.DC_HUMIDITY_MAX_RH,
                  trends.humidity_max_rh, "%RH"),
        ReportRow("Fig 8b", "DC humidity std", constants.DC_HUMIDITY_STD_RH,
                  trends.humidity_std_rh, "%RH"),
        ReportRow("Fig 8b", "summer humidity exceeds winter", 1.0,
                  float(trends.humidity_is_summer_seasonal)),
    ]


def fig8_rows(result: SimulationResult) -> List[ReportRow]:
    return rows_from_ambient_trends(ambient_trends(result.database))


def rows_from_ambient_spatial(spatial) -> List[ReportRow]:
    temp_delta, humidity_delta = spatial.row_end_effect()
    return [
        ReportRow("Fig 9a", "rack DC-temperature spread",
                  constants.RACK_DC_TEMP_SPREAD, spatial.temperature_spread),
        ReportRow("Fig 9b", "rack DC-humidity spread",
                  constants.RACK_DC_HUMIDITY_SPREAD, spatial.humidity_spread),
        ReportRow("Fig 9", "hotspot (1, 8) detected", 1.0,
                  float(_rack(constants.HUMIDITY_HOTSPOT_RACK) in spatial.hotspots())),
        ReportRow("Sec V", "row-end temperature excess", 2.0, temp_delta, "F"),
        ReportRow("Sec V", "row-end humidity deficit", -3.0, humidity_delta, "%RH"),
    ]


def fig9_rows(result: SimulationResult) -> List[ReportRow]:
    return rows_from_ambient_spatial(ambient_spatial(result.database))


def fig10_11_rows(result: SimulationResult) -> List[ReportRow]:
    analysis = analyze_cmfs(result.ras_log, result.database)
    return [
        ReportRow("Fig 10", "total CMFs", constants.TOTAL_CMFS, analysis.total),
        ReportRow("Fig 10", "fraction of CMFs in 2016",
                  constants.CMF_2016_FRACTION, analysis.fraction_2016),
        ReportRow("Fig 10", "longest quiet gap (paper: > 2 years)", 730.0,
                  analysis.longest_quiet_gap_days, "days"),
        ReportRow("Fig 10", "bathtub-shaped (paper: no)", 0.0,
                  float(analysis.is_bathtub())),
        ReportRow("Fig 11", "max CMFs on one rack",
                  constants.MOST_CMF_COUNT, analysis.max_rack_count),
        ReportRow("Fig 11", "min CMFs on one rack",
                  constants.FEWEST_CMF_COUNT, analysis.min_rack_count),
        ReportRow("Fig 11", "most-failing rack is (1, 8)", 1.0,
                  float(analysis.most_failing_rack == _rack(constants.MOST_CMF_RACK))),
        ReportRow("Fig 11", "least-failing rack is (2, 7)", 1.0,
                  float(analysis.least_failing_rack == _rack(constants.FEWEST_CMF_RACK))),
        ReportRow("Sec VI-A", "corr(CMFs, utilization)",
                  constants.CMF_UTILIZATION_CORRELATION,
                  analysis.utilization_correlation),
        ReportRow("Sec VI-A", "corr(CMFs, outlet temperature)",
                  constants.CMF_OUTLET_TEMP_CORRELATION,
                  analysis.outlet_correlation),
        ReportRow("Sec VI-A", "corr(CMFs, humidity)",
                  constants.CMF_HUMIDITY_CORRELATION,
                  analysis.humidity_correlation),
    ]


def fig12_rows(positive_windows: Sequence[LeadupWindow]) -> List[ReportRow]:
    aggregate = aggregate_leadup(positive_windows)
    return [
        ReportRow("Fig 12b", "deepest inlet sag",
                  -constants.LEADUP_INLET_DROP, aggregate.inlet_min_change),
        ReportRow("Fig 12b", "inlet change at the failure",
                  constants.LEADUP_INLET_RISE, aggregate.inlet_final_change),
        ReportRow("Fig 12c", "deepest outlet sag",
                  -constants.LEADUP_OUTLET_DROP, aggregate.outlet_min_change),
        ReportRow("Fig 12a", "flow stable until (h before CMF)",
                  constants.LEADUP_FLOW_COLLAPSE_HOURS,
                  aggregate.flow_stable_until_h, "h"),
    ]


def fig13_rows(
    positive_windows: Sequence[LeadupWindow],
    negative_windows: Sequence[LeadupWindow],
    workers: Optional[int] = None,
) -> List[ReportRow]:
    evaluations = evaluate_at_leads(
        positive_windows, negative_windows, leads_h=(6.0, 3.0, 0.5),
        workers=workers,
    )
    by_lead = {e.lead_h: e.report for e in evaluations}
    return [
        ReportRow("Fig 13", "accuracy at 6 h lead",
                  constants.PREDICTOR_ACCURACY_6H, by_lead[6.0].accuracy),
        ReportRow("Fig 13", "accuracy at 3 h lead", 0.93, by_lead[3.0].accuracy),
        ReportRow("Fig 13", "accuracy at 30 min lead",
                  constants.PREDICTOR_ACCURACY_30MIN, by_lead[0.5].accuracy),
        ReportRow("Sec VI-B", "FPR at 6 h lead",
                  constants.PREDICTOR_FPR_6H, by_lead[6.0].false_positive_rate),
        ReportRow("Sec VI-B", "FPR at 30 min lead",
                  constants.PREDICTOR_FPR_30MIN, by_lead[0.5].false_positive_rate),
    ]


def fig14_15_rows(result: SimulationResult) -> List[ReportRow]:
    analysis = analyze_aftermath(result.ras_log)
    return [
        ReportRow("Fig 14a", "rate at 6 h / rate at 3 h (paper: < 0.75)",
                  constants.AFTERMATH_RATE_6H, analysis.rate_6h),
        ReportRow("Fig 14a", "rate at 48 h / rate at 3 h",
                  constants.AFTERMATH_RATE_48H, analysis.rate_48h),
        ReportRow("Fig 14b", "AC-to-DC power share",
                  constants.AFTERMATH_TYPE_DISTRIBUTION["ac_dc_power"],
                  analysis.category_mix.get("ac_dc_power", 0.0)),
        ReportRow("Fig 14b", "BQC share",
                  constants.AFTERMATH_TYPE_DISTRIBUTION["bqc"],
                  analysis.category_mix.get("bqc", 0.0)),
        ReportRow("Fig 14b", "BQL share",
                  constants.AFTERMATH_TYPE_DISTRIBUTION["bql"],
                  analysis.category_mix.get("bql", 0.0)),
        ReportRow("Fig 14b", "process share (paper: < 2 %)",
                  constants.AFTERMATH_TYPE_DISTRIBUTION["process"],
                  analysis.category_mix.get("process", 0.0)),
        ReportRow("Fig 15", "example storms extracted", 3.0,
                  float(len(analysis.examples))),
        ReportRow("Fig 15", "storms with non-local followers", 1.0,
                  analysis.nonlocal_fraction()),
    ]


def _rack(pair: Tuple[int, int]):
    from repro.facility.topology import RackId

    return RackId(*pair)


# -- parallel dispatch -------------------------------------------------------

#: Canonical section order: (title, per-section builder).  Each entry is
#: an independent task for the process pool; the assembled report dict
#: always iterates in this order regardless of completion order.
SECTION_BUILDERS: Tuple[Tuple[str, Callable[[SimulationResult], List[ReportRow]]], ...] = (
    ("Fig 2 — year-over-year power and utilization", fig2_rows),
    ("Fig 3 — coolant flow and temperatures", fig3_rows),
    ("Fig 4 — monthly medians (allocation years)", fig4_rows),
    ("Fig 5 — weekday profiles (Monday maintenance)", fig5_rows),
    ("Fig 6 — rack-level power and utilization", fig6_rows),
    ("Fig 7 — rack-level coolant telemetry", fig7_rows),
    ("Fig 8 — ambient trends", fig8_rows),
    ("Fig 9 — ambient spatial variation", fig9_rows),
    ("Figs 10-11 — CMF timeline and per-rack distribution", fig10_11_rows),
    ("Figs 14-15 — the aftermath of a CMF", fig14_15_rows),
)

FIG12_TITLE = "Fig 12 — the lead-up to a CMF"
FIG13_TITLE = "Fig 13 — the CMF predictor"

_BUILDERS_BY_NAME = {fn.__name__: fn for _, fn in SECTION_BUILDERS}

#: Worker-side memo: archive directory -> reassembled result, so one
#: worker process reopens the memory-mapped telemetry once however many
#: tasks it executes.  Keyed by path; populated lazily in each worker.
_WORKER_RESULTS: Dict[str, SimulationResult] = {}


def _result_spec(result: SimulationResult, workers: int):
    """How to hand ``result`` to a task.

    With one worker everything runs in-process, so the result object is
    passed through untouched.  With a pool, the telemetry is
    materialized as an on-disk archive and workers get the *path* —
    they reopen the columns with ``TelemetryArchive.load(mmap=True)``
    instead of receiving the multi-hundred-MB database through a
    pickle.  Results that cannot be archived (fault-injected runs,
    whose quality masks the archive format does not carry) fall back to
    inline pickling.
    """
    if workers <= 1:
        return ("inline", result)
    from repro.simulation.datasets import materialize_archive

    archive = materialize_archive(result)
    if archive is None:
        return ("inline", result)
    return (
        "archive",
        result.config,
        str(archive),
        result.jobs_completed,
        result.jobs_killed,
    )


def _resolve_spec(spec) -> SimulationResult:
    """Worker-side half of :func:`_result_spec` (memoized per process)."""
    if spec[0] == "inline":
        return spec[1]
    _, config, archive_dir, jobs_completed, jobs_killed = spec
    cached = _WORKER_RESULTS.get(archive_dir)
    if cached is not None and cached.config == config:
        return cached
    from repro.simulation.datasets import result_from_archive

    result = result_from_archive(config, archive_dir, jobs_completed, jobs_killed)
    _WORKER_RESULTS[archive_dir] = result
    return result


def _report_task(spec, task):
    """One unit of parallel report work (must stay module-level picklable).

    ``task`` is ``("section", builder_name)``,
    ``("positives", lo, hi)``, or ``("negatives", count, lo, hi)``; the
    window slices are bit-identical to the serial synthesis because
    window *i*'s noise depends only on its index (see
    :class:`~repro.simulation.windows.WindowSynthesizer`).
    """
    result = _resolve_spec(spec)
    kind = task[0]
    if kind == "section":
        return _BUILDERS_BY_NAME[task[1]](result)
    synthesizer = WindowSynthesizer(result)
    if kind == "positives":
        return synthesizer.positive_windows(task[1], task[2])
    if kind == "negatives":
        return synthesizer.negative_windows(task[1], lo=task[2], hi=task[3])
    raise ValueError(f"unknown report task {kind!r}")


def _chunk_bounds(total: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into at most ``chunks`` contiguous slices."""
    chunks = max(1, min(chunks, total))
    edges = np.linspace(0, total, chunks + 1).astype(int)
    return [
        (int(edges[i]), int(edges[i + 1]))
        for i in range(chunks)
        if edges[i + 1] > edges[i]
    ]


def _resolve_section_store(section_cache):
    """Map the ``section_cache`` argument to an enabled store or None."""
    if section_cache is False:
        return None
    if section_cache is None or section_cache is True:
        from repro.analytics.incremental.memo import default_store

        store = default_store()
    else:
        store = section_cache
    return store if store.enabled else None


def _compute_incremental_sections(
    result: SimulationResult,
    names: Sequence[str],
    store,
    digest_info,
    cfg_digest: str,
) -> Dict[str, List[ReportRow]]:
    """Fold and finalize the incremental sections in-process.

    Each needed state blob is loaded once, revalidated against the
    store's chunk prefix, advanced (folding only appended rows when
    the prefix held), re-published, and finalized per section.  Runs
    in the parent: the folds are vectorized slices over (possibly
    memory-mapped) columns, far cheaper than a worker round-trip.
    """
    from repro.analytics.incremental.sections import (
        INCREMENTAL_SECTIONS,
        advance_state,
    )

    database = result.database
    payloads: Dict[str, Dict] = {}
    for state_id in sorted({INCREMENTAL_SECTIONS[n].state_id for n in names}):
        prior = store.load_state(state_id, cfg_digest) if store else None
        state, outcome = advance_state(database, state_id, prior, digest_info)
        if store is not None:
            counters = store.counters
            if outcome == "hit":
                counters.state_hits += 1
            elif outcome == "append":
                counters.state_appends += 1
            elif outcome == "invalidated":
                counters.invalidations += 1
            else:
                counters.state_misses += 1
            if outcome != "hit":
                store.store_state(state_id, cfg_digest, state)
        payloads[state_id] = state.payload
    return {
        name: INCREMENTAL_SECTIONS[name].finalize(
            payloads[INCREMENTAL_SECTIONS[name].state_id], result
        )
        for name in names
    }


def full_report(
    result: SimulationResult,
    positive_windows: Optional[Sequence[LeadupWindow]] = None,
    negative_windows: Optional[Sequence[LeadupWindow]] = None,
    workers: Optional[int] = None,
    synthesize_windows: bool = False,
    section_cache: Union[None, bool, object] = None,
) -> Dict[str, List[ReportRow]]:
    """All figures' comparisons, keyed by a section title.

    Every figure section is an independent task fanned out over a
    process pool (:func:`repro.parallel.pstarmap`); the assembled
    report is bit-identical at any worker count, and ``workers=1``
    runs the exact same task functions serially in-process.

    The Fig 12/13 sections are included when windows are given, or
    when ``synthesize_windows`` asks the report to build them itself —
    in which case the 300 s window synthesis (the dominant serial
    cost) is sharded across the pool too.

    With the section memo store enabled (the default; see
    :mod:`repro.analytics.incremental`), every section is looked up by
    the dataset's content address *before* any task is dispatched:
    memoized sections are served from disk, sections with an
    incremental reducer fold only rows appended since their cached
    watermark, and only genuinely new work reaches the pool.  Cached
    and fresh builds are pinned equal (exact discrete values, <= 1e-12
    floats) by ``tests/test_incremental_report.py``.

    Args:
        result: The simulation to report on.
        positive_windows: Pre-built CMF lead-up windows (optional).
            When windows are passed explicitly their sections are
            never memoized — their content is the caller's, not
            derivable from the dataset address.
        negative_windows: Pre-built negative-class windows (optional).
        workers: Pool size (see :func:`repro.parallel.resolve_workers`).
        synthesize_windows: Build the Fig 12/13 windows in-report when
            none were passed.
        section_cache: ``None`` (default) uses the process-wide memo
            store unless ``REPRO_SECTION_CACHE=0``; ``False`` disables
            memoization for this call; a
            :class:`~repro.analytics.incremental.SectionMemoStore`
            instance is used as-is.
    """
    synthesize = synthesize_windows and positive_windows is None
    positives_total = 0
    if synthesize:
        positives_total = len(WindowSynthesizer(result).eligible_events())
        synthesize = positives_total > 0

    store = _resolve_section_store(section_cache)
    memo_rows: Dict[str, List[ReportRow]] = {}
    incremental_names: List[str] = []
    keys: Dict[str, object] = {}
    digest_info = None
    cfg_digest = ""
    if store is not None:
        from repro.analytics.incremental.memo import (
            CONFIG_ONLY_ROOT,
            config_digest,
        )
        from repro.analytics.incremental.sections import (
            INCREMENTAL_SECTIONS,
            TELEMETRY_INDEPENDENT_SECTIONS,
        )

        digest_info = result.database.digest_info()
        cfg_digest = config_digest(result.config)
        section_ids = [fn.__name__ for _, fn in SECTION_BUILDERS]
        if synthesize:
            # Synthesized windows derive from the result alone, so
            # their sections are addressable like any other.
            section_ids += ["fig12_rows", "fig13_rows"]
        for section_id in section_ids:
            root = (
                CONFIG_ONLY_ROOT
                if section_id in TELEMETRY_INDEPENDENT_SECTIONS
                else digest_info.root
            )
            key = store.key(root, section_id, cfg_digest)
            keys[section_id] = key
            rows = store.load_rows(key)
            if rows is not None:
                memo_rows[section_id] = rows
            elif section_id in INCREMENTAL_SECTIONS:
                incremental_names.append(section_id)

    pool_section_names = [
        fn.__name__
        for _, fn in SECTION_BUILDERS
        if fn.__name__ not in memo_rows and fn.__name__ not in incremental_names
    ]
    section_tasks = [("section", name) for name in pool_section_names]
    count = resolve_workers(workers, max_tasks=None)
    need_windows = synthesize and not (
        "fig12_rows" in memo_rows and "fig13_rows" in memo_rows
    )
    window_tasks: List[Tuple] = []
    if need_windows:
        for lo, hi in _chunk_bounds(positives_total, count * 4):
            window_tasks.append(("positives", lo, hi))
        for lo, hi in _chunk_bounds(positives_total, count * 4):
            window_tasks.append(("negatives", positives_total, lo, hi))
    # Window chunks lead the task list: they are the long poles, so
    # they should hit the pool first.
    tasks = window_tasks + section_tasks
    if tasks:
        count = min(count, len(tasks))
        spec = _result_spec(result, count)
        outputs = pstarmap(
            _report_task,
            [(spec, task) for task in tasks],
            workers=count,
            chunksize=1,
        )
    else:
        outputs = []

    section_rows = outputs[len(window_tasks):]
    pool_by_name = dict(zip(pool_section_names, section_rows))
    if store is not None:
        for name, rows in pool_by_name.items():
            store.store_rows(keys[name], rows)
    if incremental_names:
        memo_rows.update(
            _compute_incremental_sections(
                result, incremental_names, store, digest_info, cfg_digest
            )
        )
        if store is not None:
            for name in incremental_names:
                store.store_rows(keys[name], memo_rows[name])

    sections: Dict[str, List[ReportRow]] = {}
    for title, fn in SECTION_BUILDERS:
        name = fn.__name__
        sections[title] = memo_rows[name] if name in memo_rows else pool_by_name[name]

    if need_windows:
        n_pos_chunks = len(window_tasks) // 2
        positive_windows = [
            w for chunk in outputs[:n_pos_chunks] for w in chunk
        ]
        negative_windows = [
            w for chunk in outputs[n_pos_chunks : len(window_tasks)] for w in chunk
        ]
    if positive_windows is not None or (synthesize and not need_windows):
        if "fig12_rows" in memo_rows:
            sections[FIG12_TITLE] = memo_rows["fig12_rows"]
        else:
            sections[FIG12_TITLE] = fig12_rows(positive_windows)
            if store is not None and synthesize:
                store.store_rows(keys["fig12_rows"], sections[FIG12_TITLE])
        if "fig13_rows" in memo_rows and synthesize:
            sections[FIG13_TITLE] = memo_rows["fig13_rows"]
        elif negative_windows is not None:
            sections[FIG13_TITLE] = fig13_rows(
                positive_windows, negative_windows, workers=count
            )
            if store is not None and synthesize:
                store.store_rows(keys["fig13_rows"], sections[FIG13_TITLE])
    return sections


def render_markdown(sections: Dict[str, List[ReportRow]]) -> str:
    """Render a full-report dict as the EXPERIMENTS.md body."""
    lines: List[str] = []
    for title, rows in sections.items():
        lines.append(f"### {title}")
        lines.append("")
        lines.append("| source | metric | paper | measured | unit |")
        lines.append("|---|---|---:|---:|---|")
        for row in rows:
            lines.append(
                f"| {row.figure} | {row.metric} | {format_value(row.paper_value)} "
                f"| {format_value(row.measured_value)} | {row.unit} |"
            )
        lines.append("")
    return "\n".join(lines)
