"""Ambient data-center temperature and humidity analyses: Figs 8-9.

Temporal (Fig 8): the system-level temperature/humidity traces, their
ranges and standard deviations, and the summer-vs-winter humidity
seasonality.  Spatial (Fig 9): per-rack profiles, the row-end airflow
effect, and localized hotspots such as rack (1, 8).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

from repro import constants
from repro.core.spatial import relative_spread
from repro.facility.topology import RackId
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import Channel
from repro.telemetry.series import TimeSeries

#: Meteorological summer months (the red band of Fig 8).
SUMMER_MONTHS = (6, 7, 8)

#: Meteorological winter months.
WINTER_MONTHS = (12, 1, 2)


@dataclasses.dataclass(frozen=True)
class AmbientTrends:
    """Fig 8: temporal ambient statistics."""

    temperature: TimeSeries
    humidity: TimeSeries
    temperature_std_f: float
    humidity_std_rh: float
    temperature_min_f: float
    temperature_max_f: float
    humidity_min_rh: float
    humidity_max_rh: float
    humidity_by_month: Dict[int, float]

    @property
    def summer_humidity(self) -> float:
        """Mean humidity over the June-August months present (NaN if none)."""
        values = [self.humidity_by_month[m] for m in SUMMER_MONTHS if m in self.humidity_by_month]
        return float(np.mean(values)) if values else float("nan")

    @property
    def winter_humidity(self) -> float:
        """Mean humidity over the December-February months present (NaN if none)."""
        values = [self.humidity_by_month[m] for m in WINTER_MONTHS if m in self.humidity_by_month]
        return float(np.mean(values)) if values else float("nan")

    @property
    def humidity_is_summer_seasonal(self) -> bool:
        """The paper's core Fig 8 observation: humid summers.

        False (rather than an error) when the dataset does not cover
        both seasons.
        """
        summer, winter = self.summer_humidity, self.winter_humidity
        if np.isnan(summer) or np.isnan(winter):
            return False
        return summer > winter


def ambient_trends_from_series(
    temperature: TimeSeries, humidity: TimeSeries
) -> AmbientTrends:
    """Fig 8 statistics from pre-extracted system-level series.

    The series-level half of :func:`ambient_trends`; the incremental
    report reducer calls it on series reconstructed from its state
    blob so both paths share the exact statistic code.
    """
    return AmbientTrends(
        temperature=temperature,
        humidity=humidity,
        temperature_std_f=temperature.overall_std(),
        humidity_std_rh=humidity.overall_std(),
        temperature_min_f=float(np.nanmin(temperature.values)),
        temperature_max_f=float(np.nanmax(temperature.values)),
        humidity_min_rh=float(np.nanmin(humidity.values)),
        humidity_max_rh=float(np.nanmax(humidity.values)),
        humidity_by_month=humidity.groupby_calendar("month", "median"),
    )


def ambient_trends(database: EnvironmentalDatabase) -> AmbientTrends:
    """Reproduce Fig 8 from a telemetry database."""
    return ambient_trends_from_series(
        database.channel(Channel.DC_TEMPERATURE).across_racks(),
        database.channel(Channel.DC_HUMIDITY).across_racks(),
    )


@dataclasses.dataclass(frozen=True)
class AmbientSpatial:
    """Fig 9: per-rack ambient statistics."""

    temperature_f: np.ndarray
    humidity_rh: np.ndarray

    @property
    def temperature_spread(self) -> float:
        """Paper: up to 11 %."""
        return relative_spread(self.temperature_f)

    @property
    def humidity_spread(self) -> float:
        """Paper: up to 36 %."""
        return relative_spread(self.humidity_rh)

    def row_end_effect(self, edge_racks: int = 3) -> Tuple[float, float]:
        """(temperature excess, humidity deficit) at row ends.

        The paper's root cause: underfloor airflow is lower near the
        last three-or-four racks of each row, making those racks
        warmer and drier than row centers.

        Returns:
            (mean end temperature - mean center temperature,
             mean end humidity - mean center humidity), both in the
            channel's units.
        """
        n = constants.RACKS_PER_ROW
        offsets = np.arange(n)
        edge_cols = (offsets < edge_racks) | (offsets >= n - edge_racks)
        end_mask = np.tile(edge_cols, constants.NUM_ROWS)
        temp_delta = float(
            self.temperature_f[end_mask].mean() - self.temperature_f[~end_mask].mean()
        )
        humidity_delta = float(
            self.humidity_rh[end_mask].mean() - self.humidity_rh[~end_mask].mean()
        )
        return temp_delta, humidity_delta

    def hotspots(self, threshold: float = 0.10) -> Tuple[RackId, ...]:
        """Racks anomalously dry/hot relative to their row *center*.

        A center rack is flagged when its humidity is ``threshold``
        below the median of its row's central racks — the signature of
        a localized blockage like rack (1, 8).
        """
        n = constants.RACKS_PER_ROW
        center = self.humidity_rh.reshape(constants.NUM_ROWS, n)[:, 4 : n - 4]
        medians = np.median(center, axis=1, keepdims=True)
        flagged = center < medians * (1.0 - threshold)
        # argwhere walks row-major, matching the nested row/offset scan.
        return tuple(
            RackId(int(row), int(offset) + 4) for row, offset in np.argwhere(flagged)
        )


def ambient_spatial(database: EnvironmentalDatabase) -> AmbientSpatial:
    """Reproduce Fig 9 from a telemetry database."""
    return AmbientSpatial(
        temperature_f=database.channel(Channel.DC_TEMPERATURE).per_rack_mean(),
        humidity_rh=database.channel(Channel.DC_HUMIDITY).per_rack_mean(),
    )
