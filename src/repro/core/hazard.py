"""Hazard-shape analysis: is the CMF process bathtub-like?

The paper's Fig 10 claim — "CMF failures do not exhibit traditional
bathtub-like behavior" — deserves a formal test, not just a histogram.
This module fits a Weibull renewal model to the inter-failure times by
maximum likelihood:

* shape ``k < 1``  — infant mortality (the front edge of a bathtub),
* shape ``k = 1``  — memoryless (a Poisson process),
* shape ``k > 1``  — wear-out (the back edge of a bathtub).

A bathtub would show ``k`` well below one early in life and well above
one late; the paper's (and our) CMFs instead cluster around external
events, so the fitted shapes stay near (or above, within bursts) one
and the early/late split shows no bathtub asymmetry.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class WeibullFit:
    """Maximum-likelihood Weibull parameters for waiting times."""

    shape: float
    scale: float
    samples: int
    log_likelihood: float

    @property
    def is_infant_mortality(self) -> bool:
        """Decreasing hazard (k meaningfully below 1)."""
        return self.shape < 0.85

    @property
    def is_wear_out(self) -> bool:
        """Increasing hazard (k meaningfully above 1)."""
        return self.shape > 1.15

    @property
    def is_memoryless(self) -> bool:
        return not (self.is_infant_mortality or self.is_wear_out)


def fit_weibull(waiting_times: Sequence[float], iterations: int = 200) -> WeibullFit:
    """MLE Weibull fit via the standard one-dimensional fixed point.

    Solves ``1/k = sum(t^k ln t)/sum(t^k) - mean(ln t)`` by Newton
    iteration, then recovers the scale in closed form.

    Raises:
        ValueError: on fewer than three samples or non-positive times.
    """
    t = np.asarray(list(waiting_times), dtype="float64")
    if t.size < 3:
        raise ValueError(f"need at least 3 waiting times, got {t.size}")
    if np.any(t <= 0):
        raise ValueError("waiting times must be positive")
    log_t = np.log(t)
    mean_log = log_t.mean()

    k = 1.0
    for _ in range(iterations):
        tk = t**k
        a = np.sum(tk * log_t) / np.sum(tk)
        f = a - mean_log - 1.0 / k
        # Derivative of f w.r.t. k.
        b = np.sum(tk * log_t**2) / np.sum(tk) - a**2
        f_prime = b + 1.0 / k**2
        step = f / f_prime
        k_new = k - step
        if k_new <= 0:
            k_new = k / 2.0
        if abs(k_new - k) < 1e-10:
            k = k_new
            break
        k = k_new
    scale = float((np.mean(t**k)) ** (1.0 / k))
    log_likelihood = float(
        t.size * (np.log(k) - k * np.log(scale))
        + (k - 1.0) * log_t.sum()
        - np.sum((t / scale) ** k)
    )
    return WeibullFit(
        shape=float(k), scale=scale, samples=int(t.size), log_likelihood=log_likelihood
    )


@dataclasses.dataclass(frozen=True)
class BathtubVerdict:
    """The early-vs-late hazard comparison."""

    early_fit: WeibullFit
    late_fit: WeibullFit
    overall_fit: WeibullFit

    @property
    def is_bathtub(self) -> bool:
        """Bathtub = decreasing hazard early AND increasing hazard late."""
        return self.early_fit.is_infant_mortality and self.late_fit.is_wear_out

    def summary(self) -> str:
        return (
            f"early shape k={self.early_fit.shape:.2f}, "
            f"late shape k={self.late_fit.shape:.2f}, "
            f"overall k={self.overall_fit.shape:.2f} -> "
            f"{'bathtub' if self.is_bathtub else 'not bathtub'}"
        )


def bathtub_verdict(
    event_times: Sequence[float], split: float = 0.5
) -> BathtubVerdict:
    """Fit Weibull hazards to the early and late halves of life.

    Args:
        event_times: Failure timestamps (any monotone unit).
        split: Fraction of the observation span forming the "early"
            period.

    Raises:
        ValueError: if either half has too few events for a fit.
    """
    times = np.sort(np.asarray(list(event_times), dtype="float64"))
    if times.size < 8:
        raise ValueError("need at least 8 events for a bathtub verdict")
    gaps = np.diff(times)
    gaps = gaps[gaps > 0]
    boundary = times[0] + split * (times[-1] - times[0])
    early_gaps = np.diff(times[times <= boundary])
    late_gaps = np.diff(times[times > boundary])
    early_gaps = early_gaps[early_gaps > 0]
    late_gaps = late_gaps[late_gaps > 0]
    return BathtubVerdict(
        early_fit=fit_weibull(early_gaps),
        late_fit=fit_weibull(late_gaps),
        overall_fit=fit_weibull(gaps),
    )
