"""Rack-level (spatial) analyses: Figs 6 and 7.

Per-rack time averages of power, utilization, and the coolant
channels, with the spread/extreme/correlation statistics the paper
reports.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro import constants
from repro.core.correlation import pearson
from repro.facility.topology import RackId
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import Channel


def relative_spread(per_rack_means: np.ndarray) -> float:
    """(max - min) / min of a per-rack profile — the paper's "up to X %"."""
    profile = np.asarray(per_rack_means, dtype="float64")
    low = profile.min()
    if low <= 0:
        raise ValueError("profile must be positive for a relative spread")
    return float((profile.max() - low) / low)


def row_means(per_rack_means: np.ndarray) -> Tuple[float, ...]:
    """Mean of a per-rack profile per row (rows of 16 racks)."""
    profile = np.asarray(per_rack_means, dtype="float64")
    grid = profile.reshape(constants.NUM_ROWS, constants.RACKS_PER_ROW)
    return tuple(float(v) for v in grid.mean(axis=1))


@dataclasses.dataclass(frozen=True)
class RackPowerProfile:
    """Fig 6: per-rack power and utilization averages."""

    power_kw: np.ndarray
    utilization: np.ndarray

    @property
    def power_spread(self) -> float:
        """Paper: power varies up to 15 % among racks."""
        return relative_spread(self.power_kw)

    @property
    def utilization_spread(self) -> float:
        return relative_spread(self.utilization)

    @property
    def highest_power_rack(self) -> RackId:
        """Paper: rack (0, D)."""
        return RackId.from_flat_index(int(np.argmax(self.power_kw)))

    @property
    def highest_utilization_rack(self) -> RackId:
        """Paper: rack (0, A)."""
        return RackId.from_flat_index(int(np.argmax(self.utilization)))

    @property
    def lowest_utilization_rack(self) -> RackId:
        """Paper: rack (2, D)."""
        return RackId.from_flat_index(int(np.argmin(self.utilization)))

    @property
    def power_utilization_correlation(self) -> float:
        """Paper: r = 0.45 — power and utilization only loosely track."""
        return pearson(self.power_kw, self.utilization)

    @property
    def highest_utilization_row(self) -> int:
        """Paper: row 0, where prod-long jobs land."""
        return int(np.argmax(row_means(self.utilization)))

    @property
    def highest_power_row(self) -> int:
        return int(np.argmax(row_means(self.power_kw)))


def rack_power_profile(database: EnvironmentalDatabase) -> RackPowerProfile:
    """Reproduce Fig 6 from a telemetry database."""
    return RackPowerProfile(
        power_kw=database.channel(Channel.POWER).per_rack_mean(),
        utilization=database.channel(Channel.UTILIZATION).per_rack_mean(),
    )


@dataclasses.dataclass(frozen=True)
class RackCoolantProfile:
    """Fig 7: per-rack coolant flow and temperature averages."""

    flow_gpm: np.ndarray
    inlet_f: np.ndarray
    outlet_f: np.ndarray

    @property
    def flow_spread(self) -> float:
        """Paper: up to 11 % (underfloor blockage)."""
        return relative_spread(self.flow_gpm)

    @property
    def inlet_spread(self) -> float:
        """Paper: ~1 % (chillers hold the supply temperature)."""
        return relative_spread(self.inlet_f)

    @property
    def outlet_spread(self) -> float:
        """Paper: up to 3 % (follows rack power)."""
        return relative_spread(self.outlet_f)

    @property
    def mean_flow_per_rack_gpm(self) -> float:
        """Paper: ~26 GPM per rack."""
        return float(self.flow_gpm.mean())


def rack_coolant_profile(database: EnvironmentalDatabase) -> RackCoolantProfile:
    """Reproduce Fig 7 from a telemetry database."""
    return RackCoolantProfile(
        flow_gpm=database.channel(Channel.FLOW).per_rack_mean(),
        inlet_f=database.channel(Channel.INLET_TEMPERATURE).per_rack_mean(),
        outlet_f=database.channel(Channel.OUTLET_TEMPERATURE).per_rack_mean(),
    )
