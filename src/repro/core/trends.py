"""Temporal trend analyses: Figs 2, 3, 4, and 5.

Everything operates on a :class:`~repro.simulation.engine.SimulationResult`
(or directly on an :class:`~repro.telemetry.database.EnvironmentalDatabase`),
mirroring how the paper's authors operated on the Mira environmental
database.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants, timeutil
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import Channel
from repro.telemetry.series import LinearFit, TimeSeries, reduce_by_calendar


@dataclasses.dataclass(frozen=True)
class YearlyTrends:
    """Fig 2: six-year power and utilization trends with linear fits."""

    power_mw: TimeSeries
    utilization: TimeSeries
    power_fit: LinearFit
    utilization_fit: LinearFit

    @property
    def power_start_mw(self) -> float:
        """Fitted system power at the start of the period."""
        return float(self.power_fit.predict(self.power_mw.epoch_s[:1])[0])

    @property
    def power_end_mw(self) -> float:
        """Fitted system power at the end of the period."""
        return float(self.power_fit.predict(self.power_mw.epoch_s[-1:])[0])

    @property
    def utilization_start(self) -> float:
        return float(self.utilization_fit.predict(self.utilization.epoch_s[:1])[0])

    @property
    def utilization_end(self) -> float:
        return float(self.utilization_fit.predict(self.utilization.epoch_s[-1:])[0])


def yearly_trends_from_series(
    power: TimeSeries, utilization: TimeSeries, smooth_window: int = 24 * 7
) -> YearlyTrends:
    """Fig 2 statistics from pre-extracted system-level series.

    The series-level half of :func:`yearly_trends`; the incremental
    report reducer calls it on series reconstructed from its state
    blob, so cached and from-scratch builds share every statistic's
    exact code path.
    """
    return YearlyTrends(
        power_mw=power.rolling_mean(smooth_window),
        utilization=utilization.rolling_mean(smooth_window),
        power_fit=power.trend(),
        utilization_fit=utilization.trend(),
    )


def yearly_trends(
    database: EnvironmentalDatabase, smooth_window: int = 24 * 7
) -> YearlyTrends:
    """Reproduce Fig 2 from a telemetry database.

    Args:
        database: The environmental database.
        smooth_window: Rolling-mean window (in samples) for the
            plotted series; the fits are computed on the raw series.
    """
    return yearly_trends_from_series(
        database.system_power_mw(),
        database.system_utilization(),
        smooth_window=smooth_window,
    )


@dataclasses.dataclass(frozen=True)
class CoolantTrends:
    """Fig 3: coolant flow and temperatures over the six years."""

    total_flow: TimeSeries
    inlet: TimeSeries
    outlet: TimeSeries
    flow_std_gpm: float
    inlet_std_f: float
    outlet_std_f: float
    flow_pre_theta_gpm: float
    flow_post_theta_gpm: float
    inlet_mean_f: float
    outlet_mean_f: float
    #: Mean inlet temperature inside vs outside the Theta-testing
    #: window (the Fig 3(b) mid-2016 bump).
    inlet_theta_window_f: float
    inlet_outside_theta_f: float


def coolant_trends_from_series(
    total_flow: TimeSeries, inlet: TimeSeries, outlet: TimeSeries
) -> CoolantTrends:
    """Fig 3 statistics from pre-extracted system-level series."""
    theta = timeutil.to_epoch(constants.THETA_ADDITION_DATE)
    settled = timeutil.to_epoch(constants.THETA_SETTLED_DATE)
    epoch = total_flow.epoch_s
    pre_mask = epoch < theta
    post_mask = epoch >= settled
    theta_mask = (inlet.epoch_s >= theta) & (inlet.epoch_s < settled)

    def _mean(series: TimeSeries, mask: np.ndarray) -> float:
        if not mask.any():
            return float("nan")
        return float(np.nanmean(series.values[mask]))

    return CoolantTrends(
        total_flow=total_flow,
        inlet=inlet,
        outlet=outlet,
        flow_std_gpm=total_flow.overall_std(),
        inlet_std_f=inlet.overall_std(),
        outlet_std_f=outlet.overall_std(),
        flow_pre_theta_gpm=_mean(total_flow, pre_mask),
        flow_post_theta_gpm=_mean(total_flow, post_mask),
        inlet_mean_f=inlet.overall_mean(),
        outlet_mean_f=outlet.overall_mean(),
        inlet_theta_window_f=_mean(inlet, theta_mask),
        inlet_outside_theta_f=_mean(inlet, ~theta_mask),
    )


def coolant_trends(database: EnvironmentalDatabase) -> CoolantTrends:
    """Reproduce Fig 3 from a telemetry database."""
    return coolant_trends_from_series(
        database.total_flow_gpm(),
        database.channel(Channel.INLET_TEMPERATURE).across_racks(),
        database.channel(Channel.OUTLET_TEMPERATURE).across_racks(),
    )


@dataclasses.dataclass(frozen=True)
class MonthlyProfile:
    """Fig 4: per-month medians of one channel."""

    channel_name: str
    by_month: Dict[int, float]

    @property
    def second_half_ratio(self) -> float:
        """Jul-Dec median over Jan-Jun median (the Fig 4(a)/(b) shift).

        Partial-year datasets use whichever months of each half are
        present; a dataset confined to one half returns 1.0.
        """
        h1 = [self.by_month[m] for m in range(1, 7) if m in self.by_month]
        h2 = [self.by_month[m] for m in range(7, 13) if m in self.by_month]
        if not h1 or not h2:
            return 1.0
        return float(np.mean(h2) / np.mean(h1))

    @property
    def max_change_from_january(self) -> float:
        """Largest relative deviation of any month from January.

        The Fig 4 caption reports this is < 1.5 % for flow and the
        coolant temperatures.  When the dataset has no January, the
        earliest available month stands in as the reference.
        """
        reference_month = 1 if 1 in self.by_month else min(self.by_month)
        reference = self.by_month[reference_month]
        return float(
            max(abs(v / reference - 1.0) for v in self.by_month.values())
        )

    @property
    def peak_month(self) -> int:
        return max(self.by_month, key=self.by_month.get)


def _system_series(
    database: EnvironmentalDatabase, channel: Optional[Channel]
) -> Tuple[TimeSeries, str]:
    """The 1-D system-level series a calendar profile reduces.

    ``None`` profiles system power; per-rack channels are averaged
    across racks first (matching what ``groupby_calendar`` would do).
    """
    if channel is None:
        return database.system_power_mw(), "system_power_mw"
    if channel is Channel.FLOW:
        return database.total_flow_gpm(), "total_flow_gpm"
    if channel is Channel.UTILIZATION:
        return database.system_utilization(), "system_utilization"
    return database.channel(channel).across_racks(), channel.column


def _system_series_matrix(
    database: EnvironmentalDatabase,
    channels: Sequence[Optional[Channel]],
) -> Tuple[Tuple[str, ...], np.ndarray, np.ndarray]:
    """Several channels' system series as one ``(time, channel)`` matrix.

    All system-level series of one database share the same timestamp
    vector, so the calendar keys, the stable sort, and the group
    boundaries of a calendar reduction can be computed once with every
    channel as one matrix column.
    """
    extracted = [_system_series(database, ch) for ch in channels]
    names = tuple(name for _, name in extracted)
    matrix = np.column_stack([series.values for series, _ in extracted])
    return names, extracted[0][0].epoch_s, matrix


def _calendar_profiles_matrix(
    database: EnvironmentalDatabase,
    channels: Sequence[Optional[Channel]],
    field: str,
    reducer: str,
) -> Tuple[Tuple[str, ...], Dict[int, np.ndarray]]:
    """One shared group-by pass over several channels' system series."""
    names, epoch_s, matrix = _system_series_matrix(database, channels)
    return names, reduce_by_calendar(epoch_s, matrix, field, reducer)


def monthly_profiles_from_matrix(
    epoch_s: np.ndarray, names: Sequence[str], matrix: np.ndarray
) -> List[MonthlyProfile]:
    """Fig 4 profiles from a pre-extracted system-series matrix.

    The matrix-level half of :func:`monthly_profiles` (one column per
    channel); used by the incremental report reducer on series
    reconstructed from its state blob.
    """
    by_month = reduce_by_calendar(epoch_s, matrix, "month", "median")
    return [
        MonthlyProfile(
            channel_name=name,
            by_month={k: float(row[j]) for k, row in by_month.items()},
        )
        for j, name in enumerate(names)
    ]


def weekday_profiles_from_matrix(
    epoch_s: np.ndarray, names: Sequence[str], matrix: np.ndarray
) -> List[WeekdayProfile]:
    """Fig 5 profiles from a pre-extracted system-series matrix."""
    by_weekday = reduce_by_calendar(epoch_s, matrix, "weekday", "mean")
    return [
        WeekdayProfile(
            channel_name=name,
            by_weekday={k: float(row[j]) for k, row in by_weekday.items()},
        )
        for j, name in enumerate(names)
    ]


def monthly_profile(
    database: EnvironmentalDatabase, channel: Optional[Channel] = None
) -> MonthlyProfile:
    """Per-month median profile of a channel (or of system power).

    Args:
        database: The environmental database.
        channel: The channel to profile; None profiles system power.
    """
    return monthly_profiles(database, (channel,))[0]


def monthly_profiles(
    database: EnvironmentalDatabase, channels: Sequence[Optional[Channel]]
) -> List[MonthlyProfile]:
    """Fig 4's per-month medians for several channels in one pass."""
    names, by_month = _calendar_profiles_matrix(
        database, channels, "month", "median"
    )
    return [
        MonthlyProfile(
            channel_name=name,
            by_month={k: float(row[j]) for k, row in by_month.items()},
        )
        for j, name in enumerate(names)
    ]


@dataclasses.dataclass(frozen=True)
class WeekdayProfile:
    """Fig 5: weekday profile of a channel, Monday vs the rest."""

    channel_name: str
    by_weekday: Dict[int, float]

    @property
    def monday(self) -> float:
        return self.by_weekday[constants.MAINTENANCE_WEEKDAY]

    @property
    def non_monday_mean(self) -> float:
        others = [
            v
            for day, v in self.by_weekday.items()
            if day != constants.MAINTENANCE_WEEKDAY
        ]
        return float(np.mean(others))

    @property
    def non_monday_increase(self) -> float:
        """Relative increase of non-Monday days over Monday.

        Paper: ~6 % for power, ~1.5 % for utilization, ~2 % for outlet
        coolant temperature, ~0 for flow and inlet.
        """
        return self.non_monday_mean / self.monday - 1.0

    @property
    def minimum_weekday(self) -> int:
        return min(self.by_weekday, key=self.by_weekday.get)


def weekday_profile(
    database: EnvironmentalDatabase, channel: Optional[Channel] = None
) -> WeekdayProfile:
    """Per-weekday mean profile (None profiles system power)."""
    return weekday_profiles(database, (channel,))[0]


def weekday_profiles(
    database: EnvironmentalDatabase, channels: Sequence[Optional[Channel]]
) -> List[WeekdayProfile]:
    """Fig 5's per-weekday means for several channels in one pass."""
    names, by_weekday = _calendar_profiles_matrix(
        database, channels, "weekday", "mean"
    )
    return [
        WeekdayProfile(
            channel_name=name,
            by_weekday={k: float(row[j]) for k, row in by_weekday.items()},
        )
        for j, name in enumerate(names)
    ]
