"""Floor-map rendering: the paper's rack heatmaps, in a terminal.

Figs 6, 7, 9, and 11 of the paper are 3 x 16 floor maps of Mira with
one cell per rack.  :func:`render_floor` reproduces that view as text:
a shaded heatmap with row/column labels and optional cell annotations,
used by the examples and handy in a REPL.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro import constants
from repro.facility.topology import RackId

#: Shading ramp from cold to hot.
_SHADES = " ░▒▓█"


def _shade(value: float, lo: float, hi: float) -> str:
    if not np.isfinite(value):
        return "?"
    if hi <= lo:
        return _SHADES[2]
    fraction = (value - lo) / (hi - lo)
    index = int(round(fraction * (len(_SHADES) - 1)))
    return _SHADES[max(0, min(len(_SHADES) - 1, index))]


def render_floor(
    per_rack_values: Sequence[float],
    title: str = "",
    formatter: Optional[Callable[[float], str]] = None,
    annotate_extremes: bool = True,
) -> str:
    """Render a per-rack profile as the paper's 3 x 16 floor map.

    Args:
        per_rack_values: 48 values in flat-index order.
        title: Optional heading.
        formatter: Cell formatter; default two shaded blocks.  When
            provided, each cell prints ``formatter(value)`` padded to
            the widest cell instead of shading.
        annotate_extremes: Append a min/max legend naming the racks.

    Raises:
        ValueError: if the profile is not 48 wide.
    """
    values = np.asarray(list(per_rack_values), dtype="float64")
    if values.shape != (constants.NUM_RACKS,):
        raise ValueError(
            f"expected {constants.NUM_RACKS} values, got {values.shape}"
        )
    finite = values[np.isfinite(values)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 0.0

    if formatter is None:
        cells = [
            [_shade(values[row * 16 + col], lo, hi) * 2 for col in range(16)]
            for row in range(3)
        ]
    else:
        rendered = [formatter(v) for v in values]
        width = max(len(r) for r in rendered)
        cells = [
            [rendered[row * 16 + col].rjust(width) for col in range(16)]
            for row in range(3)
        ]

    lines = []
    if title:
        lines.append(title)
    header = "      " + " ".join(f"{col:X}".center(len(cells[0][0])) for col in range(16))
    lines.append(header)
    for row in range(3):
        lines.append(f"row {row} " + " ".join(cells[row]))
    if annotate_extremes and finite.size:
        hottest = RackId.from_flat_index(int(np.nanargmax(values)))
        coldest = RackId.from_flat_index(int(np.nanargmin(values)))
        lines.append(
            f"      min {lo:.4g} at {coldest.label}   max {hi:.4g} at {hottest.label}"
        )
    return "\n".join(lines)


def render_counts(counts: Sequence[int], title: str = "") -> str:
    """The Fig 11 view: integer counts per rack cell."""
    return render_floor(
        [float(c) for c in counts],
        title=title,
        formatter=lambda v: f"{int(v):d}",
    )
