"""Internal consistency validation of a simulated dataset.

Calibration tests check the dataset against the *paper*; this module
checks it against *physics and bookkeeping* — the cross-checks a
reviewer of the original study would run on the raw archive:

* **heat balance**: the outlet-minus-inlet temperature rise of every
  powered rack must match ``Q = m_dot c_p dT`` for its logged power
  and flow (within sensor noise),
* **flow conservation**: per-rack flows must sum to the facility
  setpoint in force at each instant,
* **condensation margins**: dewpoint margins are comfortably positive
  in normal operation,
* **log/telemetry agreement**: every fatal CMF event in the RAS log
  has a telemetry outage (zero power) following it.

:func:`validate_result` runs all checks and returns a scorecard.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import constants, timeutil, units
from repro.core.failure_analysis import deduplicate_cmf_events
from repro.failures.dewpoint import condensation_margin_f
from repro.simulation.engine import SimulationResult
from repro.telemetry.records import Channel


@dataclasses.dataclass(frozen=True)
class CheckResult:
    """One validation check's outcome."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


@dataclasses.dataclass(frozen=True)
class ValidationScorecard:
    """All checks plus an overall verdict."""

    checks: Tuple[CheckResult, ...]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def summary(self) -> str:
        lines = [str(check) for check in self.checks]
        verdict = "ALL CHECKS PASSED" if self.passed else "CHECKS FAILED"
        return "\n".join(lines + [verdict])


def check_heat_balance(
    result: SimulationResult, tolerance_f: float = 2.5
) -> CheckResult:
    """Outlet rise must match the heat-balance prediction per sample."""
    db = result.database
    power = db.channel(Channel.POWER).values
    flow = db.channel(Channel.FLOW).values
    inlet = db.channel(Channel.INLET_TEMPERATURE).values
    outlet = db.channel(Channel.OUTLET_TEMPERATURE).values
    loaded = (power > 30.0) & (flow > 10.0) & np.isfinite(outlet)
    m_dot = units.gpm_to_kg_per_s(1.0) * flow[loaded]
    predicted_rise = units.celsius_delta_to_fahrenheit(
        0.98 * power[loaded] / (m_dot * units.WATER_SPECIFIC_HEAT_KJ_PER_KG_K)
    )
    residual = (outlet[loaded] - inlet[loaded]) - predicted_rise
    p95 = float(np.percentile(np.abs(residual), 95))
    return CheckResult(
        name="heat balance",
        passed=p95 < tolerance_f,
        detail=f"|dT residual| p95 = {p95:.2f} F (tolerance {tolerance_f} F)",
    )


def check_flow_conservation(
    result: SimulationResult, tolerance: float = 0.12
) -> CheckResult:
    """Summed rack flows must track the valve setpoint in force."""
    from repro.cooling.valves import FlowRegulatingValve

    valve = FlowRegulatingValve()
    total = result.database.total_flow_gpm()
    setpoints = np.array([valve.setpoint_gpm(t) for t in total.epoch_s])
    relative = np.abs(total.values - setpoints) / setpoints
    p99 = float(np.percentile(relative[np.isfinite(relative)], 99))
    return CheckResult(
        name="flow conservation",
        passed=p99 < tolerance,
        detail=f"|total flow - setpoint| p99 = {p99:.1%} (tolerance {tolerance:.0%})",
    )


def check_condensation_margins(
    result: SimulationResult, min_margin_f: float = 2.0
) -> CheckResult:
    """Dewpoint margins stay positive away from condensation events."""
    db = result.database
    inlet = db.channel(Channel.INLET_TEMPERATURE).values
    temp = db.channel(Channel.DC_TEMPERATURE).values
    rh = db.channel(Channel.DC_HUMIDITY).values
    valid = np.isfinite(inlet) & np.isfinite(temp) & np.isfinite(rh) & (rh > 0)
    margins = condensation_margin_f(inlet[valid], temp[valid], rh[valid])
    fraction_tight = float(np.mean(margins < min_margin_f))
    # Condensation-risk lead-ups legitimately compress the margin; they
    # are a tiny fraction of all samples.
    return CheckResult(
        name="condensation margins",
        passed=fraction_tight < 0.01,
        detail=(
            f"{fraction_tight:.3%} of samples below {min_margin_f} F margin "
            f"(min {margins.min():.1f} F)"
        ),
    )


def check_outages_follow_log(result: SimulationResult) -> CheckResult:
    """Every logged fatal CMF must show a telemetry power outage."""
    if result.schedule is None or not result.schedule.events:
        return CheckResult(
            name="log/telemetry agreement",
            passed=True,
            detail="no failures injected",
        )
    db = result.database
    power = db.channel(Channel.POWER)
    dedup = deduplicate_cmf_events(result.ras_log)
    dt_s = result.config.dt_s
    verified = 0
    checked = 0
    for event in dedup.events[:200]:  # bounded sample
        flat = event.rack_id.flat_index
        mask = (power.epoch_s >= event.epoch_s) & (
            power.epoch_s < event.epoch_s + 3 * dt_s
        )
        if not mask.any():
            continue
        checked += 1
        if np.nanmin(power.values[mask, flat]) < 5.0:
            verified += 1
    fraction = verified / max(1, checked)
    return CheckResult(
        name="log/telemetry agreement",
        passed=fraction > 0.97,
        detail=f"{verified}/{checked} logged CMFs show a power outage",
    )


def check_utilization_bounds(result: SimulationResult) -> CheckResult:
    """Utilization must stay in [0, 1] with a sane mean."""
    util = result.database.channel(Channel.UTILIZATION).values
    finite = util[np.isfinite(util)]
    in_bounds = bool(finite.min() >= 0.0 and finite.max() <= 1.0)
    mean = float(finite.mean())
    return CheckResult(
        name="utilization bounds",
        passed=in_bounds and 0.3 < mean < 1.0,
        detail=f"range [{finite.min():.2f}, {finite.max():.2f}], mean {mean:.2f}",
    )


def validate_result(result: SimulationResult) -> ValidationScorecard:
    """Run every consistency check against a simulation result."""
    return ValidationScorecard(
        checks=(
            check_heat_balance(result),
            check_flow_conservation(result),
            check_condensation_margins(result),
            check_outages_follow_log(result),
            check_utilization_bounds(result),
        )
    )
