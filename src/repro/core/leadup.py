"""The lead-up to a CMF: Fig 12.

Aggregates the coolant-monitor telemetry over the six hours before
every CMF, expressed as the mean relative change of each channel
versus its value at the start of the lead-up window.  The paper's
findings this reproduces:

* coolant flow stays flat until ~30 minutes out, then collapses,
* inlet temperature sags by up to ~7 % around four hours out, then
  snaps up by ~8 % in the final half hour,
* outlet temperature sags ~5 % from about three hours out.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, Sequence, Tuple

import numpy as np

from repro import timeutil
from repro.simulation.windows import LeadupWindow
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.prediction import WindowStack

#: Default lead times at which the aggregate is sampled (hours).
DEFAULT_LEADS_H: Tuple[float, ...] = (6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.0)


@dataclasses.dataclass(frozen=True)
class LeadupAggregate:
    """Mean relative channel change vs lead time before a CMF."""

    leads_h: Tuple[float, ...]
    #: channel -> vector of mean relative changes, aligned to leads_h.
    relative_change: Dict[Channel, np.ndarray]
    windows_used: int

    def change_at(self, channel: Channel, lead_h: float) -> float:
        """Interpolated mean relative change at one lead time."""
        leads = np.array(self.leads_h)
        order = np.argsort(leads)
        return float(
            np.interp(lead_h, leads[order], self.relative_change[channel][order])
        )

    @property
    def inlet_min_change(self) -> float:
        """Deepest inlet sag over the window (paper: about -7 %)."""
        return float(np.min(self.relative_change[Channel.INLET_TEMPERATURE]))

    @property
    def inlet_final_change(self) -> float:
        """Inlet change at the failure itself (paper: up to +8 %)."""
        return self.change_at(Channel.INLET_TEMPERATURE, 0.0)

    @property
    def outlet_min_change(self) -> float:
        """Deepest outlet sag (paper: about -5 %)."""
        return float(np.min(self.relative_change[Channel.OUTLET_TEMPERATURE]))

    @property
    def flow_stable_until_h(self) -> float:
        """Largest lead at which flow has moved less than 2 %.

        The paper: flow "continues to remain relatively stable until
        just a half hour before a CMF".
        """
        flow = self.relative_change[Channel.FLOW]
        leads = np.array(self.leads_h)
        moved = np.abs(flow) >= 0.02
        if not moved.any():
            return 0.0
        return float(leads[moved].max())


#: Channels the Fig 12 aggregate reports, in presentation order.
_AGGREGATE_CHANNELS: Tuple[Channel, ...] = (
    Channel.FLOW,
    Channel.INLET_TEMPERATURE,
    Channel.OUTLET_TEMPERATURE,
    Channel.POWER,
    Channel.DC_TEMPERATURE,
    Channel.DC_HUMIDITY,
)


def _summed_changes_loop(
    positives: Sequence[LeadupWindow],
    leads_h: Tuple[float, ...],
    baseline_lead_h: float,
) -> Dict[Channel, np.ndarray]:
    """Per-window reference path, kept for heterogeneous geometries."""
    sums: Dict[Channel, np.ndarray] = {
        ch: np.zeros(len(leads_h)) for ch in _AGGREGATE_CHANNELS
    }
    for window in positives:
        for channel in _AGGREGATE_CHANNELS:
            baseline = window.lead_value(
                channel, baseline_lead_h * timeutil.HOUR_S
            )
            if abs(baseline) < 1e-9:
                continue
            values = np.array(
                [
                    window.lead_value(channel, lead * timeutil.HOUR_S)
                    for lead in leads_h
                ]
            )
            sums[channel] += values / baseline - 1.0
    return sums


def _summed_changes_batch(
    stack: "WindowStack",
    leads_h: Tuple[float, ...],
    baseline_lead_h: float,
) -> Dict[Channel, np.ndarray]:
    """One interpolation pass over the stacked windows.

    A single ``_batch_interp`` samples every (window, channel) at the
    baseline and at all leads at once, replacing the triple
    window x channel x lead ``np.interp`` loop.  The baseline-skip rule
    is reproduced exactly: ``|baseline| < 1e-9`` contributes zero,
    while a NaN baseline (masked telemetry) still poisons the sum just
    as the division in the loop path does.
    """
    from repro.core.prediction import _batch_interp

    n_w = stack.values.shape[0]
    offsets = -np.array((baseline_lead_h,) + tuple(leads_h)) * timeutil.HOUR_S
    rel_q = np.broadcast_to(offsets, (n_w, offsets.size))
    sampled = _batch_interp(stack, rel_q)  # (n_w, n_channels, 1 + n_leads)
    order = [PREDICTOR_CHANNELS.index(ch) for ch in _AGGREGATE_CHANNELS]
    baseline = sampled[:, order, :1]  # (n_w, n_ch, 1)
    values = sampled[:, order, 1:]  # (n_w, n_ch, n_leads)
    keep = ~(np.abs(baseline) < 1e-9)  # NaN baselines stay in, as in the loop
    ratio = np.divide(
        values,
        baseline,
        out=np.ones_like(values),
        where=np.broadcast_to(keep, values.shape),
    )
    summed = np.sum(ratio - 1.0, axis=0)  # skipped entries contribute 1-1=0
    return {ch: summed[j] for j, ch in enumerate(_AGGREGATE_CHANNELS)}


def aggregate_leadup(
    windows: Sequence[LeadupWindow],
    leads_h: Tuple[float, ...] = DEFAULT_LEADS_H,
    baseline_lead_h: float = 6.5,
) -> LeadupAggregate:
    """Aggregate positive lead-up windows into the Fig 12 curves.

    Same-geometry windows (the output of one
    :class:`~repro.simulation.windows.WindowSynthesizer`) are sampled
    in a single vectorized interpolation pass; heterogeneous windows
    fall back to the per-window reference loop.

    Args:
        windows: Positive (CMF-terminated) windows.
        leads_h: Lead times to sample.
        baseline_lead_h: Lead at which each channel's baseline is read
            (just before the precursor window opens).

    Raises:
        ValueError: if no positive windows are given.
    """
    positives = [w for w in windows if w.is_positive]
    if not positives:
        raise ValueError("no positive lead-up windows to aggregate")
    from repro.core.prediction import stack_windows

    stack = stack_windows(positives)
    if stack is None:
        sums = _summed_changes_loop(positives, tuple(leads_h), baseline_lead_h)
    else:
        sums = _summed_changes_batch(stack, tuple(leads_h), baseline_lead_h)
    count = len(positives)
    return LeadupAggregate(
        leads_h=tuple(leads_h),
        relative_change={ch: sums[ch] / count for ch in _AGGREGATE_CHANNELS},
        windows_used=count,
    )
