"""The lead-up to a CMF: Fig 12.

Aggregates the coolant-monitor telemetry over the six hours before
every CMF, expressed as the mean relative change of each channel
versus its value at the start of the lead-up window.  The paper's
findings this reproduces:

* coolant flow stays flat until ~30 minutes out, then collapses,
* inlet temperature sags by up to ~7 % around four hours out, then
  snaps up by ~8 % in the final half hour,
* outlet temperature sags ~5 % from about three hours out.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence, Tuple

import numpy as np

from repro import timeutil
from repro.simulation.windows import LeadupWindow
from repro.telemetry.records import Channel

#: Default lead times at which the aggregate is sampled (hours).
DEFAULT_LEADS_H: Tuple[float, ...] = (6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.0)


@dataclasses.dataclass(frozen=True)
class LeadupAggregate:
    """Mean relative channel change vs lead time before a CMF."""

    leads_h: Tuple[float, ...]
    #: channel -> vector of mean relative changes, aligned to leads_h.
    relative_change: Dict[Channel, np.ndarray]
    windows_used: int

    def change_at(self, channel: Channel, lead_h: float) -> float:
        """Interpolated mean relative change at one lead time."""
        leads = np.array(self.leads_h)
        order = np.argsort(leads)
        return float(
            np.interp(lead_h, leads[order], self.relative_change[channel][order])
        )

    @property
    def inlet_min_change(self) -> float:
        """Deepest inlet sag over the window (paper: about -7 %)."""
        return float(np.min(self.relative_change[Channel.INLET_TEMPERATURE]))

    @property
    def inlet_final_change(self) -> float:
        """Inlet change at the failure itself (paper: up to +8 %)."""
        return self.change_at(Channel.INLET_TEMPERATURE, 0.0)

    @property
    def outlet_min_change(self) -> float:
        """Deepest outlet sag (paper: about -5 %)."""
        return float(np.min(self.relative_change[Channel.OUTLET_TEMPERATURE]))

    @property
    def flow_stable_until_h(self) -> float:
        """Largest lead at which flow has moved less than 2 %.

        The paper: flow "continues to remain relatively stable until
        just a half hour before a CMF".
        """
        flow = self.relative_change[Channel.FLOW]
        leads = np.array(self.leads_h)
        moved = np.abs(flow) >= 0.02
        if not moved.any():
            return 0.0
        return float(leads[moved].max())


def aggregate_leadup(
    windows: Sequence[LeadupWindow],
    leads_h: Tuple[float, ...] = DEFAULT_LEADS_H,
    baseline_lead_h: float = 6.5,
) -> LeadupAggregate:
    """Aggregate positive lead-up windows into the Fig 12 curves.

    Args:
        windows: Positive (CMF-terminated) windows.
        leads_h: Lead times to sample.
        baseline_lead_h: Lead at which each channel's baseline is read
            (just before the precursor window opens).

    Raises:
        ValueError: if no positive windows are given.
    """
    positives = [w for w in windows if w.is_positive]
    if not positives:
        raise ValueError("no positive lead-up windows to aggregate")
    channels = (
        Channel.FLOW,
        Channel.INLET_TEMPERATURE,
        Channel.OUTLET_TEMPERATURE,
        Channel.POWER,
        Channel.DC_TEMPERATURE,
        Channel.DC_HUMIDITY,
    )
    sums: Dict[Channel, np.ndarray] = {
        ch: np.zeros(len(leads_h)) for ch in channels
    }
    for window in positives:
        for channel in channels:
            baseline = window.lead_value(
                channel, baseline_lead_h * timeutil.HOUR_S
            )
            if abs(baseline) < 1e-9:
                continue
            values = np.array(
                [
                    window.lead_value(channel, lead * timeutil.HOUR_S)
                    for lead in leads_h
                ]
            )
            sums[channel] += values / baseline - 1.0
    count = len(positives)
    return LeadupAggregate(
        leads_h=tuple(leads_h),
        relative_change={ch: sums[ch] / count for ch in channels},
        windows_used=count,
    )
