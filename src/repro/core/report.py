"""Paper-vs-measured reporting.

Every benchmark regenerates one figure of the paper and prints a table
of the figure's headline numbers next to what the reproduction
measured.  The row builders here are shared between the benchmarks,
EXPERIMENTS.md generation, and the examples.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class ReportRow:
    """One paper-vs-measured comparison."""

    figure: str
    metric: str
    paper_value: float
    measured_value: float
    unit: str = ""

    @property
    def relative_error(self) -> float:
        """|measured - paper| / |paper| (inf when the paper value is 0).

        A NaN measurement (an analysis with no data, e.g. empty
        windows) reports NaN rather than letting the comparison
        silently claim agreement or blow-up.
        """
        if np.isnan(self.measured_value) or np.isnan(self.paper_value):
            return float("nan")
        if self.paper_value == 0:
            return float("inf") if self.measured_value != 0 else 0.0
        return abs(self.measured_value - self.paper_value) / abs(self.paper_value)

    def formatted(self) -> str:
        return (
            f"{self.figure:<8} {self.metric:<46} "
            f"paper={format_value(self.paper_value):>10} "
            f"measured={format_value(self.measured_value):>10} {self.unit}"
        )


def format_value(value: float) -> str:
    """``{:.4g}`` rendering, with NaN shown as ``n/a``.

    NaN measured values are legitimate (an empty-window analysis);
    ``nan`` propagating into tables and EXPERIMENTS.md reads like a
    bug, so render the honest ``n/a`` instead.
    """
    if np.isnan(value):
        return "n/a"
    return f"{value:.4g}"


def format_table(rows: Iterable[ReportRow], title: Optional[str] = None) -> str:
    """A printable paper-vs-measured table."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    header = (
        f"{'figure':<8} {'metric':<46} {'paper':>16} {'measured':>19}"
    )
    lines.append(header)
    lines.append("=" * len(header))
    lines.extend(row.formatted() for row in rows)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A terminal sparkline of a series (for the examples).

    Resamples the series to ``width`` points and renders it with
    eighth-block characters.
    """
    blocks = " ▁▂▃▄▅▆▇█"
    data = np.asarray(list(values), dtype="float64")
    data = data[np.isfinite(data)]
    if data.size == 0:
        return ""
    if data.size > width:
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array(
            [data[a:b].mean() for a, b in zip(edges, edges[1:]) if b > a]
        )
    lo, hi = data.min(), data.max()
    if hi - lo < 1e-12:
        return blocks[4] * len(data)
    scaled = (data - lo) / (hi - lo) * (len(blocks) - 2) + 1
    return "".join(blocks[int(round(s))] for s in scaled)
