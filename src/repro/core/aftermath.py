"""What follows a CMF: Figs 14 and 15.

Fig 14(a): the rate of (deduplicated) non-CMF fatal failures within
3, 6, ..., 48 hours of a CMF, normalized to the 3-hour rate.  Fig
14(b): the category mix of those post-CMF failures.  Fig 15: where
the post-CMF failures land relative to the epicenter — the paper's
point being that they land anywhere, not near the epicenter.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants, timeutil
from repro.core.failure_analysis import (
    DeduplicatedFailures,
    deduplicate_cmf_events,
    deduplicate_noncmf_events,
)
from repro.facility.topology import RackId
from repro.telemetry.ras import RasLog

#: The lag-bucket edges of Fig 14(a), hours after a CMF.
DEFAULT_LAG_BUCKETS_H: Tuple[float, ...] = (3.0, 6.0, 12.0, 24.0, 36.0, 48.0)


@dataclasses.dataclass(frozen=True)
class StormSpreadExample:
    """One Fig 15 example: an epicenter and the failures that followed."""

    epicenter: RackId
    cmf_epoch_s: float
    follower_racks: Tuple[RackId, ...]

    def max_distance(self) -> float:
        """Largest floor distance from the epicenter to a follower."""
        if not self.follower_racks:
            return 0.0
        return max(
            float(np.hypot(r.row - self.epicenter.row, r.col - self.epicenter.col))
            for r in self.follower_racks
        )

    def is_local(self, radius: float = 2.0) -> bool:
        """Whether every follower is within ``radius`` of the epicenter."""
        return self.max_distance() <= radius


@dataclasses.dataclass(frozen=True)
class AftermathAnalysis:
    """Figs 14-15: the post-CMF failure characterization."""

    #: Bucketed rates normalized to the first bucket: the value at h is
    #: (failures per hour in the bucket ending at h) divided by the
    #: failures per hour in the first (0..3 h) bucket.
    relative_rates: Dict[float, float]
    #: Post-CMF failure category mix (fractions summing to ~1).
    category_mix: Dict[str, float]
    #: Fig 15 example storms.
    examples: Tuple[StormSpreadExample, ...]
    #: Number of CMFs and post-CMF non-CMF failures analyzed.
    cmf_count: int
    followup_count: int

    @property
    def rate_6h(self) -> float:
        """Paper: the 6 h rate is below 75 % of the 3 h rate."""
        return self.relative_rates[6.0]

    @property
    def rate_48h(self) -> float:
        """Paper: the 48 h rate drops to ~10 % of the 3 h rate."""
        return self.relative_rates[48.0]

    @property
    def dominant_category(self) -> str:
        """Paper: "AC to DC power" — half of all post-CMF failures."""
        return max(self.category_mix, key=self.category_mix.get)

    def nonlocal_fraction(self, radius: float = 2.0) -> float:
        """Fraction of examples whose followers escape the epicenter
        neighbourhood — the paper's Fig 15 point."""
        if not self.examples:
            return 0.0
        nonlocal_count = sum(1 for e in self.examples if not e.is_local(radius))
        return nonlocal_count / len(self.examples)


def analyze_aftermath(
    ras_log: RasLog,
    lag_buckets_h: Sequence[float] = DEFAULT_LAG_BUCKETS_H,
    example_count: int = 3,
    min_followers: int = 3,
) -> AftermathAnalysis:
    """Run the Fig 14/15 analysis on a raw RAS log.

    The *failure rate at h hours* is the per-hour rate of
    deduplicated non-CMF failures whose lag after the nearest
    preceding CMF falls in the bucket ending at ``h`` (buckets are
    delimited by consecutive ``lag_buckets_h`` entries, the first
    starting at zero), normalized to the first bucket's rate.

    Args:
        ras_log: Raw RAS log (storms included; dedup happens here).
        lag_buckets_h: Window widths of Fig 14(a).
        example_count: How many Fig 15 examples to extract.
        min_followers: Minimum follower failures for an example storm.

    Raises:
        ValueError: if the log contains no CMFs.
    """
    cmfs = deduplicate_cmf_events(ras_log)
    noncmfs = deduplicate_noncmf_events(ras_log)
    if cmfs.count == 0:
        raise ValueError("no CMF events in the RAS log")

    cmf_times = cmfs.times()
    lags_h: List[float] = []
    categories: Dict[str, int] = {}
    followers_by_cmf: Dict[int, List[RackId]] = {}

    max_window_h = max(lag_buckets_h)
    for event in noncmfs.events:
        index = int(np.searchsorted(cmf_times, event.epoch_s, side="right")) - 1
        if index < 0:
            continue
        lag_h = (event.epoch_s - cmf_times[index]) / timeutil.HOUR_S
        if lag_h <= 0 or lag_h > max_window_h:
            continue
        lags_h.append(lag_h)
        categories[event.category] = categories.get(event.category, 0) + 1
        followers_by_cmf.setdefault(index, []).append(event.rack_id)

    lags = np.array(lags_h)
    rates: Dict[float, float] = {}
    base_rate = None
    previous_edge = 0.0
    for window_h in lag_buckets_h:
        width = window_h - previous_edge
        if width <= 0:
            raise ValueError("lag buckets must be strictly increasing")
        count = float(np.sum((lags > previous_edge) & (lags <= window_h)))
        rate = count / width
        if base_rate is None:
            base_rate = rate if rate > 0 else 1.0
        rates[float(window_h)] = rate / base_rate
        previous_edge = window_h

    total = max(1, sum(categories.values()))
    mix = {name: count / total for name, count in categories.items()}

    # Fig 15 examples: the busiest storms.
    ordered = sorted(
        followers_by_cmf.items(), key=lambda kv: len(kv[1]), reverse=True
    )
    examples = []
    for index, followers in ordered:
        if len(followers) < min_followers:
            break
        cmf_event = cmfs.events[index]
        examples.append(
            StormSpreadExample(
                epicenter=cmf_event.rack_id,
                cmf_epoch_s=cmf_event.epoch_s,
                follower_racks=tuple(followers),
            )
        )
        if len(examples) >= example_count:
            break

    return AftermathAnalysis(
        relative_rates=rates,
        category_mix=mix,
        examples=tuple(examples),
        cmf_count=cmfs.count,
        followup_count=int(lags.size),
    )
