"""What follows a CMF: Figs 14 and 15.

Fig 14(a): the rate of (deduplicated) non-CMF fatal failures within
3, 6, ..., 48 hours of a CMF, normalized to the 3-hour rate.  Fig
14(b): the category mix of those post-CMF failures.  Fig 15: where
the post-CMF failures land relative to the epicenter — the paper's
point being that they land anywhere, not near the epicenter.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants, timeutil
from repro.core.failure_analysis import (
    DeduplicatedFailures,
    deduplicate_cmf_events,
    deduplicate_noncmf_events,
)
from repro.facility.topology import RackId
from repro.telemetry.ras import RasLog

#: The lag-bucket edges of Fig 14(a), hours after a CMF.
DEFAULT_LAG_BUCKETS_H: Tuple[float, ...] = (3.0, 6.0, 12.0, 24.0, 36.0, 48.0)


@dataclasses.dataclass(frozen=True)
class StormSpreadExample:
    """One Fig 15 example: an epicenter and the failures that followed."""

    epicenter: RackId
    cmf_epoch_s: float
    follower_racks: Tuple[RackId, ...]

    def max_distance(self) -> float:
        """Largest floor distance from the epicenter to a follower."""
        if not self.follower_racks:
            return 0.0
        return max(
            float(np.hypot(r.row - self.epicenter.row, r.col - self.epicenter.col))
            for r in self.follower_racks
        )

    def is_local(self, radius: float = 2.0) -> bool:
        """Whether every follower is within ``radius`` of the epicenter."""
        return self.max_distance() <= radius


@dataclasses.dataclass(frozen=True)
class AftermathAnalysis:
    """Figs 14-15: the post-CMF failure characterization."""

    #: Bucketed rates normalized to the first bucket: the value at h is
    #: (failures per hour in the bucket ending at h) divided by the
    #: failures per hour in the first (0..3 h) bucket.
    relative_rates: Dict[float, float]
    #: Post-CMF failure category mix (fractions summing to ~1).
    category_mix: Dict[str, float]
    #: Fig 15 example storms.
    examples: Tuple[StormSpreadExample, ...]
    #: Number of CMFs and post-CMF non-CMF failures analyzed.
    cmf_count: int
    followup_count: int

    @property
    def rate_6h(self) -> float:
        """Paper: the 6 h rate is below 75 % of the 3 h rate."""
        return self.relative_rates[6.0]

    @property
    def rate_48h(self) -> float:
        """Paper: the 48 h rate drops to ~10 % of the 3 h rate."""
        return self.relative_rates[48.0]

    @property
    def dominant_category(self) -> str:
        """Paper: "AC to DC power" — half of all post-CMF failures."""
        return max(self.category_mix, key=self.category_mix.get)

    def nonlocal_fraction(self, radius: float = 2.0) -> float:
        """Fraction of examples whose followers escape the epicenter
        neighbourhood — the paper's Fig 15 point."""
        if not self.examples:
            return 0.0
        nonlocal_count = sum(1 for e in self.examples if not e.is_local(radius))
        return nonlocal_count / len(self.examples)


def analyze_aftermath(
    ras_log: RasLog,
    lag_buckets_h: Sequence[float] = DEFAULT_LAG_BUCKETS_H,
    example_count: int = 3,
    min_followers: int = 3,
) -> AftermathAnalysis:
    """Run the Fig 14/15 analysis on a raw RAS log.

    The *failure rate at h hours* is the per-hour rate of
    deduplicated non-CMF failures whose lag after the nearest
    preceding CMF falls in the bucket ending at ``h`` (buckets are
    delimited by consecutive ``lag_buckets_h`` entries, the first
    starting at zero), normalized to the first bucket's rate.

    Args:
        ras_log: Raw RAS log (storms included; dedup happens here).
        lag_buckets_h: Window widths of Fig 14(a).
        example_count: How many Fig 15 examples to extract.
        min_followers: Minimum follower failures for an example storm.

    Raises:
        ValueError: if the log contains no CMFs.
    """
    cmfs = deduplicate_cmf_events(ras_log)
    noncmfs = deduplicate_noncmf_events(ras_log)
    if cmfs.count == 0:
        raise ValueError("no CMF events in the RAS log")

    cmf_times = cmfs.times()
    max_window_h = max(lag_buckets_h)

    # One searchsorted pass maps every non-CMF failure to its nearest
    # preceding CMF; the per-event Python loop this replaces spent
    # interpreter time on each of the thousands of deduplicated events.
    event_times = np.array([e.epoch_s for e in noncmfs.events], dtype="float64")
    cmf_index = np.searchsorted(cmf_times, event_times, side="right") - 1
    lag_all_h = (
        event_times - cmf_times[np.clip(cmf_index, 0, None)]
    ) / timeutil.HOUR_S
    kept = (cmf_index >= 0) & (lag_all_h > 0) & (lag_all_h <= max_window_h)
    lags = lag_all_h[kept]

    # Category counts and follower lists keep first-appearance order
    # (dict insertion order), exactly as the event-at-a-time loop did.
    categories: Dict[str, int] = {}
    followers_by_cmf: Dict[int, List[RackId]] = {}
    for position in np.flatnonzero(kept):
        event = noncmfs.events[position]
        categories[event.category] = categories.get(event.category, 0) + 1
        followers_by_cmf.setdefault(int(cmf_index[position]), []).append(
            event.rack_id
        )

    edges = np.concatenate([[0.0], np.asarray(lag_buckets_h, dtype="float64")])
    widths = np.diff(edges)
    if np.any(widths <= 0):
        raise ValueError("lag buckets must be strictly increasing")
    # Counts in (edge_{i-1}, edge_i] via two searchsorted cuts of the
    # sorted lags instead of one masked scan per bucket.
    counts = np.diff(np.searchsorted(np.sort(lags), edges, side="right"))
    bucket_rates = counts / widths
    base_rate = bucket_rates[0] if bucket_rates[0] > 0 else 1.0
    rates: Dict[float, float] = {
        float(window_h): float(rate / base_rate)
        for window_h, rate in zip(lag_buckets_h, bucket_rates)
    }

    total = max(1, sum(categories.values()))
    mix = {name: count / total for name, count in categories.items()}

    # Fig 15 examples: the busiest storms.
    ordered = sorted(
        followers_by_cmf.items(), key=lambda kv: len(kv[1]), reverse=True
    )
    examples = []
    for index, followers in ordered:
        if len(followers) < min_followers:
            break
        cmf_event = cmfs.events[index]
        examples.append(
            StormSpreadExample(
                epicenter=cmf_event.rack_id,
                cmf_epoch_s=cmf_event.epoch_s,
                follower_racks=tuple(followers),
            )
        )
        if len(examples) >= example_count:
            break

    return AftermathAnalysis(
        relative_rates=rates,
        category_mix=mix,
        examples=tuple(examples),
        cmf_count=cmfs.count,
        followup_count=int(lags.size),
    )
