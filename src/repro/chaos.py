"""Deterministic chaos injection for the service layer.

Where :mod:`repro.faults` degrades the *data* (sensor dropouts,
spikes, delivery skew), this module degrades the *components*: it
makes subscribers crash and hang, consumers stall, the whole process
"die" mid-stream, and :mod:`repro.parallel` workers disappear — the
failure modes "Operational Data Analytics in Practice" reports as the
hard part of keeping monitoring pipelines alive in production.

Like the fault injector, chaos is **seed-derived and deterministic**:
a :class:`ChaosInjector` draws every rate-based decision from
per-subscriber generators spawned off one master seed, so the same
config injects the same events into the same delivery sequence.
Tests that need exact placement use the explicit ``crash_at`` /
``hang_at`` / ``kill_at_seq`` schedules, which key off bus sequence
numbers and are independent of timing entirely.

Injection points:

* :meth:`ChaosInjector.before_delivery` — called by the supervisor's
  wrapper on the subscriber's worker thread before each delivery; it
  raises :class:`ChaosCrash` (subscriber exception), sleeps past the
  watchdog deadline (hang), or sleeps briefly (slow consumer).
* :meth:`ChaosInjector.on_publish` — called on the publisher thread
  before a chunk reaches the write-ahead log or any queue; it raises
  :class:`ChaosProcessKill` to model the process dying, losing every
  in-flight queue (the harness then aborts the bus and recovers from
  the WAL).
* :class:`WorkerCrasher` — a picklable wrapper that SIGKILLs a
  process-pool worker the first time it sees a scheduled task index,
  exercising the :func:`repro.parallel.pmap` broken-pool retry path.
* :meth:`ChaosInjector.on_http_request` — called by the
  :mod:`repro.service.http` server per arriving request; it injects
  structured 500s or connection resets on a seeded (or explicit)
  schedule, exercising the collector adapters' retry/backoff paths
  deterministically.

:func:`run_chaos_matrix` drives the full crash/hang/kill x chunk-size
grid against :class:`~repro.service.live.LiveOperationsService` and
verifies recovery equivalence; the ``repro chaos`` CLI and the CI
chaos-smoke job are thin wrappers over it.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.service.bus import BusChunk


class ChaosCrash(RuntimeError):
    """An injected subscriber exception (isolated by the supervisor)."""


class ChaosProcessKill(RuntimeError):
    """An injected mid-stream process death.

    Raised from the bus's publish hook; callers must treat the service
    instance as dead (abort the bus, recover from the WAL).  It is
    *not* a subscriber error and the supervisor never catches it.
    """


@dataclasses.dataclass(frozen=True)
class ChaosConfig:
    """What to inject, and how often.

    Rate-based fields draw one uniform per category per delivery from
    a per-subscriber seeded stream; explicit schedules key off bus
    sample sequence numbers and fire exactly once each.

    Attributes:
        seed: Master seed for every rate-based decision.
        crash_rate: Probability a delivery raises :class:`ChaosCrash`.
        hang_rate: Probability a delivery sleeps ``hang_s`` (long
            enough to trip the supervisor's watchdog).
        slow_rate: Probability a delivery sleeps ``slow_s`` (a slow
            consumer, below the hang deadline).
        hang_s / slow_s: The respective stall durations.
        crash_at: Explicit ``(subscriber, start_seq)`` crash schedule.
        hang_at: Explicit ``(subscriber, start_seq)`` hang schedule.
        kill_at_seq: Kill the "process" when the chunk containing this
            sample sequence number is about to publish (the chunk is
            neither logged nor delivered).
        subscribers: Restrict rate-based injection to these subscriber
            names (``None`` = all supervised subscribers).
        http_error_rate: Probability an HTTP request is answered with
            a structured 500 instead of being served (the
            :mod:`repro.service.http` server's fault hook).
        http_reset_rate: Probability an HTTP request's connection is
            dropped without any response (a mid-flight reset).
        http_error_at / http_reset_at: Explicit request indices (the
            server's arrival counter) that fire exactly once each —
            the deterministic schedule collector retry tests use.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    hang_s: float = 0.2
    slow_s: float = 0.02
    crash_at: Tuple[Tuple[str, int], ...] = ()
    hang_at: Tuple[Tuple[str, int], ...] = ()
    kill_at_seq: Optional[int] = None
    subscribers: Optional[Tuple[str, ...]] = None
    http_error_rate: float = 0.0
    http_reset_rate: float = 0.0
    http_error_at: Tuple[int, ...] = ()
    http_reset_at: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name, rate in (
            ("crash_rate", self.crash_rate),
            ("hang_rate", self.hang_rate),
            ("slow_rate", self.slow_rate),
            ("http_error_rate", self.http_error_rate),
            ("http_reset_rate", self.http_reset_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.hang_s < 0 or self.slow_s < 0:
            raise ValueError("stall durations cannot be negative")


@dataclasses.dataclass
class ChaosCounters:
    """Injected events per subscriber (kills are counted bus-wide)."""

    crashes_injected: int = 0
    hangs_injected: int = 0
    slowdowns_injected: int = 0
    kills_injected: int = 0
    http_errors_injected: int = 0
    http_resets_injected: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class ChaosInjector:
    """Applies a :class:`ChaosConfig` at the supervisor's hook points.

    Determinism contract: each subscriber name maps to its own
    generator seeded by ``(config.seed, crc32(name))``, and every
    delivery draws the rate categories in a fixed order (crash, hang,
    slow) — so two injectors with the same config make identical
    decisions for identical per-subscriber delivery sequences,
    regardless of how deliveries interleave across subscribers.
    """

    def __init__(self, config: Optional[ChaosConfig] = None) -> None:
        self.config = config if config is not None else ChaosConfig()
        self.counters: Dict[str, ChaosCounters] = {}
        self._rngs: Dict[str, np.random.Generator] = {}
        self._crash_at = set(self.config.crash_at)
        self._hang_at = set(self.config.hang_at)
        self._fired: set = set()
        self._killed = False

    def _counters(self, name: str) -> ChaosCounters:
        counters = self.counters.get(name)
        if counters is None:
            counters = self.counters[name] = ChaosCounters()
        return counters

    def _rng(self, name: str) -> np.random.Generator:
        rng = self._rngs.get(name)
        if rng is None:
            entropy = (self.config.seed, zlib.crc32(name.encode()))
            rng = self._rngs[name] = np.random.default_rng(
                np.random.SeedSequence(entropy)
            )
        return rng

    def _targeted(self, name: str) -> bool:
        return self.config.subscribers is None or name in self.config.subscribers

    # -- supervisor hook points ---------------------------------------------------

    def before_delivery(self, name: str, start_seq: int) -> None:
        """Maybe crash, hang, or slow the delivery starting at ``start_seq``.

        Called on the subscriber's worker thread.  Raises
        :class:`ChaosCrash` for an injected exception; stalls inline
        for hangs and slowdowns.
        """
        cfg = self.config
        key = (name, start_seq)
        if key in self._crash_at and key not in self._fired:
            self._fired.add(key)
            self._counters(name).crashes_injected += 1
            raise ChaosCrash(f"injected crash in {name!r} at seq {start_seq}")
        if key in self._hang_at and key not in self._fired:
            self._fired.add(key)
            self._counters(name).hangs_injected += 1
            time.sleep(cfg.hang_s)
            return
        if not self._targeted(name):
            return
        if cfg.crash_rate > 0.0 and self._rng(name).random() < cfg.crash_rate:
            self._counters(name).crashes_injected += 1
            raise ChaosCrash(f"injected crash in {name!r} at seq {start_seq}")
        if cfg.hang_rate > 0.0 and self._rng(name).random() < cfg.hang_rate:
            self._counters(name).hangs_injected += 1
            time.sleep(cfg.hang_s)
        if cfg.slow_rate > 0.0 and self._rng(name).random() < cfg.slow_rate:
            self._counters(name).slowdowns_injected += 1
            time.sleep(cfg.slow_s)

    def on_publish(self, chunk: "BusChunk") -> None:
        """Kill the "process" when the scheduled chunk reaches publish.

        Runs before the WAL append and before any queue sees the
        chunk, so a kill loses the chunk entirely — the recovered
        service replays it from the source on resume.
        """
        kill_at = self.config.kill_at_seq
        if kill_at is None or self._killed:
            return
        if chunk.end_seq >= kill_at:
            self._killed = True
            self._counters("__bus__").kills_injected += 1
            raise ChaosProcessKill(
                f"injected process kill at chunk seqs "
                f"[{chunk.start_seq}, {chunk.end_seq}]"
            )

    # -- HTTP-server chaos --------------------------------------------------------

    def on_http_request(self, index: int) -> Optional[str]:
        """Fault decision for the ``index``-th HTTP request to arrive.

        Called by the :mod:`repro.service.http` server with its
        monotonically increasing arrival counter.  Returns ``"error"``
        (answer with a structured 500), ``"reset"`` (drop the
        connection without a response), or ``None`` (serve normally).

        Explicit ``http_error_at`` / ``http_reset_at`` indices fire
        exactly once each and take priority; rate-based decisions draw
        from the dedicated ``__http__`` stream in a fixed order
        (error, then reset), so a given seed produces the same fault
        schedule for the same request arrival order regardless of what
        the subscriber-side chaos streams consumed.
        """
        cfg = self.config
        key = ("__http__", index)
        if index in cfg.http_error_at and key not in self._fired:
            self._fired.add(key)
            self._counters("__http__").http_errors_injected += 1
            return "error"
        if index in cfg.http_reset_at and (key, "reset") not in self._fired:
            self._fired.add((key, "reset"))
            self._counters("__http__").http_resets_injected += 1
            return "reset"
        if cfg.http_error_rate > 0.0 and (
            self._rng("__http__").random() < cfg.http_error_rate
        ):
            self._counters("__http__").http_errors_injected += 1
            return "error"
        if cfg.http_reset_rate > 0.0 and (
            self._rng("__http__").random() < cfg.http_reset_rate
        ):
            self._counters("__http__").http_resets_injected += 1
            return "reset"
        return None

    # -- parallel-worker chaos ----------------------------------------------------

    def worker_crash_indices(self, num_tasks: int, rate: float) -> Tuple[int, ...]:
        """Deterministic task indices whose first execution dies.

        Drawn from the injector's ``__workers__`` stream so the
        schedule depends only on the seed, the task count, and the
        rate — never on pool size or completion order.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if num_tasks <= 0 or rate == 0.0:
            return ()
        draws = self._rng("__workers__").random(num_tasks)
        return tuple(int(i) for i in np.flatnonzero(draws < rate))


class WorkerCrasher:
    """Picklable wrapper that SIGKILLs a pool worker on schedule.

    Wraps a single-argument function for use with
    :func:`repro.parallel.pstarmap` over ``enumerate(items)`` — the
    first time a scheduled task index executes, a marker file is
    written and the worker process kills itself, breaking the pool;
    on resubmission the marker suppresses the crash, so the retried
    pool (or the serial fallback) completes the work.
    """

    def __init__(
        self,
        fn: Callable[..., object],
        crash_indices: Sequence[int],
        marker_dir: "str | Path",
    ) -> None:
        self.fn = fn
        self.crash_indices = tuple(int(i) for i in crash_indices)
        self.marker_dir = str(marker_dir)

    def __call__(self, index: int, item: object) -> object:
        if index in self.crash_indices:
            marker = Path(self.marker_dir) / f"crashed-{index}"
            if not marker.exists():
                marker.touch()
                os.kill(os.getpid(), signal.SIGKILL)
        return self.fn(item)


# -- the chaos matrix (CLI / CI smoke) --------------------------------------------

#: Scenarios the matrix knows how to run.
CHAOS_SCENARIOS = ("crash", "hang", "kill")


def _rollup_fingerprint(service) -> Dict[float, np.ndarray]:
    """Per-level (epoch, samples, totals) fingerprint for equivalence."""
    from repro.telemetry.records import CHANNELS

    fingerprint = {}
    for resolution in service.rollups.resolutions_s:
        parts = []
        for channel in CHANNELS:
            window = service.rollups.window(
                resolution, channel, -np.inf, np.inf
            )
            parts.append(
                np.concatenate(
                    [
                        window.epoch,
                        window.samples.astype("float64"),
                        window.total.ravel(),
                        window.count.astype("float64").ravel(),
                        window.usable.astype("float64").ravel(),
                    ]
                )
            )
        fingerprint[resolution] = np.concatenate(parts)
    return fingerprint


def _fingerprints_match(
    baseline: Dict[float, np.ndarray], candidate: Dict[float, np.ndarray]
) -> bool:
    if baseline.keys() != candidate.keys():
        return False
    return all(
        baseline[k].shape == candidate[k].shape
        and np.allclose(baseline[k], candidate[k], rtol=1e-9, atol=1e-9, equal_nan=True)
        for k in baseline
    )


def run_chaos_matrix(
    days: int = 4,
    seed: int = 7,
    dt_s: float = 1800.0,
    chunk_sizes: Sequence[int] = (1, 64),
    scenarios: Sequence[str] = CHAOS_SCENARIOS,
    workdir: "str | Path | None" = None,
) -> Dict[str, object]:
    """Run the crash/hang/kill x chunk-size grid and verify recovery.

    For every scenario and chunk size the matrix replays the same
    simulated realization through a supervised
    :class:`~repro.service.live.LiveOperationsService` (rollups +
    CUSUM) with chaos injected, then checks the final rollup store —
    and, for kills, the post-:meth:`recover` store — against an
    undisturbed baseline replay.  Returns a summary dict (also the
    ``repro chaos`` JSON payload) whose ``"ok"`` field gates CI.
    """
    import shutil
    import tempfile

    from repro.service.live import (
        DurabilityConfig,
        LiveOperationsService,
        ServiceConfig,
        SupervisorConfig,
    )
    from repro.simulation import FacilityEngine, MiraScenario

    unknown = [s for s in scenarios if s not in CHAOS_SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenarios {unknown}; choose from {CHAOS_SCENARIOS}")
    result = FacilityEngine(
        MiraScenario.demo(days=days, seed=seed, dt_s=dt_s)
    ).run()
    database = result.database
    num_samples = database.num_samples
    owned_workdir = workdir is None
    root = Path(tempfile.mkdtemp(prefix="repro-chaos-")) if owned_workdir else Path(workdir)
    root.mkdir(parents=True, exist_ok=True)

    supervision = SupervisorConfig(
        deadline_s=0.05, backoff_base_s=0.0, poll_interval_s=0.01
    )
    matrix: List[Dict[str, object]] = []
    try:
        for chunk_size in chunk_sizes:
            config = ServiceConfig(
                chunk_size=int(chunk_size),
                analytics_policy="block",
                supervision=supervision,
            )
            baseline = LiveOperationsService(database, cusum=True, config=config)
            baseline.run()
            expected = _rollup_fingerprint(baseline)
            expected_alarms = tuple(baseline.cusum_subscriber.alarms)

            for scenario in scenarios:
                cell: Dict[str, object] = {
                    "scenario": scenario,
                    "chunk_size": int(chunk_size),
                }
                target_seq = num_samples // 2
                aligned = (target_seq // int(chunk_size)) * int(chunk_size)
                if scenario == "crash":
                    chaos = ChaosInjector(
                        ChaosConfig(crash_at=(("rollups", aligned),))
                    )
                elif scenario == "hang":
                    chaos = ChaosInjector(
                        ChaosConfig(hang_at=(("rollups", aligned),), hang_s=0.2)
                    )
                else:
                    chaos = ChaosInjector(ChaosConfig(kill_at_seq=target_seq))

                if scenario == "kill":
                    state_dir = root / f"kill-{chunk_size}"
                    shutil.rmtree(state_dir, ignore_errors=True)
                    durable = dataclasses.replace(
                        config,
                        durability=DurabilityConfig(directory=state_dir),
                    )
                    service = LiveOperationsService(
                        database, cusum=True, config=durable, chaos=chaos
                    )
                    killed = False
                    try:
                        service.run()
                    except ChaosProcessKill:
                        killed = True
                        service.abort()
                    cell["killed"] = killed
                    recovered = LiveOperationsService.recover(
                        database, cusum=True, config=durable
                    )
                    report = recovered.run()
                    cell["wal_records_replayed"] = (
                        recovered.recovery.wal_records if recovered.recovery else 0
                    )
                    candidate = _rollup_fingerprint(recovered)
                    alarms = tuple(recovered.cusum_subscriber.alarms)
                    ok = (
                        killed
                        and _fingerprints_match(expected, candidate)
                        and alarms == expected_alarms
                    )
                else:
                    service = LiveOperationsService(
                        database, cusum=True, config=config, chaos=chaos
                    )
                    report = service.run()
                    counters = report.supervision.get("rollups")
                    candidate = _rollup_fingerprint(service)
                    alarms = tuple(service.cusum_subscriber.alarms)
                    injected = (
                        counters is not None
                        and (counters.crashes + counters.hangs) >= 1
                    )
                    cell["events"] = [
                        (event.kind, event.subscriber) for event in report.events
                    ]
                    ok = (
                        injected
                        and _fingerprints_match(expected, candidate)
                        and alarms == expected_alarms
                    )
                cell["rollups_match"] = _fingerprints_match(expected, candidate)
                cell["alarms_match"] = alarms == expected_alarms
                cell["ok"] = bool(ok)
                matrix.append(cell)
    finally:
        if owned_workdir:
            shutil.rmtree(root, ignore_errors=True)

    return {
        "scenario": f"demo(days={days}, seed={seed}, dt_s={dt_s:g})",
        "samples": int(num_samples),
        "chunk_sizes": [int(c) for c in chunk_sizes],
        "cells": matrix,
        "ok": all(cell["ok"] for cell in matrix),
    }
