"""Deterministic sensor-fault injection for telemetry streams.

Real coolant monitors do not deliver the pristine matrices the
simulator emits: readings drop out, sensors stick or spike, monitor
clocks skew, rows arrive twice, and whole monitors go dark around the
very incidents one most wants data for.  This package perturbs a clean
:class:`~repro.telemetry.database.EnvironmentalDatabase` realization
into a realistically degraded delivery stream — and records the exact
ground truth of every injected fault so tests can assert that the
hardened pipeline accounts for them.

* :class:`FaultConfig` — calibrated fault rates (frozen, hashable, and
  ``repr``-stable so it can participate in dataset cache keys),
* :class:`FaultInjector` — applies the faults; same config + seed
  always yields a bit-identical faulted stream,
* :class:`FaultTruth` / :class:`InjectedFault` — per-kind ground-truth
  masks and the discrete fault event list.
"""

from repro.faults.injector import (
    FaultConfig,
    FaultInjector,
    FaultTruth,
    InjectedFault,
)

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultTruth",
    "InjectedFault",
]
