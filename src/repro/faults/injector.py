"""The fault injector: clean telemetry in, degraded delivery out.

The injector models the failure modes long-term monitoring deployments
actually see (dropped reports, stuck-at sensors, transient spikes,
slow calibration drift, duplicated deliveries, clock skew, and monitor
blackouts around incidents) as a *post-processing* stage: the physics
simulation stays untouched, and the same clean realization can be
degraded under many fault regimes.

Determinism contract
--------------------

All randomness comes from a single :class:`numpy.random.SeedSequence`
supplied at construction, and :meth:`FaultInjector.apply` rebuilds its
generator on every call, so

* the same ``(FaultConfig, seed, clean database)`` triple always
  produces a bit-identical faulted database and truth, and
* calling :meth:`~FaultInjector.apply` twice gives identical results.

Faults are drawn in a fixed order (dropout, floor gaps, stuck, spike,
drift, duplicates, skew); adding a new fault kind must append to that
order, never reorder it, or existing realizations change.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import timeutil
from repro.telemetry.database import EnvironmentalDatabase, IngestPolicy
from repro.telemetry.records import CHANNELS, Channel

#: Channels the coolant monitor measures — the ones faults can touch.
#: Utilization comes from the scheduler-log join and is never faulted.
SENSOR_CHANNELS: Tuple[Channel, ...] = tuple(c for c in CHANNELS if c.is_sensor)

SeedLike = Union[int, np.random.SeedSequence]


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Calibrated fault rates and magnitudes.

    The defaults match the issue's calibration targets: ~1 % per-rack
    report dropout, ~0.1 % stuck/spike incidence, clock skew bounded
    by two sample periods.  The dataclass is frozen and hashable so a
    config can sit inside :class:`~repro.simulation.config.SimulationConfig`
    and feed ``repr``-keyed dataset caches.
    """

    #: Probability that one rack's report is missing from a snapshot.
    dropout_rate: float = 0.01
    #: Whole-floor monitoring gaps (network/DB outages), per year.
    floor_gap_rate_per_year: float = 6.0
    #: Floor-gap duration range, seconds.
    floor_gap_min_s: float = 900.0
    floor_gap_max_s: float = 7200.0
    #: Expected stuck-at runs per (sample, rack) cell.  Each run picks
    #: one sensor channel and freezes it for ``stuck_min_samples`` ..
    #: ``stuck_max_samples`` consecutive samples.
    stuck_rate: float = 0.001
    stuck_min_samples: int = 6
    stuck_max_samples: int = 24
    #: Expected transient spikes per (sample, rack) cell.  Each spike
    #: perturbs one sensor channel for a single sample.
    spike_rate: float = 0.001
    #: Spike magnitude range, in robust sigmas of the channel's
    #: sample-to-sample differences (well above any scrub threshold).
    spike_min_sigma: float = 10.0
    spike_max_sigma: float = 25.0
    #: Slow calibration-drift episodes per year (one rack, one channel
    #: each; the value ramps linearly up to ``drift_max_sigma``).
    drift_rate_per_year: float = 2.0
    drift_min_s: float = 7.0 * 86400.0
    drift_max_s: float = 28.0 * 86400.0
    drift_max_sigma: float = 4.0
    #: Probability a snapshot is delivered twice.
    duplicate_rate: float = 0.002
    #: Probability a snapshot's delivery is delayed (clock skew /
    #: store-and-forward), and the delay bound in sample periods.
    skew_rate: float = 0.01
    skew_max_periods: float = 2.0
    #: Monitor blackout before each scheduled CMF event: the failing
    #: rack's sensors go dark this many seconds before the event fires
    #: (the monitor shares the rack's fate).  0 disables blackouts.
    blackout_before_cmf_s: float = 1800.0

    def __post_init__(self) -> None:
        for name in (
            "dropout_rate",
            "stuck_rate",
            "spike_rate",
            "duplicate_rate",
            "skew_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.stuck_min_samples < 2:
            raise ValueError("stuck runs must span at least 2 samples")
        if self.stuck_max_samples < self.stuck_min_samples:
            raise ValueError("stuck_max_samples < stuck_min_samples")
        if self.floor_gap_max_s < self.floor_gap_min_s:
            raise ValueError("floor_gap_max_s < floor_gap_min_s")
        if self.drift_max_s < self.drift_min_s:
            raise ValueError("drift_max_s < drift_min_s")
        if self.spike_max_sigma < self.spike_min_sigma:
            raise ValueError("spike_max_sigma < spike_min_sigma")
        if self.skew_max_periods < 0:
            raise ValueError("skew_max_periods cannot be negative")


@dataclasses.dataclass(frozen=True)
class InjectedFault:
    """One discrete injected fault, for human-readable ground truth."""

    kind: str
    start_epoch_s: float
    end_epoch_s: float
    rack: Optional[int] = None
    channel: Optional[Channel] = None

    @property
    def duration_s(self) -> float:
        return self.end_epoch_s - self.start_epoch_s


@dataclasses.dataclass
class FaultTruth:
    """Ground truth of everything the injector did.

    Masks are indexed against the *clean* realization's sample grid
    (``epoch_s``), not the faulted database's — floor gaps remove rows
    entirely, so the faulted store can be shorter.
    """

    #: The clean realization's timestamps, shape ``(n,)``.
    epoch_s: np.ndarray
    #: Rack reports dropped from a snapshot, shape ``(n, racks)``.
    dropout: np.ndarray
    #: Whole-floor gap rows (snapshot never delivered), shape ``(n,)``.
    floor_gap: np.ndarray
    #: Pre-CMF monitor blackout cells, shape ``(n, racks)``.
    blackout: np.ndarray
    #: Stuck-at cells per channel, each shape ``(n, racks)``.
    stuck: Dict[Channel, np.ndarray]
    #: Transient-spike cells per channel, each shape ``(n, racks)``.
    spike: Dict[Channel, np.ndarray]
    #: Slow-drift cells per channel, each shape ``(n, racks)``.
    drift: Dict[Channel, np.ndarray]
    #: Rows delivered twice, shape ``(n,)``.
    duplicated: np.ndarray
    #: Per-row delivery delay, seconds, shape ``(n,)`` (0 = on time).
    delivery_delay_s: np.ndarray
    #: Every discrete fault, in injection order.
    faults: List[InjectedFault]

    def missing_mask(self) -> np.ndarray:
        """Cells whose sensor values were never delivered, ``(n, racks)``."""
        return self.dropout | self.blackout | self.floor_gap[:, None]

    def corrupted_mask(self, channel: Channel) -> np.ndarray:
        """Cells whose delivered value is wrong for ``channel``."""
        shape = self.dropout.shape
        out = np.zeros(shape, dtype=bool)
        for masks in (self.stuck, self.spike, self.drift):
            if channel in masks:
                out |= masks[channel]
        return out

    def summary(self) -> str:
        n, racks = self.dropout.shape
        cells = max(n * racks, 1)
        lines = [
            f"faults over {n} samples x {racks} racks:",
            f"  dropout cells: {int(self.dropout.sum())}"
            f" ({self.dropout.sum() / cells:.3%})",
            f"  floor-gap rows: {int(self.floor_gap.sum())}",
            f"  blackout cells: {int(self.blackout.sum())}",
            f"  duplicated rows: {int(self.duplicated.sum())}",
            f"  skewed rows: {int(np.count_nonzero(self.delivery_delay_s))}",
        ]
        for kind, masks in (
            ("stuck", self.stuck),
            ("spike", self.spike),
            ("drift", self.drift),
        ):
            total = sum(int(m.sum()) for m in masks.values())
            lines.append(f"  {kind} cells: {total}")
        lines.append(f"  discrete faults: {len(self.faults)}")
        return "\n".join(lines)


class FaultInjector:
    """Degrades a clean telemetry realization deterministically.

    Args:
        config: Fault rates and magnitudes.
        seed: Seed (or :class:`~numpy.random.SeedSequence`) for the
            injector's private generator.  The facility engine passes a
            child spawned from the master simulation seed.
    """

    def __init__(self, config: FaultConfig, seed: SeedLike) -> None:
        self.config = config
        if isinstance(seed, np.random.SeedSequence):
            self._seed = seed
        else:
            self._seed = np.random.SeedSequence(int(seed))

    # -- public API --------------------------------------------------------

    def apply(
        self,
        database: EnvironmentalDatabase,
        dt_s: float,
        cmf_events: Iterable[Tuple[float, int]] = (),
    ) -> Tuple[EnvironmentalDatabase, FaultTruth]:
        """Produce a faulted copy of ``database`` plus ground truth.

        Args:
            database: The clean realization (left untouched).
            dt_s: Nominal sample period, seconds (bounds skew and the
                reorder window of the returned store).
            cmf_events: ``(epoch_s, flat_rack_index)`` pairs of
                scheduled CMF events, for pre-event blackouts.

        Returns:
            ``(faulted, truth)`` — a new lenient-policy database built
            by replaying the degraded stream in delivery order, and
            the fault ground truth against the clean grid.
        """
        rng = np.random.default_rng(self._seed)
        cfg = self.config
        epoch = np.array(database.epoch_s, dtype="float64")
        n = len(epoch)
        racks = database.num_racks
        if n == 0:
            raise ValueError("cannot inject faults into an empty database")
        values = {
            ch: np.array(database.channel(ch).values, dtype="float64")
            for ch in CHANNELS
        }
        span_s = float(epoch[-1] - epoch[0]) if n > 1 else dt_s
        years = max(span_s / timeutil.YEAR_S, 1e-9)
        faults: List[InjectedFault] = []

        # 1. Per-rack report dropout.
        dropout = rng.random((n, racks)) < cfg.dropout_rate

        # 2. Whole-floor monitoring gaps.
        floor_gap = np.zeros(n, dtype=bool)
        for _ in range(int(rng.poisson(cfg.floor_gap_rate_per_year * years))):
            start = float(rng.uniform(epoch[0], epoch[-1]))
            length = float(rng.uniform(cfg.floor_gap_min_s, cfg.floor_gap_max_s))
            lo = int(np.searchsorted(epoch, start, side="left"))
            hi = int(np.searchsorted(epoch, start + length, side="left"))
            if hi > lo:
                floor_gap[lo:hi] = True
                faults.append(
                    InjectedFault("floor_gap", float(epoch[lo]), start + length)
                )

        # 3. Pre-CMF monitor blackouts (not random: tied to the schedule).
        blackout = np.zeros((n, racks), dtype=bool)
        if cfg.blackout_before_cmf_s > 0:
            for event_epoch, flat in cmf_events:
                lo = int(
                    np.searchsorted(
                        epoch, event_epoch - cfg.blackout_before_cmf_s, side="left"
                    )
                )
                hi = int(np.searchsorted(epoch, event_epoch, side="left"))
                if hi > lo and 0 <= int(flat) < racks:
                    blackout[lo:hi, int(flat)] = True
                    faults.append(
                        InjectedFault(
                            "blackout",
                            float(epoch[lo]),
                            float(event_epoch),
                            rack=int(flat),
                        )
                    )

        # Robust per-channel scale of sample-to-sample differences, for
        # spike/drift magnitudes.  Guarded so a constant channel still
        # gets a visible perturbation.
        scale: Dict[Channel, float] = {}
        for ch in SENSOR_CHANNELS:
            diffs = np.abs(np.diff(values[ch], axis=0))
            med = float(np.nanmedian(diffs)) if diffs.size else 0.0
            scale[ch] = max(1.4826 * med / np.sqrt(2.0), 1e-3)

        # 4. Stuck-at runs.
        stuck = {ch: np.zeros((n, racks), dtype=bool) for ch in SENSOR_CHANNELS}
        for _ in range(int(rng.poisson(cfg.stuck_rate * n * racks))):
            t0 = int(rng.integers(0, n))
            rack = int(rng.integers(0, racks))
            ch = SENSOR_CHANNELS[int(rng.integers(0, len(SENSOR_CHANNELS)))]
            length = int(
                rng.integers(cfg.stuck_min_samples, cfg.stuck_max_samples + 1)
            )
            t1 = min(t0 + length, n)
            held = values[ch][t0, rack]
            if not np.isfinite(held):
                continue
            values[ch][t0:t1, rack] = held
            stuck[ch][t0:t1, rack] = True
            faults.append(
                InjectedFault(
                    "stuck",
                    float(epoch[t0]),
                    float(epoch[t1 - 1]),
                    rack=rack,
                    channel=ch,
                )
            )

        # 5. Transient spikes.
        spike = {ch: np.zeros((n, racks), dtype=bool) for ch in SENSOR_CHANNELS}
        for _ in range(int(rng.poisson(cfg.spike_rate * n * racks))):
            t0 = int(rng.integers(0, n))
            rack = int(rng.integers(0, racks))
            ch = SENSOR_CHANNELS[int(rng.integers(0, len(SENSOR_CHANNELS)))]
            magnitude = float(
                rng.uniform(cfg.spike_min_sigma, cfg.spike_max_sigma)
            ) * scale[ch]
            sign = 1.0 if rng.random() < 0.5 else -1.0
            if not np.isfinite(values[ch][t0, rack]):
                continue
            values[ch][t0, rack] += sign * magnitude
            spike[ch][t0, rack] = True
            faults.append(
                InjectedFault(
                    "spike", float(epoch[t0]), float(epoch[t0]), rack=rack, channel=ch
                )
            )

        # 6. Slow calibration drift.
        drift = {ch: np.zeros((n, racks), dtype=bool) for ch in SENSOR_CHANNELS}
        for _ in range(int(rng.poisson(cfg.drift_rate_per_year * years))):
            rack = int(rng.integers(0, racks))
            ch = SENSOR_CHANNELS[int(rng.integers(0, len(SENSOR_CHANNELS)))]
            start = float(rng.uniform(epoch[0], epoch[-1]))
            length = float(rng.uniform(cfg.drift_min_s, cfg.drift_max_s))
            lo = int(np.searchsorted(epoch, start, side="left"))
            hi = int(np.searchsorted(epoch, start + length, side="left"))
            if hi <= lo:
                continue
            ramp = np.linspace(0.0, cfg.drift_max_sigma * scale[ch], hi - lo)
            values[ch][lo:hi, rack] += ramp
            drift[ch][lo:hi, rack] = True
            faults.append(
                InjectedFault(
                    "drift",
                    float(epoch[lo]),
                    float(epoch[hi - 1]),
                    rack=rack,
                    channel=ch,
                )
            )

        # 7/8. Delivery faults: duplicates and bounded clock skew.
        duplicated = rng.random(n) < cfg.duplicate_rate
        skewed = rng.random(n) < cfg.skew_rate
        delays = np.where(
            skewed, rng.uniform(0.0, cfg.skew_max_periods * dt_s, n), 0.0
        )
        dup_delays = rng.uniform(0.25 * dt_s, cfg.skew_max_periods * dt_s, n)

        # Apply missingness last: a dropped cell is NaN no matter what
        # value fault also hit it.
        missing = dropout | blackout
        for ch in SENSOR_CHANNELS:
            values[ch][missing] = np.nan

        truth = FaultTruth(
            epoch_s=epoch,
            dropout=dropout,
            floor_gap=floor_gap,
            blackout=blackout,
            stuck=stuck,
            spike=spike,
            drift=drift,
            duplicated=duplicated,
            delivery_delay_s=delays,
            faults=faults,
        )

        faulted = self._deliver(
            epoch, values, floor_gap, duplicated, delays, dup_delays, racks, dt_s
        )
        return faulted, truth

    # -- delivery ----------------------------------------------------------

    @staticmethod
    def _deliver(
        epoch: np.ndarray,
        values: Dict[Channel, np.ndarray],
        floor_gap: np.ndarray,
        duplicated: np.ndarray,
        delays: np.ndarray,
        dup_delays: np.ndarray,
        racks: int,
        dt_s: float,
    ) -> EnvironmentalDatabase:
        """Replay the degraded stream in delivery order."""
        keep = ~floor_gap
        indices = np.flatnonzero(keep)
        delivery_times = epoch[indices] + delays[indices]
        dup_indices = np.flatnonzero(keep & duplicated)
        all_indices = np.concatenate([indices, dup_indices])
        all_times = np.concatenate(
            [delivery_times, epoch[dup_indices] + dup_delays[dup_indices]]
        )
        order = np.argsort(all_times, kind="stable")

        max_delay = float(delays.max(initial=0.0))
        max_dup = float(dup_delays.max(initial=0.0)) if len(dup_indices) else 0.0
        window = max(max_delay, max_dup) + dt_s
        out = EnvironmentalDatabase(
            num_racks=racks,
            capacity_hint=len(indices),
            policy=IngestPolicy.lenient(
                reorder_window_s=window, duplicate_policy="merge"
            ),
        )
        for pos in order:
            row = int(all_indices[pos])
            out.append_snapshot(
                float(epoch[row]), {ch: values[ch][row] for ch in CHANNELS}
            )
        out.flush()
        out.compact()
        return out
