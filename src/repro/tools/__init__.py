"""Maintenance tools: documentation generators and utilities."""
