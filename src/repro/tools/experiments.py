"""Regenerate EXPERIMENTS.md from the canonical dataset.

Run as ``python -m repro.tools.experiments`` (or via
``python -m repro experiments``).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Union

_HEADER = """# EXPERIMENTS — paper vs measured

Every figure of the paper's evaluation, regenerated from the canonical
six-year synthetic dataset (seed 20140101, hourly cadence; 300 s windows
for the lead-up/prediction studies) and compared to the number the paper
reports. Regenerate this file with:

```bash
python -m repro.tools.experiments
```

Absolute agreement is not the goal — the substrate is a synthetic
facility calibrated to the paper, not the authors' testbed — the *shape*
is: trends point the same way, extremes land on the same racks, flat
things stay flat, and the predictor's accuracy curve rises toward the
failure the same way. Binary checks (e.g. "hotspot (1, 8) detected")
use 1.0 = yes / 0.0 = no.

Benchmarks asserting these bands: `pytest benchmarks/ --benchmark-only`
(one file per figure; see DESIGN.md for the experiment index).

"""


def write_experiments_md(path: Union[str, Path] = "EXPERIMENTS.md") -> Path:
    """Build the full report and write the markdown file."""
    from repro.core.experiments import full_report, render_markdown
    from repro.simulation import WindowSynthesizer
    from repro.simulation.datasets import canonical_dataset

    result = canonical_dataset()
    synthesizer = WindowSynthesizer(result)
    positives = synthesizer.positive_windows()
    negatives = synthesizer.negative_windows(len(positives))
    sections = full_report(result, positives, negatives)
    body = render_markdown(sections)
    out = Path(path)
    out.write_text(_HEADER + body + "\n")
    return out


if __name__ == "__main__":
    print(f"wrote {write_experiments_md()}", file=sys.stderr)
