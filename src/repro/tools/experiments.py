"""Regenerate EXPERIMENTS.md from the canonical dataset.

Run as ``python -m repro.tools.experiments`` (or via
``python -m repro experiments``).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional, Union

_HEADER = """# EXPERIMENTS — paper vs measured

Every figure of the paper's evaluation, regenerated from the canonical
six-year synthetic dataset (seed 20140101, hourly cadence; 300 s windows
for the lead-up/prediction studies) and compared to the number the paper
reports. Regenerate this file with:

```bash
python -m repro.tools.experiments
```

Absolute agreement is not the goal — the substrate is a synthetic
facility calibrated to the paper, not the authors' testbed — the *shape*
is: trends point the same way, extremes land on the same racks, flat
things stay flat, and the predictor's accuracy curve rises toward the
failure the same way. Binary checks (e.g. "hotspot (1, 8) detected")
use 1.0 = yes / 0.0 = no.

Benchmarks asserting these bands: `pytest benchmarks/ --benchmark-only`
(one file per figure; see DESIGN.md for the experiment index).

"""


def write_experiments_md(
    path: Union[str, Path] = "EXPERIMENTS.md",
    workers: Optional[int] = None,
) -> Path:
    """Build the full report and write the markdown file.

    The figure sections and the 300 s window synthesis fan out over a
    process pool (see :func:`repro.core.experiments.full_report`); the
    file is byte-identical at any worker count.
    """
    from repro.core.experiments import full_report, render_markdown
    from repro.simulation.datasets import canonical_dataset

    result = canonical_dataset()
    sections = full_report(
        result, workers=workers, synthesize_windows=True
    )
    body = render_markdown(sections)
    out = Path(path)
    out.write_text(_HEADER + body + "\n")
    return out


if __name__ == "__main__":
    print(f"wrote {write_experiments_md()}", file=sys.stderr)
