"""The live operations service: bus -> rollups -> query engine.

:class:`LiveOperationsService` assembles the full service layer over a
finished simulation: a :class:`~repro.service.bus.ReplayBus` streams
the environmental database; the rollup store and (optionally) the
online CMF predictor + alert policy and the CUSUM detector ride the
stream as subscribers; the :class:`~repro.service.query.QueryEngine`
serves dashboard queries over the rollups — during the replay or
after it.

The rollup subscriber uses the ``block`` policy (the store must see
every sample for streaming/batch equivalence); the analytics
subscribers default to ``drop_oldest`` so a slow model can never stall
ingest.  All first-class subscribers take chunked delivery
(``ServiceConfig.chunk_size`` snapshots per vectorized update); ad-hoc
subscribers added to :attr:`LiveOperationsService.bus` default to the
per-sample shim and see the exact historical stream.

Resilience (see :mod:`repro.service.resilience` and
:mod:`repro.service.durability`): every first-class subscriber is
wrapped by a supervisor that isolates crashes, restarts with bounded
backoff, degrades hung blocking consumers, and repairs sequence gaps
from the source database.  With ``ServiceConfig.durability`` set, a
write-ahead log records every published chunk before fan-out and each
subscriber snapshots its component state periodically;
:meth:`LiveOperationsService.recover` rebuilds a killed service —
snapshot load + idempotent WAL replay — bit-identical to an
uninterrupted run, and resumes the stream where the log ends.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.chaos import ChaosCounters, ChaosInjector, ChaosProcessKill
from repro.monitoring.alerts import Alert, AlertEngine, AlertLog, AlertPolicy
from repro.monitoring.anomaly import CusumAlarm, CusumDetector
from repro.monitoring.online import OnlineCmfPredictor
from repro.service.bus import BusChunk, BusReport, ReplayBus
from repro.service.durability import (
    DurabilityConfig,
    RecoveryReport,
    SnapshotStore,
    WriteAheadLog,
    replay_component,
)
from repro.service.query import QueryEngine
from repro.service.resilience import (
    ServiceEvent,
    SourceReplayer,
    Supervisor,
    SupervisorConfig,
    SupervisorCounters,
)
from repro.service.rollup import DEFAULT_RESOLUTIONS_S, RollupStore
from repro.service.subscribers import (
    CusumSubscriber,
    PredictorSubscriber,
    RollupSubscriber,
)
from repro.telemetry.database import EnvironmentalDatabase


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the service layer."""

    #: Simulated seconds replayed per wall-clock second (inf = flat out).
    speedup: float = float("inf")
    #: Per-subscriber queue capacity.
    queue_capacity: int = 512
    #: Backpressure policy for the analytics subscribers (the rollup
    #: subscriber always blocks: it must see every sample).
    analytics_policy: str = "drop_oldest"
    #: Rollup resolution ladder, finest first.
    resolutions_s: Tuple[float, ...] = DEFAULT_RESOLUTIONS_S
    #: Query-cache capacity.
    cache_size: int = 1024
    #: Snapshots per published chunk.  The service subscribers consume
    #: whole chunks vectorized; results are identical at any chunk
    #: size (1 reproduces per-sample delivery exactly).
    chunk_size: int = 256
    #: Delivery granularity for the first-class subscribers:
    #: ``"chunks"`` (vectorized, the default) or ``"samples"`` (the
    #: per-sample shim; results are identical, throughput is not).
    delivery: str = "chunks"
    #: Supervision policy applied to every first-class subscriber.
    supervision: SupervisorConfig = SupervisorConfig()
    #: Crash durability (WAL + snapshots).  ``None`` = volatile, the
    #: historical behavior.
    durability: Optional[DurabilityConfig] = None


@dataclasses.dataclass(frozen=True)
class ServiceReport:
    """Everything one replay produced."""

    bus: BusReport
    alerts: Tuple[Alert, ...]
    alarms: Tuple[CusumAlarm, ...]
    predictions: int
    rollup_buckets: Dict[float, int]
    cache: Dict[str, float]
    #: Per-subscriber supervision counters.
    supervision: Dict[str, SupervisorCounters] = dataclasses.field(
        default_factory=dict
    )
    #: Time-ordered supervision event log.
    events: Tuple[ServiceEvent, ...] = ()
    #: Per-subscriber chaos-injection counters (chaos runs only).
    chaos: Dict[str, ChaosCounters] = dataclasses.field(default_factory=dict)
    #: How this service instance was recovered (``None`` = fresh start).
    recovery: Optional[RecoveryReport] = None


class LiveOperationsService:
    """Replay a realization through the full online stack.

    Args:
        database: The telemetry to re-serve as a live stream.
        model: Optional trained classifier
            (:func:`~repro.monitoring.online.train_online_predictor`);
            when given, the streaming predictor and alert engine ride
            the bus.
        alert_policy: Alert policy for the predictor stream.
        cusum: Attach the classical CUSUM detector as a subscriber.
        config: Service tunables.
        start_epoch_s / end_epoch_s: Replay window ``[start, end)``.
        chaos: Optional :class:`~repro.chaos.ChaosInjector` whose
            schedule is applied at the supervision and publish hooks.
    """

    #: Supervised first-class subscriber names, in wiring order.
    _COMPONENTS = ("rollups", "predictor", "cusum")

    def __init__(
        self,
        database: EnvironmentalDatabase,
        model=None,
        alert_policy: Optional[AlertPolicy] = None,
        cusum: bool = False,
        config: Optional[ServiceConfig] = None,
        start_epoch_s: float = -np.inf,
        end_epoch_s: float = np.inf,
        chaos: Optional[ChaosInjector] = None,
    ) -> None:
        self._init_components(
            database, model, alert_policy, cusum, config, start_epoch_s,
            end_epoch_s, chaos,
        )
        self._build_runtime(base_seq=0, wal_resume=False)

    def _init_components(
        self,
        database: EnvironmentalDatabase,
        model,
        alert_policy: Optional[AlertPolicy],
        cusum: bool,
        config: Optional[ServiceConfig],
        start_epoch_s: float,
        end_epoch_s: float,
        chaos: Optional[ChaosInjector],
    ) -> None:
        """Build the stateful components (everything but bus/supervisor)."""
        self.config = config if config is not None else ServiceConfig()
        self.database = database
        self.chaos = chaos
        self._start_epoch_s = start_epoch_s
        self._end_epoch_s = end_epoch_s
        self.recovery: Optional[RecoveryReport] = None
        self.rollups = RollupStore(
            num_racks=database.num_racks, resolutions_s=self.config.resolutions_s
        )
        self.engine = QueryEngine(self.rollups, cache_size=self.config.cache_size)
        self.rollup_subscriber = RollupSubscriber(self.rollups)
        self.predictor_subscriber: Optional[PredictorSubscriber] = None
        if model is not None:
            predictor = OnlineCmfPredictor(model)
            self.predictor_subscriber = PredictorSubscriber(
                predictor,
                alert_engine=AlertEngine(alert_policy),
                alert_log=AlertLog(),
            )
        self.cusum_subscriber: Optional[CusumSubscriber] = None
        if cusum:
            self.cusum_subscriber = CusumSubscriber(CusumDetector())

    def _component_items(self):
        """(name, consumer) pairs for every attached component."""
        items = [("rollups", self.rollup_subscriber)]
        if self.predictor_subscriber is not None:
            items.append(("predictor", self.predictor_subscriber))
        if self.cusum_subscriber is not None:
            items.append(("cusum", self.cusum_subscriber))
        return items

    def _snapshotter(
        self, name: str, component
    ) -> Optional[Callable[[int], None]]:
        if self._snapshots is None:
            return None

        def snapshot(acked_seq: int) -> None:
            self._snapshots.save(name, acked_seq, component.get_state())

        return snapshot

    def _build_runtime(
        self,
        base_seq: int,
        wal_resume: bool,
        start_epoch_s: Optional[float] = None,
    ) -> None:
        """Wire bus, durability hooks, and supervision around the
        (possibly recovered) components."""
        config = self.config
        start = self._start_epoch_s if start_epoch_s is None else start_epoch_s
        self._wal: Optional[WriteAheadLog] = None
        self._snapshots: Optional[SnapshotStore] = None
        durability = config.durability
        if durability is not None:
            self._snapshots = SnapshotStore(durability.root)
            self._wal = WriteAheadLog(
                durability.wal_path, fsync=durability.fsync, resume=wal_resume
            )

        on_publish = None
        if self.chaos is not None or self._wal is not None:
            chaos, wal = self.chaos, self._wal

            def on_publish(chunk: BusChunk) -> None:
                # The kill fires before the log append: a killed chunk
                # is lost entirely, exactly like a real process death
                # between read and write.
                if chaos is not None:
                    chaos.on_publish(chunk)
                if wal is not None:
                    wal.append(chunk)

        self.bus = ReplayBus(
            self.database,
            speedup=config.speedup,
            start_epoch_s=start,
            end_epoch_s=self._end_epoch_s,
            chunk_size=config.chunk_size,
            base_seq=base_seq,
            on_publish=on_publish,
        )
        replayer = SourceReplayer(
            self.database,
            start_epoch_s=start,
            end_epoch_s=self._end_epoch_s,
            base_seq=base_seq,
            chunk_size=config.chunk_size,
        )
        self.supervisor = Supervisor(
            config.supervision, chaos=self.chaos, replayer=replayer
        )
        snapshot_every = (
            durability.snapshot_every_samples if durability is not None else 0
        )
        for name, consumer in self._component_items():
            wrapper = self.supervisor.supervise(
                name,
                consumer,
                base_seq=base_seq,
                snapshotter=self._snapshotter(name, consumer),
                snapshot_every=snapshot_every,
            )
            subscription = self.bus.subscribe(
                name,
                wrapper,
                capacity=config.queue_capacity,
                policy="block" if name == "rollups" else config.analytics_policy,
                delivery=config.delivery,
            )
            wrapper.attach(subscription)

    # -- lifecycle ----------------------------------------------------------------

    def run(self) -> ServiceReport:
        """Replay the stream to completion and summarize.

        Raises:
            ChaosProcessKill: when the chaos schedule kills the
                "process" mid-stream.  The service is torn down first
                (queues discarded, WAL closed) — exactly the state a
                real death leaves on disk — so the caller can
                :meth:`recover`.
        """
        self.supervisor.start()
        try:
            bus_report = self.bus.run()
        except ChaosProcessKill as exc:
            self.supervisor.record("kill", "__bus__", seq=None, detail=repr(exc))
            self.abort()
            raise
        finally:
            self.supervisor.stop()
        durability = self.config.durability
        if (
            self._snapshots is not None
            and durability is not None
            and durability.snapshot_every_samples > 0
        ):
            for wrapper in self.supervisor.subscribers.values():
                wrapper.snapshot_now()
        if self._wal is not None:
            self._wal.close()
        alerts: List[Alert] = []
        predictions = 0
        if self.predictor_subscriber is not None:
            alerts = self.predictor_subscriber.alerts
            predictions = len(self.predictor_subscriber.predictions)
        alarms: List[CusumAlarm] = []
        if self.cusum_subscriber is not None:
            alarms = self.cusum_subscriber.alarms
        return ServiceReport(
            bus=bus_report,
            alerts=tuple(alerts),
            alarms=tuple(alarms),
            predictions=predictions,
            rollup_buckets=self.rollups.bucket_counts(),
            cache=self.engine.cache_info().as_dict(),
            supervision=self.supervisor.counters,
            events=self.supervisor.events,
            chaos=(
                {k: dataclasses.replace(v) for k, v in self.chaos.counters.items()}
                if self.chaos is not None
                else {}
            ),
            recovery=self.recovery,
        )

    def abort(self, join_timeout_s: float = 10.0) -> None:
        """Tear down after a (simulated) process death.

        Discards every subscriber backlog — a killed process loses its
        in-memory queues — stops the watchdog, and closes the WAL file
        handle without final snapshots.  On-disk state is exactly what
        :meth:`recover` expects to find.
        """
        self.supervisor.stop()
        self.bus.abort(join_timeout_s)
        if self._wal is not None and not self._wal.closed:
            self._wal.close()

    @classmethod
    def recover(
        cls,
        database: EnvironmentalDatabase,
        model=None,
        alert_policy: Optional[AlertPolicy] = None,
        cusum: bool = False,
        config: Optional[ServiceConfig] = None,
        start_epoch_s: float = -np.inf,
        end_epoch_s: float = np.inf,
        chaos: Optional[ChaosInjector] = None,
    ) -> "LiveOperationsService":
        """Rebuild a killed service from its durability directory.

        Each component loads its latest snapshot (if any), then
        replays the write-ahead log idempotently past its acked
        sequence — restoring rollup buckets, predictor history and
        emissions, CUSUM statistics, and alert state exactly as the
        uninterrupted run would have them at the log's end.  The
        returned service's bus resumes the source stream at the first
        unlogged sample with the original sequence numbering;
        :meth:`run` then finishes the replay.

        Raises:
            ValueError: when ``config.durability`` is unset.
            RecoveryError: on a corrupt WAL or a snapshot/WAL gap.
        """
        config = config if config is not None else ServiceConfig()
        if config.durability is None:
            raise ValueError("recover() needs config.durability to locate state")
        service = cls.__new__(cls)
        service._init_components(
            database, model, alert_policy, cusum, config, start_epoch_s,
            end_epoch_s, chaos,
        )
        durability = config.durability
        records, _, torn = WriteAheadLog.scan(durability.wal_path)
        snapshots = SnapshotStore(durability.root)
        wal_start = records[0].start_seq if records else 0
        recovered = []
        for name, consumer in service._component_items():
            snapshot = snapshots.load(name)
            if snapshot is not None:
                consumer.set_state(snapshot.state)
                acked = snapshot.acked_seq
                snapshot_seq: Optional[int] = snapshot.acked_seq
            else:
                acked = wal_start - 1
                snapshot_seq = None
            recovered.append(
                replay_component(
                    name, records, acked, consumer, snapshot_seq=snapshot_seq
                )
            )
        resume_seq = records[-1].end_seq + 1 if records else 0
        service.recovery = RecoveryReport(
            wal_records=len(records),
            wal_samples=sum(r.num_samples for r in records),
            wal_torn_tail=torn,
            resume_seq=resume_seq,
            components=tuple(recovered),
        )
        if records:
            # Resume strictly after the last logged timestamp.
            resume_start = float(np.nextafter(records[-1].epoch_s[-1], np.inf))
        else:
            resume_start = None
        service._build_runtime(
            base_seq=resume_seq, wal_resume=True, start_epoch_s=resume_start
        )
        return service
