"""The live operations service: bus -> rollups -> query engine.

:class:`LiveOperationsService` assembles the full service layer over a
finished simulation: a :class:`~repro.service.bus.ReplayBus` streams
the environmental database; the rollup store and (optionally) the
online CMF predictor + alert policy and the CUSUM detector ride the
stream as subscribers; the :class:`~repro.service.query.QueryEngine`
serves dashboard queries over the rollups — during the replay or
after it.

The rollup subscriber uses the ``block`` policy (the store must see
every sample for streaming/batch equivalence); the analytics
subscribers default to ``drop_oldest`` so a slow model can never stall
ingest.  All first-class subscribers take chunked delivery
(``ServiceConfig.chunk_size`` snapshots per vectorized update); ad-hoc
subscribers added to :attr:`LiveOperationsService.bus` default to the
per-sample shim and see the exact historical stream.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.monitoring.alerts import Alert, AlertEngine, AlertLog, AlertPolicy
from repro.monitoring.anomaly import CusumAlarm, CusumDetector
from repro.monitoring.online import OnlineCmfPredictor
from repro.service.bus import BusReport, ReplayBus
from repro.service.query import QueryEngine
from repro.service.rollup import DEFAULT_RESOLUTIONS_S, RollupStore
from repro.service.subscribers import (
    CusumSubscriber,
    PredictorSubscriber,
    RollupSubscriber,
)
from repro.telemetry.database import EnvironmentalDatabase


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the service layer."""

    #: Simulated seconds replayed per wall-clock second (inf = flat out).
    speedup: float = float("inf")
    #: Per-subscriber queue capacity.
    queue_capacity: int = 512
    #: Backpressure policy for the analytics subscribers (the rollup
    #: subscriber always blocks: it must see every sample).
    analytics_policy: str = "drop_oldest"
    #: Rollup resolution ladder, finest first.
    resolutions_s: Tuple[float, ...] = DEFAULT_RESOLUTIONS_S
    #: Query-cache capacity.
    cache_size: int = 1024
    #: Snapshots per published chunk.  The service subscribers consume
    #: whole chunks vectorized; results are identical at any chunk
    #: size (1 reproduces per-sample delivery exactly).
    chunk_size: int = 256


@dataclasses.dataclass(frozen=True)
class ServiceReport:
    """Everything one replay produced."""

    bus: BusReport
    alerts: Tuple[Alert, ...]
    alarms: Tuple[CusumAlarm, ...]
    predictions: int
    rollup_buckets: Dict[float, int]
    cache: Dict[str, int]


class LiveOperationsService:
    """Replay a realization through the full online stack.

    Args:
        database: The telemetry to re-serve as a live stream.
        model: Optional trained classifier
            (:func:`~repro.monitoring.online.train_online_predictor`);
            when given, the streaming predictor and alert engine ride
            the bus.
        alert_policy: Alert policy for the predictor stream.
        cusum: Attach the classical CUSUM detector as a subscriber.
        config: Service tunables.
        start_epoch_s / end_epoch_s: Replay window ``[start, end)``.
    """

    def __init__(
        self,
        database: EnvironmentalDatabase,
        model=None,
        alert_policy: Optional[AlertPolicy] = None,
        cusum: bool = False,
        config: Optional[ServiceConfig] = None,
        start_epoch_s: float = -np.inf,
        end_epoch_s: float = np.inf,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.database = database
        self.bus = ReplayBus(
            database,
            speedup=self.config.speedup,
            start_epoch_s=start_epoch_s,
            end_epoch_s=end_epoch_s,
            chunk_size=self.config.chunk_size,
        )
        self.rollups = RollupStore(
            num_racks=database.num_racks, resolutions_s=self.config.resolutions_s
        )
        self.engine = QueryEngine(self.rollups, cache_size=self.config.cache_size)
        self.bus.subscribe(
            "rollups",
            RollupSubscriber(self.rollups),
            capacity=self.config.queue_capacity,
            policy="block",
            delivery="chunks",
        )
        self.predictor_subscriber: Optional[PredictorSubscriber] = None
        if model is not None:
            predictor = OnlineCmfPredictor(model)
            self.predictor_subscriber = PredictorSubscriber(
                predictor,
                alert_engine=AlertEngine(alert_policy),
                alert_log=AlertLog(),
            )
            self.bus.subscribe(
                "predictor",
                self.predictor_subscriber,
                capacity=self.config.queue_capacity,
                policy=self.config.analytics_policy,
                delivery="chunks",
            )
        self.cusum_subscriber: Optional[CusumSubscriber] = None
        if cusum:
            self.cusum_subscriber = CusumSubscriber(CusumDetector())
            self.bus.subscribe(
                "cusum",
                self.cusum_subscriber,
                capacity=self.config.queue_capacity,
                policy=self.config.analytics_policy,
                delivery="chunks",
            )

    def run(self) -> ServiceReport:
        """Replay the stream to completion and summarize."""
        bus_report = self.bus.run()
        alerts: List[Alert] = []
        predictions = 0
        if self.predictor_subscriber is not None:
            alerts = self.predictor_subscriber.alerts
            predictions = len(self.predictor_subscriber.predictions)
        alarms: List[CusumAlarm] = []
        if self.cusum_subscriber is not None:
            alarms = self.cusum_subscriber.alarms
        return ServiceReport(
            bus=bus_report,
            alerts=tuple(alerts),
            alarms=tuple(alarms),
            predictions=predictions,
            rollup_buckets=self.rollups.bucket_counts(),
            cache=self.engine.cache_info(),
        )
