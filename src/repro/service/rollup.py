"""Multi-resolution telemetry rollups, maintained incrementally.

A dashboard asking "mean facility power last month" must not scan six
years of 300 s samples.  Production monitoring stores therefore keep
*rollups*: per-channel, per-rack downsamples at a ladder of
resolutions (raw cadence -> hourly -> daily here), updated as each
sample arrives rather than recomputed on query.

Each bucket of each level carries, per rack:

* ``min`` / ``max`` — NaN-aware extrema of the finite values,
* ``sum`` / ``count`` — finite-value total and count (mean is
  ``sum/count``, composable across buckets and racks),
* ``usable`` — cells whose quality flag is ``OK`` or ``SUSPECT``
  (present and not scrubbed), the coverage numerator,

plus the bucket's total sample-row count.  ``count`` follows the
*finite* semantics of
:meth:`~repro.telemetry.database.EnvironmentalDatabase._covered_sum`
(a scrubbed-but-present value still contributes to means and
coverage-corrected totals, exactly as in the offline aggregates),
while ``usable`` follows the quality-mask semantics of
:meth:`~repro.telemetry.database.EnvironmentalDatabase.coverage` — so
faulted streams roll up with the same numbers the batch pipeline
reports.

At the finest level every sample lands in its own bucket whenever the
stream cadence is a multiple of the level resolution, which makes
raw-level rollup queries *exactly* equal to offline aggregates over
the environmental database (the streaming/batch equivalence contract
the query engine's tests enforce).

The store is thread-safe (one lock; writers are the bus subscriber
thread, readers the query engine's pool) and versioned: every ingest
bumps :attr:`~RollupStore.version` and records the mutated timestamp
in a bounded history so the query cache can invalidate *only* entries
whose window the new data actually touches.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro import constants
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import CHANNELS, Channel, Quality

#: The default resolution ladder: the coolant monitors' native 300 s
#: cadence, hourly, and daily.
DEFAULT_RESOLUTIONS_S = (300.0, 3600.0, 86400.0)

#: Mutation history depth for targeted cache invalidation; entries
#: older than this force a conservative "invalidate everything".
_MUTATION_HISTORY = 4096

#: Quality flags counting toward coverage (present and not scrubbed).
_USABLE_FLAGS = (int(Quality.OK), int(Quality.SUSPECT))


@dataclasses.dataclass(frozen=True)
class _PreparedBlock:
    """Per-channel block derivatives shared by every level's fold.

    Computed once per ingested block (isfinite / zero-fill / usable
    masks are identical at every resolution) so the per-level work is
    only the segment reduction and the bucket writes.  Fully-finite /
    fully-usable blocks — the overwhelmingly common case — carry
    ``None`` masks, letting the fold skip the mask reductions and
    write bucket tallies as broadcast fills.
    """

    zeroed: np.ndarray  # non-finite cells as 0.0 (the block itself when clean)
    finite: Optional[np.ndarray]  # bool mask; None = every cell finite
    usable: Optional[np.ndarray]  # bool mask; None = every cell usable


@dataclasses.dataclass
class _ChannelBuckets:
    """Growable per-channel accumulator matrices for one level.

    Rows at or beyond the level's ``size`` are uninitialized — every
    bucket row is explicitly written when it is created (``locate`` for
    row-at-a-time ingest, the tail writes of ``add_block`` for blocks),
    so fresh capacity is allocated with ``np.empty`` and never padded.
    """

    minimum: np.ndarray  # (cap, racks) float64
    maximum: np.ndarray  # (cap, racks) float64
    total: np.ndarray  # (cap, racks) float64
    count: np.ndarray  # (cap, racks) int32
    usable: np.ndarray  # (cap, racks) int32


class _Level:
    """One resolution of the rollup ladder."""

    def __init__(self, resolution_s: float, num_racks: int, capacity: int = 64):
        self.resolution_s = float(resolution_s)
        self.num_racks = num_racks
        self.capacity = capacity
        self.size = 0
        self.epoch = np.empty(capacity, dtype="float64")
        self.samples = np.zeros(capacity, dtype="int64")
        self.channels: Dict[Channel, _ChannelBuckets] = {
            ch: self._new_buckets(capacity) for ch in CHANNELS
        }

    def _new_buckets(self, capacity: int) -> _ChannelBuckets:
        shape = (capacity, self.num_racks)
        return _ChannelBuckets(
            minimum=np.empty(shape),
            maximum=np.empty(shape),
            total=np.empty(shape),
            count=np.empty(shape, dtype="int32"),
            usable=np.empty(shape, dtype="int32"),
        )

    def _grow(self, needed: Optional[int] = None) -> None:
        """Reallocate to at least ``needed`` (default: double) in one go."""
        new_capacity = self.capacity * 2
        while new_capacity < (needed or 0):
            new_capacity *= 2
        grown = new_capacity - self.capacity
        self.epoch = np.concatenate([self.epoch, np.empty(grown)])
        self.samples = np.concatenate(
            [self.samples, np.empty(grown, dtype=self.samples.dtype)]
        )
        for channel, buckets in self.channels.items():
            fresh = self._new_buckets(new_capacity)
            for field in dataclasses.fields(_ChannelBuckets):
                getattr(fresh, field.name)[: self.size] = getattr(
                    buckets, field.name
                )[: self.size]
            self.channels[channel] = fresh
        self.capacity = new_capacity

    def bucket_start(self, epoch_s: float) -> float:
        return float(np.floor(epoch_s / self.resolution_s) * self.resolution_s)

    def locate(self, epoch_s: float) -> int:
        """Index of the bucket holding ``epoch_s``, creating it if new."""
        start = self.bucket_start(epoch_s)
        if self.size and start == self.epoch[self.size - 1]:
            return self.size - 1  # the common in-order fast path
        index = int(np.searchsorted(self.epoch[: self.size], start))
        if index < self.size and self.epoch[index] == start:
            return index
        if self.size == self.capacity:
            self._grow()
        if index < self.size:
            # Out-of-order bucket creation (late sample): shift right.
            self.epoch[index + 1 : self.size + 1] = self.epoch[index : self.size]
            self.samples[index + 1 : self.size + 1] = self.samples[index : self.size]
            for buckets in self.channels.values():
                for field in dataclasses.fields(_ChannelBuckets):
                    matrix = getattr(buckets, field.name)
                    matrix[index + 1 : self.size + 1] = matrix[index : self.size]
        self.epoch[index] = start
        self.samples[index] = 0
        for buckets in self.channels.values():
            buckets.minimum[index] = np.nan
            buckets.maximum[index] = np.nan
            buckets.total[index] = 0.0
            buckets.count[index] = 0
            buckets.usable[index] = 0
        self.size += 1
        return index

    def add(
        self,
        epoch_s: float,
        values: Mapping[Channel, np.ndarray],
        quality: Optional[Mapping[Channel, np.ndarray]],
    ) -> None:
        index = self.locate(epoch_s)
        self.samples[index] += 1
        for channel, vector in values.items():
            buckets = self.channels[channel]
            finite = np.isfinite(vector)
            buckets.minimum[index] = np.fmin(buckets.minimum[index], vector)
            buckets.maximum[index] = np.fmax(buckets.maximum[index], vector)
            buckets.total[index] += np.where(finite, vector, 0.0)
            buckets.count[index] += finite
            if quality is not None and channel in quality:
                flags = quality[channel]
                buckets.usable[index] += (flags == _USABLE_FLAGS[0]) | (
                    flags == _USABLE_FLAGS[1]
                )
            else:
                buckets.usable[index] += finite

    def _ensure_capacity(self, needed: int) -> None:
        # Block ingest over-allocates (2x the requirement) so a steady
        # stream of chunks reallocates O(log n) times with geometric
        # copy cost, not once per chunk batch.
        if self.capacity < needed:
            self._grow(2 * needed)

    def add_block(
        self,
        epochs: np.ndarray,
        values: Mapping[Channel, np.ndarray],
        prepared: Mapping[Channel, "_PreparedBlock"],
    ) -> None:
        """Fold a block of rows (non-decreasing epochs) in one pass.

        Rows are grouped into per-bucket segments, each segment reduced
        with ``np.{fmin,fmax,add}.reduceat`` (sequential in-segment
        application — the same fold order as row-at-a-time :meth:`add`,
        so min/max/count/usable are exact and totals differ from the
        sequential path only by one re-association per merged bucket).

        Two structural fast paths keep the in-order streaming case at
        memory-copy speed: when every row lands in its own bucket (a
        stream cadence at or above the level resolution) the reduceats
        collapse to the block itself, and brand-new tail buckets are
        written directly — no NaN/zero reset pass, no fold against the
        freshly reset rows.  Only a bucket merged with the previous
        block's tail folds against existing state.  A block reaching
        behind the newest bucket falls back to per-segment
        :meth:`locate` plus a full fold.
        """
        n = len(epochs)
        starts = np.floor(epochs / self.resolution_s) * self.resolution_s
        if n == 1:
            seg_idx = np.zeros(1, dtype=np.intp)
        else:
            seg_idx = np.concatenate(
                [[0], np.flatnonzero(starts[1:] != starts[:-1]) + 1]
            ).astype(np.intp)
        ustarts = starts[seg_idx]  # strictly increasing
        singles = len(ustarts) == n  # every row is its own bucket
        seg_rows = np.diff(np.append(seg_idx, n))
        # Per-bucket tallies when every cell counts: a (nseg, 1) column
        # broadcast across racks (scalar 1 in the singles case), so the
        # bucket writes are fills with no mask reduction at all.
        full_tally = 1 if singles else seg_rows[:, None].astype(np.int32)

        def reduce_segments(channel):
            block = values[channel]
            ready = prepared[channel]
            if singles:
                count = 1 if ready.finite is None else ready.finite
                usable = 1 if ready.usable is None else ready.usable
                return block, block, ready.zeroed, count, usable
            count = (
                full_tally
                if ready.finite is None
                else np.add.reduceat(
                    ready.finite, seg_idx, axis=0, dtype=np.int32
                )
            )
            usable = (
                full_tally
                if ready.usable is None
                else np.add.reduceat(
                    ready.usable, seg_idx, axis=0, dtype=np.int32
                )
            )
            return (
                np.fmin.reduceat(block, seg_idx, axis=0),
                np.fmax.reduceat(block, seg_idx, axis=0),
                np.add.reduceat(ready.zeroed, seg_idx, axis=0),
                count,
                usable,
            )

        def head(segments):
            """Row 0 of a per-segment tally (or its scalar broadcast)."""
            return segments if np.isscalar(segments) else segments[0]

        def tail(segments, skip):
            return segments if np.isscalar(segments) else segments[skip:]

        if self.size == 0 or ustarts[0] >= self.epoch[self.size - 1]:
            merge_first = bool(self.size) and ustarts[0] == self.epoch[self.size - 1]
            skip = int(merge_first)
            lo = self.size
            hi = lo + len(ustarts) - skip
            self._ensure_capacity(hi)
            self.epoch[lo:hi] = ustarts[skip:]
            if merge_first:
                self.samples[lo - 1] += seg_rows[0]
            self.samples[lo:hi] = seg_rows[skip:]
            for channel, buckets in self.channels.items():
                if channel not in values:
                    # Untouched channel: its fresh tail rows stay clean.
                    buckets.minimum[lo:hi] = np.nan
                    buckets.maximum[lo:hi] = np.nan
                    buckets.total[lo:hi] = 0.0
                    buckets.count[lo:hi] = 0
                    buckets.usable[lo:hi] = 0
                    continue
                seg_min, seg_max, seg_sum, seg_count, seg_usable = (
                    reduce_segments(channel)
                )
                if merge_first:
                    prev = lo - 1
                    buckets.minimum[prev] = np.fmin(
                        buckets.minimum[prev], seg_min[0]
                    )
                    buckets.maximum[prev] = np.fmax(
                        buckets.maximum[prev], seg_max[0]
                    )
                    buckets.total[prev] += seg_sum[0]
                    buckets.count[prev] += head(seg_count)
                    buckets.usable[prev] += head(seg_usable)
                # New tail buckets: direct writes, nothing to fold with.
                buckets.minimum[lo:hi] = seg_min[skip:]
                buckets.maximum[lo:hi] = seg_max[skip:]
                buckets.total[lo:hi] = seg_sum[skip:]
                buckets.count[lo:hi] = tail(seg_count, skip)
                buckets.usable[lo:hi] = tail(seg_usable, skip)
            self.size = hi
            return

        # Late block: locate (and possibly insert) per segment.
        # Inserts happen at strictly increasing positions, so
        # earlier indices stay valid.
        index = np.array([self.locate(float(s)) for s in ustarts], dtype=np.intp)
        self.samples[index] += seg_rows
        for channel in values:
            buckets = self.channels[channel]
            seg_min, seg_max, seg_sum, seg_count, seg_usable = (
                reduce_segments(channel)
            )
            buckets.minimum[index] = np.fmin(buckets.minimum[index], seg_min)
            buckets.maximum[index] = np.fmax(buckets.maximum[index], seg_max)
            buckets.total[index] += seg_sum
            # Scalar/column tallies broadcast across the fancy index.
            buckets.count[index] += seg_count
            buckets.usable[index] += seg_usable


@dataclasses.dataclass(frozen=True)
class BucketWindow:
    """A consistent copy of one level's buckets inside a time window.

    All arrays share the bucket axis; per-rack matrices have shape
    ``(buckets, racks)``.  ``version`` is the store version the copy
    was taken at (for cache stamping).
    """

    resolution_s: float
    version: int
    epoch: np.ndarray
    samples: np.ndarray
    minimum: np.ndarray
    maximum: np.ndarray
    total: np.ndarray
    count: np.ndarray
    usable: np.ndarray


class RollupStore:
    """Incremental multi-resolution rollups of every per-rack channel.

    Args:
        num_racks: Width of the rack axis.
        resolutions_s: Strictly ascending bucket lengths, finest
            first.  The finest level should divide the stream cadence
            (300 s divides every cadence the simulator emits) so that
            raw-level queries are sample-exact.
    """

    def __init__(
        self,
        num_racks: int = constants.NUM_RACKS,
        resolutions_s: Tuple[float, ...] = DEFAULT_RESOLUTIONS_S,
    ) -> None:
        if num_racks <= 0:
            raise ValueError("num_racks must be positive")
        if not resolutions_s:
            raise ValueError("at least one resolution is required")
        if any(r <= 0 for r in resolutions_s):
            raise ValueError("resolutions must be positive")
        if list(resolutions_s) != sorted(set(resolutions_s)):
            raise ValueError("resolutions must be strictly ascending")
        self.num_racks = num_racks
        self.resolutions_s = tuple(float(r) for r in resolutions_s)
        self._levels = [_Level(r, num_racks) for r in self.resolutions_s]
        self._lock = threading.RLock()
        self._version = 0
        self._mutations: collections.deque = collections.deque(
            maxlen=_MUTATION_HISTORY
        )
        self.ingested_rows = 0

    # -- ingest -------------------------------------------------------------------

    def add(
        self,
        epoch_s: float,
        values: Mapping[Channel, np.ndarray],
        quality: Optional[Mapping[Channel, np.ndarray]] = None,
    ) -> None:
        """Fold one whole-floor sample into every level.

        Args:
            epoch_s: Sample timestamp.
            values: Channel -> per-rack vector.  Channels not supplied
                contribute nothing (their counts stay put).
            quality: Optional parallel quality flags; without them
                coverage falls back to finite-ness.
        """
        with self._lock:
            for level in self._levels:
                level.add(epoch_s, values, quality)
            self._version += 1
            self._mutations.append((self._version, float(epoch_s)))
            self.ingested_rows += 1

    def add_block(
        self,
        epoch_s: np.ndarray,
        values: Mapping[Channel, np.ndarray],
        quality: Optional[Mapping[Channel, np.ndarray]] = None,
    ) -> None:
        """Fold a whole block of samples into every level at once.

        Args:
            epoch_s: ``(timesteps,)`` sample timestamps.
            values: Channel -> ``(timesteps, racks)`` block.
            quality: Optional parallel quality-flag blocks.

        The store version bumps **once per block** (one mutation-
        history entry stamped at the block's earliest timestamp), so
        downstream cache invalidation scales with chunks rather than
        samples.  Blocks with internally decreasing timestamps fall
        back to row-at-a-time folding to keep the out-of-order
        semantics of :meth:`add` exactly.
        """
        epochs = np.asarray(epoch_s, dtype=np.float64)
        if epochs.ndim != 1:
            raise ValueError(f"epoch_s must be 1-D, got shape {epochs.shape}")
        n = len(epochs)
        if n == 0:
            return
        with self._lock:
            if n > 1 and np.any(epochs[1:] < epochs[:-1]):
                for i in range(n):
                    row_values = {ch: block[i] for ch, block in values.items()}
                    row_quality = (
                        {ch: block[i] for ch, block in quality.items()}
                        if quality is not None
                        else None
                    )
                    for level in self._levels:
                        level.add(float(epochs[i]), row_values, row_quality)
            else:
                prepared = {}
                for channel, block in values.items():
                    finite = np.isfinite(block)
                    clean = bool(finite.all())
                    if quality is not None and channel in quality:
                        flags = quality[channel]
                        usable = (flags == _USABLE_FLAGS[0]) | (
                            flags == _USABLE_FLAGS[1]
                        )
                        if usable.all():
                            usable = None
                    else:
                        usable = None if clean else finite
                    prepared[channel] = _PreparedBlock(
                        zeroed=block if clean else np.where(finite, block, 0.0),
                        finite=None if clean else finite,
                        usable=usable,
                    )
                for level in self._levels:
                    level.add_block(epochs, values, prepared)
            self._version += 1
            self._mutations.append((self._version, float(epochs.min())))
            self.ingested_rows += n

    def ingest_database(
        self,
        database: EnvironmentalDatabase,
        start_epoch_s: float = -np.inf,
        end_epoch_s: float = np.inf,
    ) -> int:
        """Fold every committed row of a database in; returns the count."""
        rows = 0
        for epoch_s, values, quality in database.iter_snapshots(
            start_epoch_s, end_epoch_s
        ):
            self.add(epoch_s, values, quality)
            rows += 1
        return rows

    @classmethod
    def from_database(
        cls,
        database: EnvironmentalDatabase,
        resolutions_s: Tuple[float, ...] = DEFAULT_RESOLUTIONS_S,
    ) -> "RollupStore":
        """The offline construction: one pass over a finished store."""
        store = cls(database.num_racks, resolutions_s)
        store.ingest_database(database)
        return store

    # -- durability ---------------------------------------------------------------

    def get_state(self) -> Dict:
        """A picklable deep copy of every level (see :meth:`set_state`).

        Taken under the store lock, so a snapshot observed mid-stream
        is always a consistent whole-store state at some ingest
        boundary.
        """
        with self._lock:
            levels = []
            for level in self._levels:
                channels = {}
                for channel, buckets in level.channels.items():
                    channels[channel] = {
                        field.name: getattr(buckets, field.name)[: level.size].copy()
                        for field in dataclasses.fields(_ChannelBuckets)
                    }
                levels.append(
                    {
                        "resolution_s": level.resolution_s,
                        "epoch": level.epoch[: level.size].copy(),
                        "samples": level.samples[: level.size].copy(),
                        "channels": channels,
                    }
                )
            return {
                "num_racks": self.num_racks,
                "resolutions_s": self.resolutions_s,
                "levels": levels,
                "version": self._version,
                "mutations": list(self._mutations),
                "ingested_rows": self.ingested_rows,
            }

    def set_state(self, state: Mapping) -> None:
        """Restore a :meth:`get_state` copy bit for bit.

        Version and mutation history are restored too, so query-cache
        stamps taken before a crash stay coherent after recovery.

        Raises:
            ValueError: when the saved shape (racks / resolution
                ladder) does not match this store.
        """
        if (
            tuple(state["resolutions_s"]) != self.resolutions_s
            or int(state["num_racks"]) != self.num_racks
        ):
            raise ValueError(
                "rollup state does not match this store: saved "
                f"({state['num_racks']} racks, {tuple(state['resolutions_s'])}), "
                f"store ({self.num_racks} racks, {self.resolutions_s})"
            )
        with self._lock:
            for level, saved in zip(self._levels, state["levels"]):
                size = len(saved["epoch"])
                level._ensure_capacity(size)
                level.size = size
                level.epoch[:size] = saved["epoch"]
                level.samples[:size] = saved["samples"]
                for channel, fields in saved["channels"].items():
                    buckets = level.channels[channel]
                    for name, matrix in fields.items():
                        getattr(buckets, name)[:size] = matrix
            self._version = int(state["version"])
            self._mutations = collections.deque(
                state["mutations"], maxlen=_MUTATION_HISTORY
            )
            self.ingested_rows = int(state["ingested_rows"])

    # -- versioning / invalidation ------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic ingest counter (one bump per :meth:`add` or
        :meth:`add_block` call)."""
        with self._lock:
            return self._version

    def earliest_mutation_since(self, version: int) -> float:
        """Oldest timestamp touched by any ingest after ``version``.

        Returns ``+inf`` when nothing changed and ``-inf`` when the
        bounded history no longer covers ``version`` (callers must
        then treat everything as potentially stale).
        """
        with self._lock:
            if version >= self._version:
                return np.inf if version == self._version else -np.inf
            earliest = np.inf
            complete = False
            for mutated_version, epoch_s in reversed(self._mutations):
                if mutated_version <= version:
                    complete = True
                    break
                earliest = min(earliest, epoch_s)
            if not complete:
                # History must reach back to version + 1 to be trusted.
                if not self._mutations or self._mutations[0][0] > version + 1:
                    return -np.inf
            return earliest

    # -- query surface ------------------------------------------------------------

    def level_resolutions(self) -> Tuple[float, ...]:
        return self.resolutions_s

    def epoch_bounds(self) -> Optional[Tuple[float, float]]:
        """Covered time range ``(first, last)`` on the finest level.

        ``first`` is the start of the earliest bucket and ``last`` the
        end of the latest, so ``[first, last)`` tiles exactly onto
        finest-level buckets; ``None`` while the store is empty.  The
        HTTP ``/healthz`` route advertises this so remote clients (the
        load generator in particular) can aim queries at real data.
        """
        with self._lock:
            level = self._levels[0]
            if level.size == 0:
                return None
            return (
                float(level.epoch[0]),
                float(level.epoch[level.size - 1] + level.resolution_s),
            )

    def snap_resolution(self, start_epoch_s: float, end_epoch_s: float) -> float:
        """The coarsest resolution whose buckets tile ``[start, end)``.

        Falls back to the finest level for windows aligned to no
        level (answers are then bucket-start selected, i.e. exact
        whenever the stream cadence is a multiple of the finest
        resolution).
        """
        for resolution in reversed(self.resolutions_s):
            if (
                start_epoch_s % resolution == 0.0
                and end_epoch_s % resolution == 0.0
            ):
                return resolution
        return self.resolutions_s[0]

    def _level(self, resolution_s: float) -> _Level:
        for level in self._levels:
            if level.resolution_s == resolution_s:
                return level
        raise KeyError(
            f"no rollup level at {resolution_s}s; have {self.resolutions_s}"
        )

    def window(
        self,
        resolution_s: float,
        channel: Channel,
        start_epoch_s: float,
        end_epoch_s: float,
    ) -> BucketWindow:
        """A consistent copy of one channel's buckets in ``[start, end)``.

        Buckets are selected by bucket *start* timestamp.  An empty
        window returns zero-length arrays rather than raising.

        Raises:
            KeyError: when no level exists at ``resolution_s``.
        """
        with self._lock:
            level = self._level(resolution_s)
            epochs = level.epoch[: level.size]
            lo = int(np.searchsorted(epochs, start_epoch_s, side="left"))
            hi = int(np.searchsorted(epochs, end_epoch_s, side="left"))
            buckets = level.channels[channel]
            return BucketWindow(
                resolution_s=level.resolution_s,
                version=self._version,
                epoch=epochs[lo:hi].copy(),
                samples=level.samples[lo:hi].copy(),
                minimum=buckets.minimum[lo:hi].copy(),
                maximum=buckets.maximum[lo:hi].copy(),
                total=buckets.total[lo:hi].copy(),
                count=buckets.count[lo:hi].copy(),
                usable=buckets.usable[lo:hi].copy(),
            )

    def bucket_counts(self) -> Dict[float, int]:
        """Buckets held per resolution (observability)."""
        with self._lock:
            return {level.resolution_s: level.size for level in self._levels}
