"""Crash durability for the live service: write-ahead log + snapshots.

The bus is a replay of a database the service does not own, so
durability here is not about the *data* — it is about the *derived
state* (rollup buckets, predictor history, CUSUM statistics, alert
streaks) that PR 3/6 rebuilt from scratch on every restart.  Two
pieces make that state crash-safe:

* A chunk-granular :class:`WriteAheadLog` appended on the publisher
  thread *before* any subscriber queue sees the chunk (the bus's
  ``on_publish`` hook), so every chunk a subscriber could have
  consumed is on disk first.  Records are CRC-framed pickles of the
  chunk's columns keyed by the bus sequence numbers; a torn tail
  (process died mid-write) is detected and truncated, never treated
  as corruption of the preceding records.
* Per-component :class:`SnapshotStore` snapshots taken on the
  subscriber's own worker thread at chunk boundaries, so each
  snapshot's ``acked_seq`` always equals some WAL record's
  ``end_seq`` and replay can resume exactly at the next record.

Recovery (:meth:`~repro.service.live.LiveOperationsService.recover`)
loads each component's latest snapshot, replays WAL records with
``end_seq > acked_seq`` through the same consume paths the live bus
uses, and resumes the bus at ``last_wal_seq + 1`` — the combination
the tests pin as bit-identical to an uninterrupted run.  Replay is
idempotent across the snapshot boundary: records at or below the
snapshot's ack are skipped, never re-applied.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.service.bus import BusChunk

__all__ = [
    "DurabilityConfig",
    "WalRecord",
    "WriteAheadLog",
    "SnapshotStore",
    "RecoveryError",
    "ComponentRecovery",
    "RecoveryReport",
]

#: File magic; bump when the frame layout changes.
WAL_MAGIC = b"RWAL1\n"

#: Frame header: little-endian payload length + CRC32 of the payload.
_FRAME = struct.Struct("<II")


class RecoveryError(RuntimeError):
    """Recovery state is inconsistent (corrupt snapshot, WAL gap, ...)."""


@dataclasses.dataclass(frozen=True)
class DurabilityConfig:
    """Where and how often to persist service state.

    Attributes:
        directory: Root for ``wal.bin`` and per-component snapshots.
        snapshot_every_samples: Take a component snapshot each time at
            least this many samples were consumed since the last one.
            ``0`` disables snapshots entirely (including the final
            graceful-shutdown snapshot), forcing full-WAL replay on
            recovery — the recovery benchmark uses this.
        fsync: Force every WAL append to stable storage.  Off by
            default: the threat model here is process death, not
            power loss, and fsync-per-chunk costs an order of
            magnitude in stream throughput.
    """

    directory: "str | Path"
    snapshot_every_samples: int = 4096
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.snapshot_every_samples < 0:
            raise ValueError(
                "snapshot_every_samples cannot be negative, got "
                f"{self.snapshot_every_samples}"
            )

    @property
    def root(self) -> Path:
        return Path(self.directory)

    @property
    def wal_path(self) -> Path:
        return self.root / "wal.bin"


@dataclasses.dataclass(frozen=True)
class WalRecord:
    """One logged bus chunk, reconstructable as a :class:`BusChunk`."""

    seq: int
    start_seq: int
    epoch_s: np.ndarray
    values: Dict[str, np.ndarray]
    quality: Dict[str, np.ndarray]

    @property
    def end_seq(self) -> int:
        return self.start_seq + len(self.epoch_s) - 1

    @property
    def num_samples(self) -> int:
        return len(self.epoch_s)

    def chunk(self) -> BusChunk:
        return BusChunk(
            seq=self.seq,
            start_seq=self.start_seq,
            epoch_s=self.epoch_s,
            values=self.values,
            quality=self.quality,
        )


def _encode(chunk: BusChunk) -> bytes:
    payload = pickle.dumps(
        {
            "seq": int(chunk.seq),
            "start_seq": int(chunk.start_seq),
            "epoch_s": np.asarray(chunk.epoch_s),
            "values": {k: np.asarray(v) for k, v in chunk.values.items()},
            "quality": {k: np.asarray(v) for k, v in chunk.quality.items()},
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _decode(payload: bytes) -> WalRecord:
    raw = pickle.loads(payload)
    return WalRecord(
        seq=int(raw["seq"]),
        start_seq=int(raw["start_seq"]),
        epoch_s=raw["epoch_s"],
        values=raw["values"],
        quality=raw["quality"],
    )


class WriteAheadLog:
    """Append-only chunk log with CRC framing and torn-tail recovery.

    The log is continuous across recoveries: opening in ``resume``
    mode truncates a torn tail (an append interrupted by the injected
    kill) and appends after the last valid frame, so components whose
    snapshots predate earlier kills can still replay everything since
    the original stream start.
    """

    def __init__(
        self, path: "str | Path", fsync: bool = False, resume: bool = False
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.appended = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            _, valid_bytes, torn = self.scan(self.path)
            if torn:
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_bytes)
            self._handle = open(self.path, "ab")
        else:
            self._handle = open(self.path, "wb")
            self._handle.write(WAL_MAGIC)
            self._flush()

    def append(self, chunk: BusChunk) -> None:
        """Log one chunk; flushed to the OS before returning."""
        self._handle.write(_encode(chunk))
        self._flush()
        self.appended += 1

    def _flush(self) -> None:
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._flush()
            self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    @staticmethod
    def scan(path: "str | Path") -> Tuple[List[WalRecord], int, bool]:
        """Read every valid record.

        Returns ``(records, valid_bytes, torn)`` where ``valid_bytes``
        is the prefix length covered by intact frames and ``torn`` is
        True when trailing bytes exist past it (an interrupted
        append).  A bad magic raises :class:`RecoveryError`; a torn
        tail does not — it is the expected signature of a kill.
        """
        path = Path(path)
        data = path.read_bytes()
        if not data.startswith(WAL_MAGIC):
            raise RecoveryError(f"{path} is not a write-ahead log (bad magic)")
        records: List[WalRecord] = []
        offset = len(WAL_MAGIC)
        while True:
            header = data[offset : offset + _FRAME.size]
            if len(header) < _FRAME.size:
                break
            length, crc = _FRAME.unpack(header)
            payload = data[offset + _FRAME.size : offset + _FRAME.size + length]
            if len(payload) < length or zlib.crc32(payload) != crc:
                break
            records.append(_decode(payload))
            offset += _FRAME.size + length
        return records, offset, offset < len(data)


@dataclasses.dataclass(frozen=True)
class Snapshot:
    """A component's pickled state as of a consumed bus sequence."""

    component: str
    acked_seq: int
    state: object


class SnapshotStore:
    """Atomic per-component snapshot files under the durability root.

    ``save`` writes to a temp file and :func:`os.replace`\\ s it into
    place, so a kill mid-snapshot leaves the previous snapshot (or
    none) intact; ``load`` treats a corrupt or truncated file as "no
    snapshot" rather than failing recovery — the WAL replays from the
    stream start instead.
    """

    _SUFFIX = ".snapshot.pkl"

    def __init__(self, directory: "str | Path") -> None:
        self.root = Path(directory)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, component: str) -> Path:
        return self.root / f"{component}{self._SUFFIX}"

    def save(self, component: str, acked_seq: int, state: object) -> None:
        target = self._path(component)
        tmp = target.with_suffix(target.suffix + ".tmp")
        payload = pickle.dumps(
            {"component": component, "acked_seq": int(acked_seq), "state": state},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        framed = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        with open(tmp, "wb") as handle:
            handle.write(framed)
            handle.flush()
        os.replace(tmp, target)

    def load(self, component: str) -> Optional[Snapshot]:
        path = self._path(component)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if len(data) < _FRAME.size:
            return None
        length, crc = _FRAME.unpack(data[: _FRAME.size])
        payload = data[_FRAME.size : _FRAME.size + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            return None
        try:
            raw = pickle.loads(payload)
        except Exception:
            return None
        return Snapshot(
            component=str(raw["component"]),
            acked_seq=int(raw["acked_seq"]),
            state=raw["state"],
        )


@dataclasses.dataclass(frozen=True)
class ComponentRecovery:
    """How one component was restored."""

    component: str
    snapshot_seq: Optional[int]
    records_skipped: int
    records_replayed: int
    samples_replayed: int


@dataclasses.dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`LiveOperationsService.recover` did."""

    wal_records: int
    wal_samples: int
    wal_torn_tail: bool
    resume_seq: int
    components: Tuple[ComponentRecovery, ...]

    def component(self, name: str) -> ComponentRecovery:
        for entry in self.components:
            if entry.component == name:
                return entry
        raise KeyError(name)


def replay_component(
    component: str,
    records: List[WalRecord],
    acked_seq: int,
    apply,
    snapshot_seq: Optional[int] = None,
) -> ComponentRecovery:
    """Replay WAL ``records`` past ``acked_seq`` through ``apply``.

    Records wholly at or below the ack are skipped, and a record
    straddling it (a per-sample-delivery snapshot taken mid-chunk) is
    sliced so only the unacked rows re-apply — idempotent replay
    across the snapshot boundary either way.  Past that, the applied
    records must be gap-free from ``acked_seq + 1``: a hole means the
    WAL and snapshot disagree and the derived state cannot be trusted.
    """
    skipped = 0
    replayed = 0
    samples = 0
    expected = acked_seq + 1
    for record in records:
        if record.end_seq <= acked_seq:
            skipped += 1
            continue
        chunk = record.chunk()
        if record.start_seq <= acked_seq:
            offset = acked_seq + 1 - record.start_seq
            chunk = BusChunk(
                seq=record.seq,
                start_seq=acked_seq + 1,
                epoch_s=record.epoch_s[offset:],
                values={ch: block[offset:] for ch, block in record.values.items()},
                quality={
                    ch: block[offset:] for ch, block in record.quality.items()
                },
            )
        elif record.start_seq != expected:
            raise RecoveryError(
                f"WAL gap replaying {component!r}: expected record starting at "
                f"seq {expected}, found [{record.start_seq}, {record.end_seq}]"
            )
        apply(chunk)
        replayed += 1
        samples += len(chunk)
        expected = record.end_seq + 1
    return ComponentRecovery(
        component=component,
        snapshot_seq=snapshot_seq,
        records_skipped=skipped,
        records_replayed=replayed,
        samples_replayed=samples,
    )
