"""The concurrent, cached query engine over the rollup store.

Serves the three query shapes a facility dashboard needs:

* **point** — one statistic at one instant (the finest bucket holding
  the timestamp),
* **series** — per-bucket statistics across a window (the dashboard
  chart payload),
* **aggregate** — one statistic reduced over a whole window.

Scopes select the rack axis: one ``rack``, one ``row`` (Mira's 16-rack
rows), or the whole ``facility``.  Windows snap to the coarsest rollup
resolution that tiles them exactly (or an explicit ``resolution_s``).

Statistics
----------

``mean``/``min``/``max``/``sum`` compose from the rollup accumulators
with the same finite-value semantics as the offline
:class:`~repro.telemetry.database.EnvironmentalDatabase` aggregates;
``coverage`` is the usable-cell fraction
(quality ``OK``/``SUSPECT``); ``covered_sum`` is the
coverage-corrected facility total of
:meth:`~repro.telemetry.database.EnvironmentalDatabase._covered_sum` —
non-reporting racks estimated at the reporting mean, no-coverage
buckets NaN.  At the finest resolution (one sample per bucket)
``covered_sum`` reproduces the offline series exactly.

Caching
-------

Results live in a keyed LRU cache with hit/miss/eviction counters.
Invalidation is *windowed*: each entry is stamped with the store
version it was computed at, and on lookup the engine asks the store
for the earliest timestamp mutated since that version.  Entries whose
window ends before any new data stay valid (and are re-stamped);
entries the new data touches are recomputed.  Appending live samples
therefore invalidates "today's" queries but leaves last month's
dashboards cached.

``serve_many`` executes a batch of queries on a thread pool, the
concurrent read path the service benchmark exercises.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import constants
from repro.parallel import resolve_workers
from repro.service.rollup import BucketWindow, RollupStore
from repro.telemetry import nanstats
from repro.telemetry.records import Channel

QUERY_KINDS = ("point", "series", "aggregate")
QUERY_STATS = ("mean", "min", "max", "sum", "coverage", "covered_sum")
QUERY_SCOPES = ("facility", "rack", "row")


@dataclasses.dataclass(frozen=True)
class Query:
    """One immutable, hashable query (it is its own cache key).

    Attributes:
        kind: ``"point"``, ``"series"``, or ``"aggregate"``.
        channel: The telemetry channel.
        start_epoch_s: Window start (for a point, the instant).
        end_epoch_s: Window end, exclusive (ignored for points).
        stat: One of :data:`QUERY_STATS`.
        scope: ``"facility"``, ``"rack"``, or ``"row"``.
        rack: Flat rack index, required when ``scope == "rack"``.
        row: Row index, required when ``scope == "row"``.
        resolution_s: Explicit rollup resolution; ``None`` snaps to
            the coarsest level tiling the window.
    """

    kind: str
    channel: Channel
    start_epoch_s: float
    end_epoch_s: float = 0.0
    stat: str = "mean"
    scope: str = "facility"
    rack: Optional[int] = None
    row: Optional[int] = None
    resolution_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ValueError(f"kind must be one of {QUERY_KINDS}, got {self.kind!r}")
        if self.stat not in QUERY_STATS:
            raise ValueError(f"stat must be one of {QUERY_STATS}, got {self.stat!r}")
        if self.scope not in QUERY_SCOPES:
            raise ValueError(
                f"scope must be one of {QUERY_SCOPES}, got {self.scope!r}"
            )
        if self.scope == "rack" and self.rack is None:
            raise ValueError("rack scope requires a rack index")
        if self.scope == "row" and self.row is None:
            raise ValueError("row scope requires a row index")
        if self.kind != "point" and self.end_epoch_s <= self.start_epoch_s:
            raise ValueError("window end must exceed its start")


@dataclasses.dataclass(frozen=True)
class QueryResult:
    """Answer to one query.

    ``value`` holds the scalar for point/aggregate queries; series
    queries fill ``epoch_s``/``values`` (read-only, one entry per
    bucket).  ``resolution_s`` is the level that actually served it.
    """

    query: Query
    resolution_s: float
    value: float = np.nan
    epoch_s: Optional[np.ndarray] = None
    values: Optional[np.ndarray] = None
    #: Structured failure from the guarded batch path (``serve_many``):
    #: ``None`` for a served result, otherwise the error description.
    #: Failed results carry ``value = NaN`` and no series payload.
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclasses.dataclass
class CacheCounters:
    """Cache observability."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries recomputed because new data touched their window.
    invalidations: int = 0
    #: Entries kept after a version check proved their window clean.
    revalidations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclasses.dataclass
class ServeCounters:
    """Batch-path (``serve_many``) observability."""

    #: Queries answered successfully.
    served: int = 0
    #: Queries that raised (returned as structured-error results).
    errors: int = 0
    #: Queries cut off by the per-query deadline.
    timeouts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class CacheInfo:
    """One consistent snapshot of the query-cache counters.

    Returned by :meth:`QueryEngine.cache_info` so external reporters —
    the HTTP ``/metrics`` endpoint, ``repro query --stats`` — get the
    counters, occupancy, and derived hit rate as one immutable value
    instead of reaching into engine internals.  Subscriptable for
    backward compatibility with the dict it replaced.
    """

    hits: int
    misses: int
    evictions: int
    invalidations: int
    revalidations: int
    #: Entries currently cached.
    entries: int
    #: Maximum entries (the LRU bound).
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        info = dataclasses.asdict(self)
        info["hit_rate"] = self.hit_rate
        return info

    def __getitem__(self, key: str):
        return self.as_dict()[key]


@dataclasses.dataclass
class _CacheEntry:
    result: QueryResult
    version: int


def _scope_slice(query: Query) -> slice:
    if query.scope == "rack":
        return slice(query.rack, query.rack + 1)
    if query.scope == "row":
        start = query.row * constants.RACKS_PER_ROW
        return slice(start, start + constants.RACKS_PER_ROW)
    return slice(None)


def _bucket_stats(window: BucketWindow, stat: str, racks: slice) -> np.ndarray:
    """Per-bucket statistic over the scoped racks, shape (buckets,)."""
    count = window.count[:, racks]
    total = window.total[:, racks]
    if stat == "mean":
        c = count.sum(axis=1)
        return np.divide(
            total.sum(axis=1), c, out=np.full(len(c), np.nan), where=c > 0
        )
    if stat == "min":
        return nanstats.nanmin(window.minimum[:, racks], axis=1)
    if stat == "max":
        return nanstats.nanmax(window.maximum[:, racks], axis=1)
    if stat == "sum":
        return total.sum(axis=1)
    if stat == "coverage":
        width = count.shape[1]
        denominator = window.samples * width
        return np.divide(
            window.usable[:, racks].sum(axis=1),
            denominator,
            out=np.full(len(denominator), np.nan, dtype="float64"),
            where=denominator > 0,
        )
    # covered_sum: scale the scoped total so non-reporting racks are
    # estimated at the reporting-rack mean; no-coverage buckets NaN.
    width = total.shape[1]
    c = count.sum(axis=1)
    return np.divide(
        total.sum(axis=1) * float(width),
        c,
        out=np.full(len(c), np.nan),
        where=c > 0,
    )


def _reduce_window(window: BucketWindow, stat: str, racks: slice) -> float:
    """One scalar over the whole window (aggregate queries)."""
    if window.epoch.size == 0:
        return float("nan")
    if stat == "mean":
        count = int(window.count[:, racks].sum())
        if count == 0:
            return float("nan")
        return float(window.total[:, racks].sum() / count)
    if stat == "min":
        return float(nanstats.nanmin(window.minimum[:, racks]))
    if stat == "max":
        return float(nanstats.nanmax(window.maximum[:, racks]))
    if stat == "sum":
        return float(window.total[:, racks].sum())
    if stat == "coverage":
        width = window.count[:, racks].shape[1]
        cells = int(window.samples.sum()) * width
        if cells == 0:
            return float("nan")
        return float(window.usable[:, racks].sum() / cells)
    # covered_sum aggregates as the per-bucket series mean, matching
    # the offline "mean of the coverage-corrected total series".
    return float(nanstats.nanmean(_bucket_stats(window, "covered_sum", racks)))


class QueryEngine:
    """Cached, thread-safe queries over a :class:`RollupStore`.

    Args:
        store: The rollup store to serve from.
        cache_size: Maximum cached results (LRU beyond that).
    """

    def __init__(self, store: RollupStore, cache_size: int = 1024) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.store = store
        self.cache_size = cache_size
        self.counters = CacheCounters()
        self.serve_counters = ServeCounters()
        self._cache: "collections.OrderedDict[Query, _CacheEntry]" = (
            collections.OrderedDict()
        )
        self._lock = threading.Lock()
        # Memoized earliest-mutation answers for the current store
        # version: chunked ingest bumps the version once per chunk, so
        # validating many cached entries against one new chunk costs a
        # single mutation-history scan per distinct entry version.
        self._mutation_memo: Dict[int, float] = {}
        self._mutation_memo_version = -1

    # -- cache machinery ----------------------------------------------------------

    def _window_end(self, query: Query) -> float:
        if query.kind == "point":
            resolution = query.resolution_s or self.store.resolutions_s[0]
            return (
                np.floor(query.start_epoch_s / resolution) * resolution + resolution
            )
        return query.end_epoch_s

    def _lookup(self, query: Query) -> Optional[Tuple[QueryResult, int]]:
        with self._lock:
            entry = self._cache.get(query)
            if entry is None:
                self.counters.misses += 1
                return None
            current = self.store.version
            if entry.version != current:
                earliest = self._earliest_since(entry.version, current)
                if earliest < self._window_end(query):
                    # New data landed inside the window: recompute.
                    del self._cache[query]
                    self.counters.invalidations += 1
                    self.counters.misses += 1
                    return None
                entry.version = current
                self.counters.revalidations += 1
            self._cache.move_to_end(query)
            self.counters.hits += 1
            return entry.result, entry.version

    def _earliest_since(self, version: int, current: int) -> float:
        """Memoized ``store.earliest_mutation_since`` (lock held)."""
        if self._mutation_memo_version != current:
            self._mutation_memo.clear()
            self._mutation_memo_version = current
        earliest = self._mutation_memo.get(version)
        if earliest is None:
            earliest = self.store.earliest_mutation_since(version)
            self._mutation_memo[version] = earliest
        return earliest

    def _store_entry(self, query: Query, result: QueryResult, version: int) -> None:
        with self._lock:
            self._cache[query] = _CacheEntry(result=result, version=version)
            self._cache.move_to_end(query)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                self.counters.evictions += 1

    def cache_info(self) -> CacheInfo:
        """A consistent :class:`CacheInfo` snapshot (taken under the lock)."""
        with self._lock:
            return CacheInfo(
                hits=self.counters.hits,
                misses=self.counters.misses,
                evictions=self.counters.evictions,
                invalidations=self.counters.invalidations,
                revalidations=self.counters.revalidations,
                entries=len(self._cache),
                capacity=self.cache_size,
            )

    # -- execution ----------------------------------------------------------------

    def _compute(self, query: Query) -> Tuple[QueryResult, int]:
        if query.kind == "point":
            resolution = query.resolution_s or self.store.resolutions_s[0]
            start = float(
                np.floor(query.start_epoch_s / resolution) * resolution
            )
            end = start + resolution
        else:
            resolution = query.resolution_s or self.store.snap_resolution(
                query.start_epoch_s, query.end_epoch_s
            )
            start, end = query.start_epoch_s, query.end_epoch_s
        window = self.store.window(resolution, query.channel, start, end)
        racks = _scope_slice(query)
        if query.kind == "series":
            values = _bucket_stats(window, query.stat, racks)
            epoch = window.epoch
            epoch.flags.writeable = False
            values.flags.writeable = False
            result = QueryResult(
                query=query,
                resolution_s=resolution,
                epoch_s=epoch,
                values=values,
            )
        else:
            result = QueryResult(
                query=query,
                resolution_s=resolution,
                value=_reduce_window(window, query.stat, racks),
            )
        return result, window.version

    def execute(self, query: Query) -> QueryResult:
        """Serve one query, from cache when valid.

        Raises:
            KeyError: when an explicit ``resolution_s`` names no level.
        """
        return self.execute_versioned(query)[0]

    def execute_versioned(self, query: Query) -> Tuple[QueryResult, int]:
        """:meth:`execute`, plus the store version the answer is valid at.

        The version is the stamp of the cache entry that served (or
        now holds) the result — the rollup-store version whose data
        the answer reflects.  The HTTP API returns it with every
        response so concurrent clients can correlate answers with
        ingest progress.
        """
        cached = self._lookup(query)
        if cached is not None:
            return cached
        result, version = self._compute(query)
        self._store_entry(query, result, version)
        return result, version

    def _execute_guarded(self, query: Query) -> QueryResult:
        """:meth:`execute` that never raises.

        A failing query comes back as a structured-error
        :class:`QueryResult` in its batch position instead of
        poisoning the whole ``serve_many`` call (``pool.map`` re-raises
        the first worker exception and discards every other result).
        Direct :meth:`execute` callers still get the exception.
        """
        try:
            result = self.execute(query)
        except Exception as exc:  # noqa: BLE001 - the batch isolation boundary
            with self._lock:
                self.serve_counters.errors += 1
            return QueryResult(
                query=query,
                resolution_s=float("nan"),
                error=f"{type(exc).__name__}: {exc}",
            )
        with self._lock:
            self.serve_counters.served += 1
        return result

    def serve_info(self) -> Dict[str, int]:
        with self._lock:
            return self.serve_counters.as_dict()

    def serve_many(
        self,
        queries: Sequence[Query],
        workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> List[QueryResult]:
        """Execute a batch concurrently; results keep request order.

        The thread count follows the shared
        :func:`repro.parallel.resolve_workers` rule (explicit argument,
        else ``REPRO_WORKERS``, else the core count, capped at the
        batch size) — the same rule the predictor's process pools use.

        Failures are **isolated**: a query that raises yields a
        :class:`QueryResult` with :attr:`QueryResult.error` set, in
        its request position, and the rest of the batch still serves.
        With ``timeout_s``, waiting on any one query is bounded;
        overrunning queries yield timeout errors (counted in
        :attr:`serve_counters`) while their threads finish in the
        background — a completion after abandonment still lands in the
        cache and the served/error counters.
        """
        if not queries:
            return []
        workers = resolve_workers(workers, max_tasks=len(queries))
        if workers <= 1 and timeout_s is None:
            return [self._execute_guarded(q) for q in queries]
        pool = ThreadPoolExecutor(max_workers=max(workers, 1))
        abandoned = False
        try:
            futures = [pool.submit(self._execute_guarded, q) for q in queries]
            results: List[QueryResult] = []
            for query, future in zip(queries, futures):
                try:
                    results.append(future.result(timeout=timeout_s))
                except _FuturesTimeout:
                    abandoned = True
                    with self._lock:
                        self.serve_counters.timeouts += 1
                    results.append(
                        QueryResult(
                            query=query,
                            resolution_s=float("nan"),
                            error=f"timeout after {timeout_s:g}s",
                        )
                    )
            return results
        finally:
            # Don't block the caller on abandoned queries; their
            # threads drain in the background.
            pool.shutdown(wait=not abandoned)
