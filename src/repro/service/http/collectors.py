"""Collector adapters: sources that feed ``POST /v1/ingest``.

Two adapters over one transport client:

* :class:`FileImportCollector` — replays an exported telemetry CSV
  (the :func:`~repro.telemetry.export.export_telemetry_csv` format,
  quality columns included) through the HTTP ingest path, batch by
  batch.  The acceptance tests use it to pin that a file imported over
  HTTP yields a database equal to :func:`import_telemetry_csv`'s.
* :class:`SimulatedPollerCollector` — a redfish/ipmi-style poller
  stand-in: every ``interval_s`` it "reads" one sample of plausible
  per-rack sensor values from a seeded generator and posts them in
  bounded batches.  Deterministic per seed, so tests and demos replay
  exactly.

The shared :class:`IngestClient` does the HTTP legwork: bearer auth,
JSON encoding via the canonical protocol, and **bounded-backoff
retries** — 429 backpressure (honouring ``Retry-After``), 5xx, and
connection resets are retried up to ``RetryPolicy.max_attempts`` with
exponentially growing, capped delays; any other 4xx is the client's
own bug and raises immediately.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple, Union

import numpy as np

from repro import constants
from repro.facility.topology import RackId
from repro.service.http.protocol import API_VERSION, encode_batch
from repro.telemetry.records import CHANNELS, Channel, Quality
from repro.telemetry.schema import telemetry_header

PathLike = Union[str, Path]


class IngestClientError(Exception):
    """The client gave up: a non-retryable refusal or retries exhausted.

    Attributes:
        status: HTTP status when the server answered, else ``None``
            (transport failure).
        error_type: The structured error's ``type`` slug when one was
            decoded, else ``None``.
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        error_type: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient ingest failures.

    Attributes:
        max_attempts: Total tries per batch (first attempt included).
        base_delay_s: Sleep before the first retry.
        multiplier: Growth factor per retry.
        max_delay_s: Ceiling on any single sleep.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_s(self, retry_index: int) -> float:
        """Sleep before retry number ``retry_index`` (0-based)."""
        return min(
            self.max_delay_s, self.base_delay_s * self.multiplier**retry_index
        )


@dataclasses.dataclass
class ClientCounters:
    """What one client did, for tests and collector logs."""

    batches_posted: int = 0
    rows_posted: int = 0
    retries: int = 0
    backpressure_hits: int = 0
    transport_failures: int = 0
    server_errors: int = 0
    give_ups: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class IngestClient:
    """Posts collector batches to an operations server, with retries.

    Args:
        base_url: e.g. ``http://127.0.0.1:8080`` (no trailing slash).
        collector: This collector's name (the auth principal).
        token: Bearer token; ``None`` when the server runs open.
        retry: Backoff policy for 429/5xx/transport failures.
        timeout_s: Per-request socket timeout.
        sleep: Injection point for the backoff sleep (tests pass a
            recorder; production uses :func:`time.sleep`).
    """

    def __init__(
        self,
        base_url: str,
        collector: str,
        token: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        timeout_s: float = 10.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.collector = collector
        self.token = token
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout_s = timeout_s
        self._sleep = sleep
        self.counters = ClientCounters()

    # -- transport ---------------------------------------------------------------

    def post_batch(
        self,
        epoch_s: np.ndarray,
        channels: Mapping[Channel, np.ndarray],
        quality: Optional[Mapping[Channel, np.ndarray]] = None,
    ) -> Dict:
        """Encode and post one columnar batch; returns the response.

        Raises:
            IngestClientError: on a non-retryable 4xx, or once the
                retry budget is exhausted.
        """
        payload = encode_batch(self.collector, epoch_s, channels, quality)
        response = self._post_with_retries("/v1/ingest", payload)
        self.counters.batches_posted += 1
        self.counters.rows_posted += int(np.asarray(epoch_s).shape[0])
        return response

    def get_json(self, path: str) -> Dict:
        """One GET, decoded; no retries (probes want the first answer)."""
        request = urllib.request.Request(
            self.base_url + path, headers=self._headers(), method="GET"
        )
        with urllib.request.urlopen(request, timeout=self.timeout_s) as reply:
            return json.loads(reply.read())

    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _post_with_retries(self, path: str, payload: Dict) -> Dict:
        body = json.dumps(payload).encode("utf-8")
        retries = 0
        while True:
            delay = None
            try:
                request = urllib.request.Request(
                    self.base_url + path,
                    data=body,
                    headers=self._headers(),
                    method="POST",
                )
                with urllib.request.urlopen(
                    request, timeout=self.timeout_s
                ) as reply:
                    return json.loads(reply.read())
            except urllib.error.HTTPError as exc:
                status, error_type, message = _decode_http_error(exc)
                if status == 429:
                    self.counters.backpressure_hits += 1
                    retry_after = exc.headers.get("Retry-After")
                    if retry_after is not None:
                        try:
                            delay = float(retry_after)
                        except ValueError:
                            delay = None
                elif status >= 500:
                    self.counters.server_errors += 1
                else:
                    # A non-transient refusal (bad batch, bad auth):
                    # retrying cannot help.
                    raise IngestClientError(
                        f"{status} {error_type}: {message}",
                        status=status,
                        error_type=error_type,
                    ) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError):
                # Connection refused/reset mid-exchange (chaos drills
                # inject exactly this) — retryable.
                self.counters.transport_failures += 1
                status, error_type, message = None, None, "transport failure"
            if retries >= self.retry.max_attempts - 1:
                self.counters.give_ups += 1
                raise IngestClientError(
                    f"gave up after {self.retry.max_attempts} attempts "
                    f"(last: {message})",
                    status=status,
                    error_type=error_type,
                )
            self._sleep(delay if delay is not None else self.retry.delay_s(retries))
            retries += 1
            self.counters.retries += 1


def _decode_http_error(exc: urllib.error.HTTPError) -> Tuple[int, str, str]:
    """Pull the structured error out of an HTTP failure reply."""
    try:
        envelope = json.loads(exc.read())
        error = envelope.get("error", {})
        return exc.code, str(error.get("type", "unknown")), str(
            error.get("message", exc.reason)
        )
    except (ValueError, AttributeError):
        return exc.code, "unknown", str(exc.reason)


# -- file import -------------------------------------------------------------------


class FileImportCollector:
    """Replays an exported telemetry CSV through HTTP ingest.

    Parses the canonical CSV format (with or without quality columns)
    into columnar ``(samples, racks)`` batches and posts them in
    delivery order, so a strict-policy server reconstructs the file's
    database exactly — explicit SUSPECT/SCRUBBED verdicts included.

    Args:
        path: The CSV to replay.
        client: Transport (carries collector name, auth, retries).
        num_racks: Rack-axis width of the target database.
        batch_samples: Samples per POST (bounded by the server's
            ``max_batch_samples``).
    """

    def __init__(
        self,
        path: PathLike,
        client: IngestClient,
        num_racks: int = constants.NUM_RACKS,
        batch_samples: int = 256,
    ) -> None:
        if batch_samples < 1:
            raise ValueError("batch_samples must be >= 1")
        self.path = Path(path)
        self.client = client
        self.num_racks = num_racks
        self.batch_samples = batch_samples

    def iter_samples(
        self,
    ) -> Iterator[Tuple[float, Dict[Channel, np.ndarray], Dict[Channel, np.ndarray], bool]]:
        """Yield ``(epoch, values, quality, has_explicit)`` per sample.

        ``values`` rows are NaN where the file is empty; ``quality``
        rows carry the full flag vector (derived OK/MISSING plus any
        explicit override), with ``has_explicit`` marking samples where
        at least one cell's flag was spelled out in the file.
        """
        with open(self.path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            if header == telemetry_header(include_quality=True):
                with_quality = True
            elif header == telemetry_header(include_quality=False):
                with_quality = False
            else:
                raise ValueError(f"unexpected telemetry header: {header}")
            channel_count = len(CHANNELS)
            pending: Optional[float] = None
            values: Dict[Channel, np.ndarray] = {}
            flags: Dict[Channel, np.ndarray] = {}
            explicit = False

            def fresh() -> None:
                for ch in CHANNELS:
                    values[ch] = np.full(self.num_racks, np.nan)
                    flags[ch] = np.full(
                        self.num_racks, int(Quality.MISSING), dtype=np.uint8
                    )

            for row in reader:
                epoch = float(row[0])
                rack = RackId.parse(row[1]).flat_index
                if epoch != pending:
                    if pending is not None:
                        yield pending, dict(values), dict(flags), explicit
                    pending = epoch
                    fresh()
                    explicit = False
                for channel, cell in zip(CHANNELS, row[2 : 2 + channel_count]):
                    if cell != "":
                        values[channel][rack] = float(cell)
                        flags[channel][rack] = int(Quality.OK)
                if with_quality:
                    for channel, cell in zip(CHANNELS, row[2 + channel_count :]):
                        if cell != "":
                            flags[channel][rack] = int(cell)
                            explicit = True
            if pending is not None:
                yield pending, dict(values), dict(flags), explicit

    def run(self) -> int:
        """Post the whole file; returns the number of samples sent.

        Quality matrices ride along only for batches containing at
        least one explicit flag — pristine stretches post as plain
        value batches (which lenient-policy servers also accept).
        """
        sent = 0
        epochs: list = []
        value_rows: Dict[Channel, list] = {ch: [] for ch in CHANNELS}
        flag_rows: Dict[Channel, list] = {ch: [] for ch in CHANNELS}
        batch_explicit = False

        def flush() -> None:
            nonlocal sent, batch_explicit
            if not epochs:
                return
            channels = {
                ch: np.stack(value_rows[ch], axis=0) for ch in CHANNELS
            }
            quality = (
                {ch: np.stack(flag_rows[ch], axis=0) for ch in CHANNELS}
                if batch_explicit
                else None
            )
            self.client.post_batch(np.array(epochs), channels, quality)
            sent += len(epochs)
            epochs.clear()
            for ch in CHANNELS:
                value_rows[ch].clear()
                flag_rows[ch].clear()
            batch_explicit = False

        for epoch, values, flags, explicit in self.iter_samples():
            epochs.append(epoch)
            for ch in CHANNELS:
                value_rows[ch].append(values[ch])
                flag_rows[ch].append(flags[ch])
            batch_explicit = batch_explicit or explicit
            if len(epochs) >= self.batch_samples:
                flush()
        flush()
        return sent


# -- simulated poller --------------------------------------------------------------

#: Per-channel (mean, spread) for the simulated sensor walk — loosely
#: the operating envelope Table II of the paper reports for Mira.
_POLLER_ENVELOPE: Dict[Channel, Tuple[float, float]] = {
    Channel.DC_TEMPERATURE: (65.0, 2.0),
    Channel.DC_HUMIDITY: (40.0, 6.0),
    Channel.FLOW: (30.0, 1.5),
    Channel.INLET_TEMPERATURE: (60.0, 1.0),
    Channel.OUTLET_TEMPERATURE: (71.0, 3.0),
    Channel.POWER: (75.0, 12.0),
    Channel.UTILIZATION: (0.85, 0.1),
}


class SimulatedPollerCollector:
    """A redfish/ipmi-style poller over synthetic rack sensors.

    Each poll draws one ``(racks,)`` reading per channel from a seeded
    generator — a stand-in for walking BMC endpoints — and readings
    accumulate into bounded batches posted through the shared client.
    Identical seeds produce identical batches, so ingest tests and
    chaos drills replay byte-for-byte.

    Args:
        client: Transport (name, auth, retries).
        num_racks: Rack-axis width.
        start_epoch_s: Timestamp of the first poll.
        interval_s: Poll cadence (timestamps advance by this).
        seed: Generator seed; same seed, same telemetry.
        batch_samples: Polls accumulated per POST.
        dropout_rate: Probability a rack misses a poll entirely
            (its cells post as NaN, like a BMC timeout).
    """

    def __init__(
        self,
        client: IngestClient,
        num_racks: int = constants.NUM_RACKS,
        start_epoch_s: float = 0.0,
        interval_s: float = 60.0,
        seed: int = 0,
        batch_samples: int = 64,
        dropout_rate: float = 0.0,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 0.0 <= dropout_rate < 1.0:
            raise ValueError("dropout_rate must be in [0, 1)")
        self.client = client
        self.num_racks = num_racks
        self.interval_s = float(interval_s)
        self.batch_samples = batch_samples
        self.dropout_rate = dropout_rate
        self._rng = np.random.default_rng(seed)
        self._next_epoch = float(start_epoch_s)

    def poll_once(self) -> Tuple[float, Dict[Channel, np.ndarray]]:
        """One synchronous sweep across all racks' sensors."""
        epoch = self._next_epoch
        self._next_epoch += self.interval_s
        sample: Dict[Channel, np.ndarray] = {}
        dropped = (
            self._rng.random(self.num_racks) < self.dropout_rate
            if self.dropout_rate > 0.0
            else None
        )
        for channel in CHANNELS:
            mean, spread = _POLLER_ENVELOPE[channel]
            reading = self._rng.normal(mean, spread, size=self.num_racks)
            if channel is Channel.UTILIZATION:
                reading = np.clip(reading, 0.0, 1.0)
            if dropped is not None:
                reading = np.where(dropped, np.nan, reading)
            sample[channel] = reading
        return epoch, sample

    def run(self, num_samples: int) -> int:
        """Poll ``num_samples`` times, posting in bounded batches."""
        sent = 0
        epochs: list = []
        rows: Dict[Channel, list] = {ch: [] for ch in CHANNELS}
        for _ in range(num_samples):
            epoch, sample = self.poll_once()
            epochs.append(epoch)
            for ch in CHANNELS:
                rows[ch].append(sample[ch])
            if len(epochs) >= self.batch_samples:
                self.client.post_batch(
                    np.array(epochs),
                    {ch: np.stack(rows[ch], axis=0) for ch in CHANNELS},
                )
                sent += len(epochs)
                epochs.clear()
                for ch in CHANNELS:
                    rows[ch].clear()
        if epochs:
            self.client.post_batch(
                np.array(epochs),
                {ch: np.stack(rows[ch], axis=0) for ch in CHANNELS},
            )
            sent += len(epochs)
        return sent


#: Wire-visible API version, re-exported so collector scripts need only
#: this module.
COLLECTOR_API_VERSION = API_VERSION
