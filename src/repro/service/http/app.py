"""The operations API application: routes, independent of sockets.

:class:`OperationsApp` is the whole HTTP surface as a plain callable —
``(method, path, params, body, headers) -> (status, payload,
headers)`` — with no socket, thread, or process anywhere in it.  The
server layer (:mod:`repro.service.http.server`) adapts it onto
``http.server``; the tests dispatch into it directly to exercise
every route and failure shape without network flakiness.

Route table (version 1):

=======  =========================  ==========================================
Method   Path                       Serves
=======  =========================  ==========================================
GET      ``/``                      route table (this table, as JSON)
GET      ``/healthz``               liveness + dataset identity
GET      ``/metrics``               serve/ingest/supervisor counters,
                                    cache hit rates
GET      ``/v1/query/point``        one statistic at one instant
GET      ``/v1/query/series``       per-bucket statistics over a window
GET      ``/v1/query/aggregate``    one statistic over a whole window
POST     ``/v1/ingest``             one collector batch (auth + backpressure)
=======  =========================  ==========================================

Every handler either returns a success payload or raises
:class:`~repro.service.http.protocol.ApiError`; anything else escaping
a handler is a bug, which the dispatcher converts to a structured 500
(``internal``) — clients never see a traceback and the serving thread
never dies.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Dict, Mapping, Optional, Tuple

from repro import __version__
from repro.service.http.ingest import IngestGateway, IngestServerConfig
from repro.service.http.protocol import (
    API_VERSION,
    ApiError,
    QUERY_ROUTES,
    decode_batch,
    encode_result,
    parse_query,
)
from repro.service.query import QueryEngine
from repro.service.rollup import DEFAULT_RESOLUTIONS_S, RollupStore
from repro.telemetry.archive import TelemetryArchive
from repro.telemetry.database import EnvironmentalDatabase

#: Series responses larger than this are refused (422) — a six-year
#: window at raw cadence is a rollup-level mistake, not a payload.
MAX_SERIES_POINTS = 100_000

_ROUTE_TABLE = {
    "GET /": "this route table",
    "GET /healthz": "liveness and dataset identity",
    "GET /metrics": "serve/ingest/cache/supervision counters",
    "GET /v1/query/point": "one statistic at one instant",
    "GET /v1/query/series": "per-bucket statistics over a window",
    "GET /v1/query/aggregate": "one statistic over a whole window",
    "POST /v1/ingest": "one collector sample batch",
}


@dataclasses.dataclass
class RequestCounters:
    """Server-side request observability (rendered by ``/metrics``)."""

    requests: int = 0
    served: int = 0
    client_errors: int = 0
    server_errors: int = 0
    chaos_errors: int = 0
    chaos_resets: int = 0
    by_route: Dict[str, int] = dataclasses.field(default_factory=dict)

    def as_dict(self) -> Dict:
        return dataclasses.asdict(self)


class OperationsApp:
    """The assembled operations API over a query engine and gateway.

    Args:
        engine: The query tier.  May be shared with a live
            :class:`~repro.service.live.LiveOperationsService` whose
            replay is still running — the engine is thread-safe and
            responses carry the store version they reflect.
        gateway: Optional ingest tier; without it, ``POST /v1/ingest``
            answers 503 ``read_only``.
        chaos: Optional :class:`~repro.chaos.ChaosInjector` consulted
            once per request (the HTTP fault hook).
        service: Optional live service whose supervision counters
            ``/metrics`` should include.
        max_series_points: Refusal bound for series payloads.
        database: Optional backing telemetry database; when present,
            ``/metrics`` reports its chunked content address so
            operators can watch the digest watermark advance as
            collector batches land.
    """

    def __init__(
        self,
        engine: QueryEngine,
        gateway: Optional[IngestGateway] = None,
        chaos=None,
        service=None,
        max_series_points: int = MAX_SERIES_POINTS,
        database: Optional[EnvironmentalDatabase] = None,
    ) -> None:
        self.engine = engine
        self.gateway = gateway
        self.chaos = chaos
        self.service = service
        self.max_series_points = max_series_points
        self.database = database
        self.counters = RequestCounters()
        self._counter_lock = threading.Lock()
        self._request_index = -1
        self._started = time.monotonic()

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def from_database(
        cls,
        database: EnvironmentalDatabase,
        resolutions_s: Tuple[float, ...] = DEFAULT_RESOLUTIONS_S,
        cache_size: int = 1024,
        ingest: Optional[IngestServerConfig] = None,
        chaos=None,
    ) -> "OperationsApp":
        """Query tier over a finished database, optional ingest tier.

        With ``ingest`` set, collector batches append to the *same*
        database and fold into the same rollup store the query routes
        serve, so ingested samples become queryable immediately.
        """
        store = RollupStore.from_database(database, resolutions_s)
        engine = QueryEngine(store, cache_size=cache_size)
        gateway = (
            IngestGateway(database, rollups=store, config=ingest)
            if ingest is not None
            else None
        )
        return cls(engine, gateway=gateway, chaos=chaos, database=database)

    @classmethod
    def from_archive(
        cls,
        archive_dir,
        resolutions_s: Tuple[float, ...] = DEFAULT_RESOLUTIONS_S,
        cache_size: int = 1024,
        chaos=None,
    ) -> "OperationsApp":
        """Read-only query tier over a memory-mapped telemetry archive.

        This is the per-worker entry point of the pre-forked server:
        each worker process calls it after ``fork`` and reopens the
        archive memory-mapped — zero-copy, nothing pickled or shipped
        over a pipe — so read throughput scales with cores while the
        page cache backs all workers with one copy of the data.
        """
        database = TelemetryArchive.load(archive_dir, mmap=True)
        return cls.from_database(
            database,
            resolutions_s=resolutions_s,
            cache_size=cache_size,
            chaos=chaos,
        )

    # -- dispatch -----------------------------------------------------------------

    def next_request_index(self) -> int:
        """The server's monotone arrival counter (chaos schedule key)."""
        with self._counter_lock:
            self._request_index += 1
            return self._request_index

    def handle(
        self,
        method: str,
        path: str,
        params: Mapping[str, str],
        body: Optional[Dict] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, Dict, Dict[str, str]]:
        """Dispatch one request; never raises.

        Returns ``(status, payload, extra_headers)``.  The payload is
        always a JSON-serializable dict — either a success envelope or
        the structured error envelope.
        """
        route = f"{method} {path}"
        try:
            status, payload, extra = self._dispatch(
                method, path, params, body, headers or {}
            )
        except ApiError as exc:
            status, payload, extra = exc.status, exc.payload(), exc.headers
        except Exception as exc:  # noqa: BLE001 - the no-traceback boundary
            status = 500
            payload = ApiError(
                500, "internal", f"{type(exc).__name__}: {exc}"
            ).payload()
            extra = {}
        with self._counter_lock:
            self.counters.requests += 1
            self.counters.by_route[route] = self.counters.by_route.get(route, 0) + 1
            if status < 400:
                self.counters.served += 1
            elif status < 500:
                self.counters.client_errors += 1
            else:
                self.counters.server_errors += 1
        return status, payload, extra

    def _dispatch(
        self,
        method: str,
        path: str,
        params: Mapping[str, str],
        body: Optional[Dict],
        headers: Mapping[str, str],
    ) -> Tuple[int, Dict, Dict[str, str]]:
        if path == "/" and method == "GET":
            return 200, {"api_version": API_VERSION, "routes": _ROUTE_TABLE}, {}
        if path == "/healthz" and method == "GET":
            return 200, self._healthz(), {}
        if path == "/metrics" and method == "GET":
            return 200, self.metrics(), {}
        if path.startswith("/v1/"):
            return self._dispatch_v1(method, path, params, body, headers)
        if path.startswith("/v") and len(path) > 2 and path[2].isdigit():
            raise ApiError(
                404,
                "unsupported_version",
                f"no such API version prefix {path.split('/')[1]!r}; "
                f"supported: v{API_VERSION}",
            )
        raise ApiError(404, "unknown_route", f"no route {method} {path}")

    def _dispatch_v1(
        self,
        method: str,
        path: str,
        params: Mapping[str, str],
        body: Optional[Dict],
        headers: Mapping[str, str],
    ) -> Tuple[int, Dict, Dict[str, str]]:
        if path == "/v1/ingest":
            if method != "POST":
                raise ApiError(
                    405, "method_not_allowed", "/v1/ingest accepts POST only"
                )
            return self._ingest(body, headers)
        if path.startswith("/v1/query/") and method == "GET":
            kind = path[len("/v1/query/") :]
            if kind in QUERY_ROUTES:
                return self._query(kind, params)
            raise ApiError(
                404,
                "unknown_route",
                f"no query kind {kind!r}; choose from {list(QUERY_ROUTES)}",
            )
        raise ApiError(404, "unknown_route", f"no route {method} {path}")

    # -- handlers -----------------------------------------------------------------

    def _query(
        self, kind: str, params: Mapping[str, str]
    ) -> Tuple[int, Dict, Dict[str, str]]:
        query = parse_query(kind, params)
        if kind == "series":
            resolution = query.resolution_s or self.engine.store.snap_resolution(
                query.start_epoch_s, query.end_epoch_s
            )
            buckets = (query.end_epoch_s - query.start_epoch_s) / resolution
            if buckets > self.max_series_points:
                raise ApiError(
                    422,
                    "window_too_large",
                    f"series would span ~{int(buckets)} buckets at "
                    f"{resolution:g}s; the limit is {self.max_series_points} "
                    "— widen resolution_s or narrow the window",
                )
        try:
            result, version = self.engine.execute_versioned(query)
        except KeyError as exc:
            raise ApiError(
                400,
                "bad_request",
                f"resolution_s names no rollup level: {exc}",
            ) from None
        return 200, encode_result(result, version), {}

    def _ingest(
        self, body: Optional[Dict], headers: Mapping[str, str]
    ) -> Tuple[int, Dict, Dict[str, str]]:
        gateway = self.gateway
        if gateway is None:
            raise ApiError(
                503,
                "read_only",
                "this server has no ingest tier (read-only query replica)",
            )
        if body is None:
            raise ApiError(400, "bad_json", "POST /v1/ingest needs a JSON body")
        batch = decode_batch(
            body,
            num_racks=gateway.database.num_racks,
            max_batch_samples=gateway.config.max_batch_samples,
        )
        gateway.authorize(batch.collector, _bearer_token(headers))
        return 200, gateway.ingest(batch), {}

    def _healthz(self) -> Dict:
        store = self.engine.store
        bounds = store.epoch_bounds()
        return {
            "api_version": API_VERSION,
            "status": "ok",
            "version": __version__,
            "uptime_s": time.monotonic() - self._started,
            "store_version": store.version,
            "ingested_rows": store.ingested_rows,
            "resolutions_s": list(store.resolutions_s),
            "num_racks": store.num_racks,
            "epoch_bounds": list(bounds) if bounds is not None else None,
            "ingest_enabled": self.gateway is not None,
        }

    def metrics(self) -> Dict:
        """The ``/metrics`` document."""
        payload: Dict = {
            "api_version": API_VERSION,
            "server": self._counters_snapshot(),
            "cache": self.engine.cache_info().as_dict(),
            "serve": self.engine.serve_info(),
            "store": {
                "version": self.engine.store.version,
                "ingested_rows": self.engine.store.ingested_rows,
                "buckets": {
                    f"{resolution:g}": count
                    for resolution, count in self.engine.store.bucket_counts().items()
                },
            },
        }
        if self.database is not None:
            try:
                # flush=False: hash committed rows only, so a metrics
                # poll never forces partially-assembled batches in.
                payload["dataset"] = self.database.digest_info(flush=False).as_dict()
            except Exception:  # noqa: BLE001 - observability is best effort
                pass
        try:
            from repro.analytics.incremental import default_store

            store = default_store()
            payload["section_cache"] = {
                "enabled": store.enabled,
                **store.counters.as_dict(),
            }
            if store.enabled:
                entries = store.entries()
                payload["section_cache"]["entries"] = len(entries)
                payload["section_cache"]["bytes"] = sum(
                    entry.size_bytes for entry in entries
                )
        except Exception:  # noqa: BLE001 - observability is best effort
            pass
        if self.gateway is not None:
            payload["ingest"] = self.gateway.metrics()
        if self.service is not None:
            payload["supervision"] = {
                name: counters.as_dict()
                for name, counters in self.service.supervisor.counters.items()
            }
        return payload

    def _counters_snapshot(self) -> Dict:
        with self._counter_lock:
            return self.counters.as_dict()

    def record_chaos(self, action: str) -> None:
        """Count a chaos-injected fault (called by the server layer)."""
        with self._counter_lock:
            if action == "error":
                self.counters.chaos_errors += 1
            else:
                self.counters.chaos_resets += 1


def _bearer_token(headers: Mapping[str, str]) -> Optional[str]:
    """Extract ``Authorization: Bearer <token>`` (case-insensitive)."""
    for key, value in headers.items():
        if key.lower() == "authorization":
            scheme, _, token = value.partition(" ")
            if scheme.lower() == "bearer" and token:
                return token.strip()
    return None
