"""Load generator for the operations HTTP API.

Builds a **deterministic** query mix (seeded generator over channels,
stats, scopes, and windows inside the dataset's advertised
``epoch_bounds``) and hammers a running server from parallel client
*processes* — process-level so a GIL-bound client can't masquerade as
a server bottleneck when the benchmark measures worker scaling.  Each
client process keeps one persistent HTTP/1.1 connection and walks its
shard of the path list serially, recording per-request latency.

Entry points: :func:`generate_query_paths` (the mix),
:func:`run_load` (the hammer), and the ``repro http-load`` CLI.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

import numpy as np

from repro.parallel import pstarmap, resolve_workers
from repro.service.http.protocol import query_path
from repro.service.query import Query
from repro.telemetry.records import CHANNELS

#: Default kind mix: dashboards poll points far more than they redraw.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("point", 0.6),
    ("aggregate", 0.25),
    ("series", 0.15),
)

_STATS = ("mean", "min", "max")


def generate_query_paths(
    start_epoch_s: float,
    end_epoch_s: float,
    num_racks: int,
    resolutions_s: Sequence[float],
    num_queries: int,
    seed: int = 0,
    mix: Sequence[Tuple[str, float]] = DEFAULT_MIX,
) -> List[str]:
    """A reproducible list of GET paths aimed inside the dataset.

    Windows and instants are snapped to the finest resolution so every
    query lands on real buckets; scopes rotate across facility, row,
    and rack.  Identical arguments produce identical paths, which is
    what lets cold-vs-warm cache passes replay the same traffic.
    """
    if end_epoch_s <= start_epoch_s:
        raise ValueError("end_epoch_s must exceed start_epoch_s")
    rng = np.random.default_rng(seed)
    finest = float(min(resolutions_s))
    span_buckets = max(1, int((end_epoch_s - start_epoch_s) / finest))
    kinds = [kind for kind, _ in mix]
    weights = np.array([weight for _, weight in mix], dtype="float64")
    weights /= weights.sum()
    paths: List[str] = []
    for _ in range(num_queries):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        channel = CHANNELS[int(rng.integers(len(CHANNELS)))]
        scope_draw = rng.random()
        if scope_draw < 0.5:
            scope, rack, row = "facility", None, None
        elif scope_draw < 0.75:
            scope, rack, row = "rack", int(rng.integers(num_racks)), None
        else:
            scope, rack, row = "row", None, int(rng.integers(max(1, num_racks // 16)))
        stat = _STATS[int(rng.integers(len(_STATS)))]
        if kind == "point":
            bucket = int(rng.integers(span_buckets))
            query = Query(
                "point",
                channel,
                start_epoch_s + bucket * finest,
                0.0,
                stat=stat,
                scope=scope,
                rack=rack,
                row=row,
            )
        else:
            lo = int(rng.integers(span_buckets))
            width = int(rng.integers(1, max(2, span_buckets - lo + 1)))
            query = Query(
                kind,
                channel,
                start_epoch_s + lo * finest,
                start_epoch_s + min(span_buckets, lo + width) * finest,
                stat=stat,
                scope=scope,
                rack=rack,
                row=row,
            )
        paths.append(query_path(kind, query))
    return paths


@dataclasses.dataclass(frozen=True)
class LoadReport:
    """One load pass, summarized."""

    requests: int
    errors: int
    elapsed_s: float
    requests_per_s: float
    p50_ms: float
    p99_ms: float
    mean_ms: float

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


def _fetch_shard(base_url: str, paths: List[str]) -> List[Tuple[float, int]]:
    """One client process: fetch its shard over a kept-alive connection.

    Module-level (picklable) for :func:`repro.parallel.pstarmap`.
    Returns ``(latency_s, status)`` per request; a transport failure
    records status 0 and reconnects.
    """
    split = urlsplit(base_url)
    conn = http.client.HTTPConnection(split.hostname, split.port, timeout=30)
    samples: List[Tuple[float, int]] = []
    for path in paths:
        begin = time.perf_counter()
        try:
            conn.request("GET", path)
            reply = conn.getresponse()
            payload = reply.read()
            status = reply.status
            if status == 200:
                json.loads(payload)  # clients parse what they fetch
        except (OSError, http.client.HTTPException):
            status = 0
            conn.close()
            conn = http.client.HTTPConnection(
                split.hostname, split.port, timeout=30
            )
        samples.append((time.perf_counter() - begin, status))
    conn.close()
    return samples


def run_load(
    base_url: str,
    paths: Sequence[str],
    clients: Optional[int] = None,
) -> LoadReport:
    """Hammer ``base_url`` with ``paths`` from parallel client processes.

    The path list is split into ``clients`` contiguous shards, one per
    process; throughput is total requests over the whole pass's wall
    clock (fork and join included — the honest number).
    """
    paths = list(paths)
    clients = resolve_workers(clients, max_tasks=len(paths))
    shards = [list(shard) for shard in np.array_split(np.array(paths), clients)]
    shards = [shard for shard in shards if shard]
    begin = time.perf_counter()
    shard_samples = pstarmap(
        _fetch_shard,
        [(base_url, shard) for shard in shards],
        workers=len(shards),
        chunksize=1,
    )
    elapsed = time.perf_counter() - begin
    latencies = np.array(
        [latency for samples in shard_samples for latency, _ in samples]
    )
    statuses = [status for samples in shard_samples for _, status in samples]
    errors = sum(1 for status in statuses if status != 200)
    return LoadReport(
        requests=len(statuses),
        errors=errors,
        elapsed_s=elapsed,
        requests_per_s=len(statuses) / elapsed if elapsed > 0 else 0.0,
        p50_ms=float(np.percentile(latencies, 50) * 1e3) if latencies.size else 0.0,
        p99_ms=float(np.percentile(latencies, 99) * 1e3) if latencies.size else 0.0,
        mean_ms=float(latencies.mean() * 1e3) if latencies.size else 0.0,
    )


@dataclasses.dataclass(frozen=True)
class ServerBounds:
    """What ``/healthz`` advertises about the served dataset."""

    start_epoch_s: float
    end_epoch_s: float
    resolutions_s: Tuple[float, ...]
    num_racks: int


def probe_bounds(base_url: str, timeout_s: float = 10.0) -> ServerBounds:
    """Ask a running server what data it holds (via ``/healthz``)."""
    split = urlsplit(base_url)
    conn = http.client.HTTPConnection(split.hostname, split.port, timeout=timeout_s)
    try:
        conn.request("GET", "/healthz")
        reply = conn.getresponse()
        health = json.loads(reply.read())
    finally:
        conn.close()
    bounds = health.get("epoch_bounds")
    if not bounds:
        raise RuntimeError("server reports an empty store; nothing to load-test")
    return ServerBounds(
        start_epoch_s=float(bounds[0]),
        end_epoch_s=float(bounds[1]),
        resolutions_s=tuple(float(r) for r in health["resolutions_s"]),
        num_racks=int(health["num_racks"]),
    )
