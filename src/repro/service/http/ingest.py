"""The collector ingest gateway.

Sits between ``POST /v1/ingest`` and the hardened
:class:`~repro.telemetry.database.EnvironmentalDatabase` ingest path.
Every accepted batch is routed through the database's
:class:`~repro.telemetry.database.IngestPolicy` — the reorder buffer,
duplicate resolution, and per-channel quality masks behave exactly as
they do for direct :meth:`append_block` ingest, which the equivalence
tests pin — and newly *committed* rows are folded incrementally into
the query tier's :class:`~repro.service.rollup.RollupStore` so
dashboards see collector data as it lands.

Admission control:

* **auth** — per-collector bearer tokens
  (``Authorization: Bearer <token>``, compared with
  :func:`hmac.compare_digest`); an empty token table disables auth
  (the open dev-server mode).
* **backpressure** — a bounded admission semaphore: when more than
  ``max_pending`` batches are inside the gateway simultaneously, the
  request is refused with a structured 429 carrying ``Retry-After``,
  and the collector's bounded-backoff retry takes it from there.
  Refusal is cheap (no decode, no lock wait), so an overloaded server
  sheds load instead of queueing unboundedly.
"""

from __future__ import annotations

import dataclasses
import hmac
import threading
from typing import Dict, Mapping, Optional

from repro.service.http.protocol import API_VERSION, ApiError, IngestBatch
from repro.service.rollup import RollupStore
from repro.telemetry.database import EnvironmentalDatabase


@dataclasses.dataclass(frozen=True)
class IngestServerConfig:
    """Admission-control tunables of the ingest gateway.

    Attributes:
        tokens: collector name -> bearer token.  Empty = auth off.
        max_batch_samples: Samples per POST beyond which the batch is
            refused with 413.
        max_pending: Concurrent batches allowed inside the gateway;
            the 429 backpressure bound.
        retry_after_s: ``Retry-After`` hint attached to 429 responses.
    """

    tokens: Mapping[str, str] = dataclasses.field(default_factory=dict)
    max_batch_samples: int = 4096
    max_pending: int = 4
    retry_after_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_batch_samples < 1:
            raise ValueError("max_batch_samples must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")


@dataclasses.dataclass
class GatewayCounters:
    """Observability counters for the ingest front door."""

    batches_accepted: int = 0
    rows_received: int = 0
    rows_committed: int = 0
    quality_override_rows: int = 0
    rejected_unauthorized: int = 0
    rejected_backpressure: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class IngestGateway:
    """Routes authenticated collector batches into the database.

    Args:
        database: The ingest target; its
            :class:`~repro.telemetry.database.IngestPolicy` governs
            reorder/duplicate semantics.
        rollups: Optional query-tier rollup store.  Newly committed
            rows are folded in after each batch (and on
            :meth:`finalize`), so the HTTP query routes serve
            collector data incrementally.  Rows still held in a
            lenient policy's reorder buffer are folded only once they
            commit.
        config: Admission-control tunables.

    Thread safety: one gateway lock serializes ingest (the database is
    not internally locked); the admission semaphore bounds how many
    handler threads may wait on it.
    """

    def __init__(
        self,
        database: EnvironmentalDatabase,
        rollups: Optional[RollupStore] = None,
        config: Optional[IngestServerConfig] = None,
    ) -> None:
        self.database = database
        self.rollups = rollups
        self.config = config if config is not None else IngestServerConfig()
        self.counters = GatewayCounters()
        self._lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(self.config.max_pending)
        #: Committed rows already folded into the rollup store.  Rows
        #: present at construction are assumed covered (the server
        #: builds its store with ``RollupStore.from_database`` first).
        self._folded = database.committed_samples

    # -- admission ---------------------------------------------------------------

    def authorize(self, collector: str, token: Optional[str]) -> None:
        """Check the collector's bearer token.

        Raises:
            ApiError: 401 when auth is enabled and the token is
                missing or wrong (one counter bump, constant-time
                comparison, and a deliberately uninformative message).
        """
        tokens = self.config.tokens
        if not tokens:
            return
        expected = tokens.get(collector)
        if (
            expected is None
            or token is None
            or not hmac.compare_digest(expected, token)
        ):
            with self._lock:
                self.counters.rejected_unauthorized += 1
            raise ApiError(
                401, "unauthorized", "unknown collector or bad token"
            )

    # -- ingest ------------------------------------------------------------------

    def ingest(self, batch: IngestBatch) -> Dict:
        """Admit one decoded batch; returns the success payload.

        Raises:
            ApiError: 429 when ``max_pending`` batches are already in
                flight (with ``Retry-After``); 400 when the database's
                strict policy rejects delivery order, forwarded as a
                structured error.
        """
        if not self._slots.acquire(blocking=False):
            with self._lock:
                self.counters.rejected_backpressure += 1
            raise ApiError(
                429,
                "backpressure",
                f"ingest gateway at capacity ({self.config.max_pending} "
                "batches in flight); retry with backoff",
                headers={"Retry-After": f"{self.config.retry_after_s:g}"},
            )
        try:
            with self._lock:
                return self._ingest_locked(batch)
        finally:
            self._slots.release()

    def _ingest_locked(self, batch: IngestBatch) -> Dict:
        database = self.database
        if batch.quality and not database.policy.strict:
            # Under a lenient policy rows may sit in the reorder buffer
            # or merge into earlier rows, so no committed row index is
            # known for a batch's explicit flags.  Refuse up front,
            # before any values are appended.
            raise ApiError(
                400,
                "bad_request",
                "explicit quality flags require a strict ingest policy",
            )
        before = database.committed_samples
        try:
            database.append_block(batch.epoch_s, batch.channels)
        except ValueError as exc:
            # The strict policy's delivery-order contract, surfaced as
            # a structured client error rather than a 500.
            raise ApiError(400, "rejected_by_policy", str(exc)) from None
        self.counters.batches_accepted += 1
        self.counters.rows_received += batch.num_samples
        if batch.quality:
            # Strict commit is contiguous: the batch occupies rows
            # [before, before + n).
            for channel, flags in batch.quality.items():
                database.overwrite_quality(channel, before, flags)
            self.counters.quality_override_rows += batch.num_samples
        self._fold_committed()
        return {
            "api_version": API_VERSION,
            "accepted_rows": batch.num_samples,
            "committed_samples": database.committed_samples,
            "counters": database.counters.as_dict(),
            "store_version": (
                self.rollups.version if self.rollups is not None else None
            ),
        }

    def _fold_committed(self) -> None:
        if self.rollups is None:
            return
        committed = self.database.committed_samples
        if committed <= self._folded:
            return
        epochs, values, quality = self.database.committed_rows(
            self._folded, committed
        )
        self.rollups.add_block(epochs, values, quality)
        self.counters.rows_committed += committed - self._folded
        self._folded = committed

    def finalize(self) -> None:
        """End of stream: flush the reorder buffer and fold the tail."""
        with self._lock:
            self.database.flush()
            self._fold_committed()

    def metrics(self) -> Dict:
        """Gateway + database ingest counters for ``/metrics``."""
        with self._lock:
            payload = self.counters.as_dict()
            payload["database"] = self.database.counters.as_dict()
            payload["committed_samples"] = self.database.committed_samples
            payload["auth_enabled"] = bool(self.config.tokens)
            payload["max_pending"] = self.config.max_pending
            payload["max_batch_samples"] = self.config.max_batch_samples
            return payload
