"""Wire protocol of the operations HTTP API.

Everything that crosses the network boundary is defined here — the
API version, the JSON envelopes, float/NaN encoding, query-parameter
parsing, and ingest-batch decoding — so the server, the collector
adapters, the load generator, and the tests all speak from one
definition.

Encoding rules
--------------

* Responses are JSON objects; every success payload carries
  ``"api_version"``.
* Floats are emitted by :func:`json.dumps` (``repr`` shortest
  round-trip), so a finite value survives HTTP **bit-identically**.
* NaN and infinities have no JSON spelling; they are encoded as
  ``null`` and decoded back to NaN (:func:`encode_float`,
  :func:`decode_float`).  The equivalence tests pin this mapping.
* Errors are structured, never tracebacks::

      {"api_version": 1,
       "error": {"status": 400, "type": "bad_request", "message": "..."}}

Versioning policy
-----------------

Query/ingest routes live under ``/v1/``.  Breaking payload changes
get a new prefix; ``/v1/`` keeps serving until removed in a major
release.  An unknown ``/v<N>/`` prefix is answered with 404
``unsupported_version`` naming the supported set; ingest bodies carry
their own ``api_version`` field checked against
:data:`SUPPORTED_API_VERSIONS`.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import urlencode

import numpy as np

from repro.service.query import Query, QueryResult
from repro.telemetry.records import CHANNELS, Channel, Quality
from repro.telemetry.schema import CHANNEL_UNITS, channel_for_column

#: The one API version this tree serves.
API_VERSION = 1
#: Ingest-body versions the gateway accepts.
SUPPORTED_API_VERSIONS = (1,)

#: Query shapes exposed as ``/v1/query/<kind>`` routes.
QUERY_ROUTES = ("point", "series", "aggregate")


class ApiError(Exception):
    """A structured, client-visible failure.

    Carries the HTTP status, a machine-readable ``type`` slug, and a
    human message; the server renders it as the error envelope above
    (plus any extra headers, e.g. ``Retry-After`` on backpressure).
    """

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.error_type = error_type
        self.message = message
        self.headers = dict(headers or {})

    def payload(self) -> Dict:
        return {
            "api_version": API_VERSION,
            "error": {
                "status": self.status,
                "type": self.error_type,
                "message": self.message,
            },
        }


def encode_float(value: float) -> Optional[float]:
    """A JSON-safe scalar: finite floats pass through, NaN/inf -> None."""
    value = float(value)
    return value if math.isfinite(value) else None


def decode_float(value: Optional[float]) -> float:
    """Inverse of :func:`encode_float` (``None`` -> NaN)."""
    return float("nan") if value is None else float(value)


def encode_array(values: np.ndarray) -> List[Optional[float]]:
    """A float vector as a JSON list, non-finite cells as ``null``."""
    array = np.asarray(values, dtype="float64")
    finite = np.isfinite(array)
    return [float(v) if ok else None for v, ok in zip(array, finite)]


def decode_array(values: Sequence[Optional[float]]) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    return np.array(
        [float("nan") if v is None else float(v) for v in values], dtype="float64"
    )


def dumps(payload: Dict) -> bytes:
    """Canonical response serialization (compact separators, UTF-8).

    ``allow_nan=False`` is a tripwire: any NaN that reaches the
    serializer un-encoded is a protocol bug, and we want it to fail
    loudly server-side (as a structured 500) rather than emit the
    non-standard ``NaN`` literal clients cannot parse.
    """
    return json.dumps(payload, separators=(",", ":"), allow_nan=False).encode()


# -- query parsing ----------------------------------------------------------------


def _require(params: Mapping[str, str], name: str) -> str:
    value = params.get(name)
    if value is None or value == "":
        raise ApiError(400, "bad_request", f"missing required parameter {name!r}")
    return value


def _parse_float(params: Mapping[str, str], name: str, required: bool) -> Optional[float]:
    raw = _require(params, name) if required else params.get(name)
    if raw is None or raw == "":
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ApiError(
            400, "bad_request", f"parameter {name!r} must be a number, got {raw!r}"
        ) from None
    if not math.isfinite(value):
        raise ApiError(400, "bad_request", f"parameter {name!r} must be finite")
    return value


def _parse_int(params: Mapping[str, str], name: str) -> Optional[int]:
    raw = params.get(name)
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise ApiError(
            400, "bad_request", f"parameter {name!r} must be an integer, got {raw!r}"
        ) from None


def parse_query(kind: str, params: Mapping[str, str]) -> Query:
    """Build a :class:`~repro.service.query.Query` from URL parameters.

    Parameters: ``channel`` (always), ``epoch_s`` (point) or
    ``start_s``/``end_s`` (series/aggregate), and optional ``stat``,
    ``scope``, ``rack``, ``row``, ``resolution_s``.

    Raises:
        ApiError: 400 on missing/malformed/inconsistent parameters,
            with the constructor's own message forwarded verbatim.
    """
    try:
        channel = channel_for_column(_require(params, "channel"))
    except ValueError as exc:
        raise ApiError(400, "unknown_channel", str(exc)) from None
    if kind == "point":
        start = _parse_float(params, "epoch_s", required=True)
        end = 0.0
    else:
        start = _parse_float(params, "start_s", required=True)
        end = _parse_float(params, "end_s", required=True)
    try:
        return Query(
            kind,
            channel,
            start,
            end,
            stat=params.get("stat", "mean"),
            scope=params.get("scope", "facility"),
            rack=_parse_int(params, "rack"),
            row=_parse_int(params, "row"),
            resolution_s=_parse_float(params, "resolution_s", required=False),
        )
    except ValueError as exc:
        raise ApiError(400, "bad_request", str(exc)) from None


def encode_result(result: QueryResult, store_version: int) -> Dict:
    """The success envelope for one query answer."""
    query = result.query
    payload: Dict = {
        "api_version": API_VERSION,
        "kind": query.kind,
        "channel": query.channel.column,
        "unit": CHANNEL_UNITS[query.channel.column],
        "stat": query.stat,
        "scope": query.scope,
        "rack": query.rack,
        "row": query.row,
        "resolution_s": result.resolution_s,
        "store_version": int(store_version),
    }
    if query.kind == "series":
        payload["epoch_s"] = encode_array(result.epoch_s)
        payload["values"] = encode_array(result.values)
    else:
        payload["value"] = encode_float(result.value)
    return payload


# -- ingest batches ---------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class IngestBatch:
    """One decoded, shape-validated collector batch.

    Attributes:
        collector: The posting collector's name (the auth principal).
        epoch_s: ``(n,)`` sample timestamps.
        channels: Column matrices ``(n, racks)``; cells the collector
            did not report are NaN.
        quality: Optional explicit per-cell quality flags (same keys
            and shapes as ``channels``).
    """

    collector: str
    epoch_s: np.ndarray
    channels: Dict[Channel, np.ndarray]
    quality: Dict[Channel, np.ndarray]

    @property
    def num_samples(self) -> int:
        return int(self.epoch_s.shape[0])


def encode_batch(
    collector: str,
    epoch_s: np.ndarray,
    channels: Mapping[Channel, np.ndarray],
    quality: Optional[Mapping[Channel, np.ndarray]] = None,
) -> Dict:
    """The ``POST /v1/ingest`` body for one columnar batch."""
    payload: Dict = {
        "api_version": API_VERSION,
        "collector": collector,
        "epoch_s": [float(t) for t in np.asarray(epoch_s, dtype="float64")],
        "channels": {
            ch.column: [encode_array(row) for row in np.atleast_2d(block)]
            for ch, block in channels.items()
        },
    }
    if quality:
        payload["quality"] = {
            ch.column: [[int(f) for f in row] for row in np.atleast_2d(block)]
            for ch, block in quality.items()
        }
    return payload


def decode_batch(
    body: Dict, num_racks: int, max_batch_samples: int
) -> IngestBatch:
    """Validate and decode an ingest body into an :class:`IngestBatch`.

    Raises:
        ApiError: 400 on structural/typing problems (wrong
            ``api_version``, unknown channels, ragged or wrong-width
            rows, bad quality flags); 413 when the batch exceeds
            ``max_batch_samples``.
    """
    if not isinstance(body, dict):
        raise ApiError(400, "bad_request", "ingest body must be a JSON object")
    version = body.get("api_version")
    if version not in SUPPORTED_API_VERSIONS:
        raise ApiError(
            400,
            "unsupported_version",
            f"api_version {version!r} not supported; "
            f"supported: {list(SUPPORTED_API_VERSIONS)}",
        )
    collector = body.get("collector")
    if not isinstance(collector, str) or not collector:
        raise ApiError(400, "bad_request", "ingest body needs a collector name")
    raw_epoch = body.get("epoch_s")
    if not isinstance(raw_epoch, list) or not raw_epoch:
        raise ApiError(400, "bad_request", "epoch_s must be a non-empty list")
    if len(raw_epoch) > max_batch_samples:
        raise ApiError(
            413,
            "payload_too_large",
            f"batch has {len(raw_epoch)} samples; the limit is "
            f"{max_batch_samples} per POST",
        )
    try:
        epochs = np.array([float(t) for t in raw_epoch], dtype="float64")
    except (TypeError, ValueError):
        raise ApiError(400, "bad_request", "epoch_s must contain numbers") from None
    if not np.isfinite(epochs).all():
        raise ApiError(400, "bad_request", "epoch_s must be finite")
    n = len(epochs)

    raw_channels = body.get("channels")
    if not isinstance(raw_channels, dict) or not raw_channels:
        raise ApiError(400, "bad_request", "channels must be a non-empty object")
    channels: Dict[Channel, np.ndarray] = {}
    for column, rows in raw_channels.items():
        try:
            channel = channel_for_column(str(column))
        except ValueError as exc:
            raise ApiError(400, "unknown_channel", str(exc)) from None
        matrix = _decode_matrix(column, rows, n, num_racks, decode_array)
        channels[channel] = matrix

    quality: Dict[Channel, np.ndarray] = {}
    raw_quality = body.get("quality")
    if raw_quality is not None:
        if not isinstance(raw_quality, dict):
            raise ApiError(400, "bad_request", "quality must be an object")
        valid_flags = {int(q) for q in Quality}
        for column, rows in raw_quality.items():
            try:
                channel = channel_for_column(str(column))
            except ValueError as exc:
                raise ApiError(400, "unknown_channel", str(exc)) from None
            if channel not in channels:
                raise ApiError(
                    400,
                    "bad_request",
                    f"quality for {column!r} has no matching channel block",
                )
            matrix = _decode_matrix(
                column + " quality",
                rows,
                n,
                num_racks,
                lambda row: np.asarray(row, dtype="int64"),
            )
            if not np.isin(matrix, list(valid_flags)).all():
                raise ApiError(
                    400,
                    "bad_request",
                    f"quality flags for {column!r} must be in "
                    f"{sorted(valid_flags)}",
                )
            quality[channel] = matrix.astype(np.uint8)
    return IngestBatch(
        collector=collector, epoch_s=epochs, channels=channels, quality=quality
    )


def _decode_matrix(label: str, rows, n: int, num_racks: int, decode_row) -> np.ndarray:
    if not isinstance(rows, list) or len(rows) != n:
        raise ApiError(
            400,
            "bad_request",
            f"{label}: expected {n} rows to match epoch_s, got "
            f"{len(rows) if isinstance(rows, list) else type(rows).__name__}",
        )
    decoded = []
    for i, row in enumerate(rows):
        if not isinstance(row, list) or len(row) != num_racks:
            raise ApiError(
                400,
                "bad_request",
                f"{label}: row {i} must be a list of {num_racks} values",
            )
        try:
            decoded.append(decode_row(row))
        except (TypeError, ValueError):
            raise ApiError(
                400, "bad_request", f"{label}: row {i} contains non-numeric cells"
            ) from None
    return np.stack(decoded, axis=0)


def query_path(kind: str, query: Query) -> str:
    """The GET path+query-string that round-trips to ``query``.

    The inverse of :func:`parse_query`, used by the load generator and
    the equivalence tests to hit the API with exactly the queries they
    compare against direct engine calls.
    """
    params: List[Tuple[str, str]] = [("channel", query.channel.column)]
    if kind == "point":
        params.append(("epoch_s", repr(float(query.start_epoch_s))))
    else:
        params.append(("start_s", repr(float(query.start_epoch_s))))
        params.append(("end_s", repr(float(query.end_epoch_s))))
    params.append(("stat", query.stat))
    params.append(("scope", query.scope))
    if query.rack is not None:
        params.append(("rack", str(query.rack)))
    if query.row is not None:
        params.append(("row", str(query.row)))
    if query.resolution_s is not None:
        params.append(("resolution_s", repr(float(query.resolution_s))))
    return f"/v1/query/{kind}?{urlencode(params)}"


#: Channels in canonical order, re-exported for collector adapters.
WIRE_CHANNELS = CHANNELS
