"""The HTTP operations API and collector ingest gateway.

A dependency-free (stdlib ``http.server``) JSON API over the service
layer's query engine, plus the ingest front door remote collectors
post telemetry through:

* :mod:`repro.service.http.protocol` — wire formats: versioned
  envelopes, float/NaN encoding, query parsing, batch decoding,
* :mod:`repro.service.http.app` — :class:`OperationsApp`, the
  socket-free route dispatcher (tests drive it directly),
* :mod:`repro.service.http.server` — :class:`OperationsHttpServer`
  (threaded, shared app, supports ingest) and :func:`serve_prefork`
  (read-only workers over a memory-mapped archive),
* :mod:`repro.service.http.ingest` — :class:`IngestGateway`: auth,
  backpressure, policy-routed appends, incremental rollup folding,
* :mod:`repro.service.http.collectors` — :class:`IngestClient` with
  bounded-backoff retries, the CSV replayer, the simulated poller,
* :mod:`repro.service.http.loadgen` — deterministic query mixes and
  the multi-process load harness behind ``repro http-load``.
"""

from repro.service.http.app import MAX_SERIES_POINTS, OperationsApp, RequestCounters
from repro.service.http.collectors import (
    ClientCounters,
    FileImportCollector,
    IngestClient,
    IngestClientError,
    RetryPolicy,
    SimulatedPollerCollector,
)
from repro.service.http.ingest import (
    GatewayCounters,
    IngestGateway,
    IngestServerConfig,
)
from repro.service.http.loadgen import (
    LoadReport,
    ServerBounds,
    generate_query_paths,
    probe_bounds,
    run_load,
)
from repro.service.http.protocol import (
    API_VERSION,
    SUPPORTED_API_VERSIONS,
    ApiError,
    IngestBatch,
    decode_batch,
    encode_batch,
    encode_result,
    parse_query,
    query_path,
)
from repro.service.http.server import (
    MAX_BODY_BYTES,
    OperationsHttpServer,
    serve_prefork,
)

__all__ = [
    "MAX_SERIES_POINTS",
    "OperationsApp",
    "RequestCounters",
    "ClientCounters",
    "FileImportCollector",
    "IngestClient",
    "IngestClientError",
    "RetryPolicy",
    "SimulatedPollerCollector",
    "GatewayCounters",
    "IngestGateway",
    "IngestServerConfig",
    "LoadReport",
    "ServerBounds",
    "generate_query_paths",
    "probe_bounds",
    "run_load",
    "API_VERSION",
    "SUPPORTED_API_VERSIONS",
    "ApiError",
    "IngestBatch",
    "decode_batch",
    "encode_batch",
    "encode_result",
    "parse_query",
    "query_path",
    "MAX_BODY_BYTES",
    "OperationsHttpServer",
    "serve_prefork",
]
