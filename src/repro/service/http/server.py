"""Socket layer: the app served over stdlib ``http.server``.

Two serving modes, one app:

* :class:`OperationsHttpServer` — a **threaded single process**.  All
  handler threads share one :class:`~repro.service.http.app.OperationsApp`,
  so this is the mode that supports ingest (one database, one gateway
  lock) and live replay (the engine is shared with the service's
  subscribers).  Start/stop it programmatically from tests or run it
  from ``repro serve-http``.

* :func:`serve_prefork` — a **pre-forked worker pool** for read-only
  query serving.  The parent binds the listening socket once, then
  forks ``workers`` children; each child reopens the telemetry archive
  memory-mapped (zero-copy — the page cache backs every worker with
  one copy of the data, nothing is pickled across the fork) and runs
  its own accept loop on the inherited socket, so the kernel load-
  balances connections across processes and read throughput scales
  with cores instead of queueing behind one GIL.

Chaos: when the app carries a :class:`~repro.chaos.ChaosInjector`, the
handler consults :meth:`~repro.chaos.ChaosInjector.on_http_request`
once per request *before* dispatch — ``"error"`` short-circuits into a
structured 500 (``chaos_injected``), ``"reset"`` tears the TCP
connection down mid-request with no response at all.  Both follow the
injector's seeded schedule, so fault drills are replayable.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import socketserver
import struct
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.http.app import OperationsApp
from repro.service.http.protocol import ApiError, dumps

#: Request bodies beyond this are refused with 413 before parsing.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _OperationsHandler(BaseHTTPRequestHandler):
    """Adapts one HTTP exchange onto :meth:`OperationsApp.handle`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-ops"

    # The accept loop must never die on a handler bug, and clients
    # must never see a traceback: everything funnels through the
    # app's no-raise ``handle`` or the structured-error writer here.

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._serve("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._serve("POST")

    def _serve(self, method: str) -> None:
        app: OperationsApp = self.server.app  # type: ignore[attr-defined]
        if app.chaos is not None:
            action = app.chaos.on_http_request(app.next_request_index())
            if action == "reset":
                app.record_chaos("reset")
                # Hard reset: RST instead of FIN so clients observe a
                # genuine connection failure, not an empty response.
                self.connection.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                self.close_connection = True
                return
            if action == "error":
                app.record_chaos("error")
                self._respond(
                    500,
                    ApiError(
                        500, "chaos_injected", "injected fault (chaos drill)"
                    ).payload(),
                    {},
                )
                return
        try:
            body = self._read_body() if method == "POST" else None
        except ApiError as exc:
            self._respond(exc.status, exc.payload(), exc.headers)
            return
        split = urlsplit(self.path)
        params = {
            key: values[-1]
            for key, values in parse_qs(
                split.query, keep_blank_values=True
            ).items()
        }
        status, payload, extra = app.handle(
            method, split.path, params, body, dict(self.headers.items())
        )
        self._respond(status, payload, extra)

    def _read_body(self) -> Dict:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            raise ApiError(
                411, "length_required", "POST requires Content-Length"
            ) from None
        if length > MAX_BODY_BYTES:
            raise ApiError(
                413,
                "payload_too_large",
                f"body of {length} bytes exceeds {MAX_BODY_BYTES}",
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(400, "bad_json", f"body is not JSON: {exc}") from None
        if not isinstance(body, dict):
            raise ApiError(400, "bad_json", "body must be a JSON object")
        return body

    def _respond(self, status: int, payload: Dict, extra: Dict[str, str]) -> None:
        encoded = dumps(payload)
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(encoded)))
            for key, value in extra.items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(encoded)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response; the serving thread
            # shrugs and moves on.
            self.close_connection = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr chatter; /metrics has counters."""


class _ThreadingHTTPServer(socketserver.ThreadingMixIn, HTTPServer):
    daemon_threads = True
    # Restarts and tests rebind the same port in quick succession.
    allow_reuse_address = True

    def handle_error(self, request, client_address) -> None:
        """Swallow per-connection errors; the accept loop must live."""


class OperationsHttpServer:
    """The threaded single-process server around one app.

    Args:
        app: The shared application (query + optional ingest tiers).
        host: Bind address; loopback by default.
        port: TCP port; 0 picks a free one (read it back from
            :attr:`address`).
    """

    def __init__(
        self, app: OperationsApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self._httpd = _ThreadingHTTPServer((host, port), _OperationsHandler)
        self._httpd.app = app  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "OperationsHttpServer":
        """Run the accept loop on a daemon thread; returns self."""
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-http",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread (CLI mode)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def stop(self) -> None:
        """Stop accepting, join the loop thread, close the socket."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "OperationsHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _WorkerHTTPServer(_ThreadingHTTPServer):
    """A child's server over the socket inherited from the parent."""

    def __init__(self, inherited: socket.socket, app: OperationsApp) -> None:
        host, port = inherited.getsockname()[:2]
        # Adopt the parent's bound+listening socket instead of binding:
        # every worker accepts from the same kernel queue.
        super().__init__((host, port), _OperationsHandler, bind_and_activate=False)
        self.socket.close()
        self.socket = inherited
        self.app = app  # type: ignore[attr-defined]


def bind_listening_socket(host: str = "127.0.0.1", port: int = 0) -> socket.socket:
    """Bind + listen, ready to share with forked workers."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(128)
    return sock


def serve_prefork(
    archive_dir,
    workers: int,
    host: str = "127.0.0.1",
    port: int = 0,
    duration_s: Optional[float] = None,
    cache_size: int = 1024,
    ready_callback=None,
    stop_event: Optional[threading.Event] = None,
) -> int:
    """Serve a read-only archive from ``workers`` forked processes.

    The parent binds the socket, forks, then sleeps as a babysitter:
    on ``duration_s`` expiry (or SIGINT/SIGTERM) it SIGTERMs the
    children and reaps them.  Each child builds its own app via
    :meth:`OperationsApp.from_archive` — the archive arrays are
    memory-mapped, so the fork copies nothing and the kernel page
    cache is shared.

    Args:
        archive_dir: A saved :class:`~repro.telemetry.archive.TelemetryArchive`.
        workers: Child process count (min 1).
        host/port: Bind address; port 0 picks a free one.
        duration_s: Self-terminate after this long (CI smoke mode);
            ``None`` serves until interrupted.
        cache_size: Per-worker query-cache capacity.
        ready_callback: Called in the parent with ``(host, port)``
            once children are forked (the load generator hooks this).
        stop_event: Optional externally owned event; setting it winds
            the pool down early (how tests stop a babysitter thread
            without signals).

    Returns:
        The number of children that exited abnormally.
    """
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX fallback
        raise RuntimeError(
            "pre-forked serving needs os.fork; use the threaded server"
        )
    workers = max(1, int(workers))
    sock = bind_listening_socket(host, port)
    bound_host, bound_port = sock.getsockname()[:2]
    children = []
    for _ in range(workers):
        pid = os.fork()
        if pid == 0:
            # Child: serve until SIGTERM. os._exit skips atexit and
            # the parent's inherited cleanup handlers.
            signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
            signal.signal(signal.SIGINT, signal.SIG_IGN)
            try:
                app = OperationsApp.from_archive(
                    archive_dir, cache_size=cache_size
                )
                httpd = _WorkerHTTPServer(sock, app)
                httpd.serve_forever(poll_interval=0.1)
            finally:
                os._exit(0)
        children.append(pid)
    if ready_callback is not None:
        ready_callback(bound_host, bound_port)

    stop = stop_event if stop_event is not None else threading.Event()

    def _request_stop(*_args) -> None:
        stop.set()

    try:
        # Signal handlers are a main-thread privilege; when driven from
        # a worker thread (tests), the duration deadline still applies.
        old_term = signal.signal(signal.SIGTERM, _request_stop)
        old_int = signal.signal(signal.SIGINT, _request_stop)
    except ValueError:
        old_term = old_int = None
    try:
        deadline = None if duration_s is None else time.monotonic() + duration_s
        while not stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                break
            stop.wait(0.1)
    finally:
        if old_term is not None:
            signal.signal(signal.SIGTERM, old_term)
            signal.signal(signal.SIGINT, old_int)
    failures = 0
    for pid in children:
        try:
            os.kill(pid, signal.SIGTERM)
        except ProcessLookupError:
            pass
    for pid in children:
        _, status = os.waitpid(pid, 0)
        if os.waitstatus_to_exitcode(status) not in (0, -signal.SIGTERM):
            failures += 1
    sock.close()
    return failures
