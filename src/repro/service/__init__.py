"""The live operations-data service layer.

Turns a finished simulation into the system the paper's operators
actually ran: telemetry re-served as a live stream, analytics riding
it, and an aggregated store answering dashboard queries.

* :mod:`repro.service.bus` — :class:`ReplayBus`, a paced pub/sub
  dispatcher publishing columnar :class:`BusChunk` blocks (with a
  per-sample compatibility shim) through bounded per-subscriber
  queues and explicit backpressure policies (block / drop-oldest /
  coalesce),
* :mod:`repro.service.rollup` — :class:`RollupStore`, incremental
  multi-resolution min/mean/max/count downsamples with quality-aware
  coverage,
* :mod:`repro.service.query` — :class:`QueryEngine`, point/series/
  aggregate queries behind a version-validated LRU cache with a
  thread-pool batch path,
* :mod:`repro.service.subscribers` — adapters wiring the online CMF
  predictor, CUSUM detector, and alert engine onto the bus,
* :mod:`repro.service.resilience` — :class:`Supervisor` and the
  per-subscriber wrappers: crash isolation, bounded-backoff restarts,
  hang watchdog with policy degradation, source-replay gap repair,
* :mod:`repro.service.durability` — :class:`WriteAheadLog` +
  :class:`SnapshotStore`, the crash-safe persistence behind
  :meth:`LiveOperationsService.recover`,
* :mod:`repro.service.live` — :class:`LiveOperationsService`, the
  assembled bus -> rollups -> query-engine stack with supervision,
  durability, and chaos hooks,
* :mod:`repro.service.http` — the operations HTTP API: versioned
  query routes, ``/healthz``/``/metrics``, the collector ingest
  gateway, and the pre-forked read-only server.
"""

from repro.service.bus import (
    BACKPRESSURE_POLICIES,
    DELIVERY_MODES,
    BusChunk,
    BusReport,
    BusSample,
    ReplayBus,
    SubscriberCounters,
    Subscription,
)
from repro.service.http import (
    IngestClient,
    IngestGateway,
    IngestServerConfig,
    OperationsApp,
    OperationsHttpServer,
)
from repro.service.durability import (
    ComponentRecovery,
    DurabilityConfig,
    RecoveryError,
    RecoveryReport,
    SnapshotStore,
    WriteAheadLog,
)
from repro.service.live import LiveOperationsService, ServiceConfig, ServiceReport
from repro.service.query import (
    CacheCounters,
    CacheInfo,
    Query,
    QueryEngine,
    QueryResult,
    ServeCounters,
)
from repro.service.resilience import (
    ServiceEvent,
    SourceReplayer,
    SupervisedSubscriber,
    Supervisor,
    SupervisorConfig,
    SupervisorCounters,
)
from repro.service.rollup import (
    DEFAULT_RESOLUTIONS_S,
    BucketWindow,
    RollupStore,
)
from repro.service.subscribers import (
    CountingSubscriber,
    CusumSubscriber,
    PredictorSubscriber,
    RollupSubscriber,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "DELIVERY_MODES",
    "BusChunk",
    "BusReport",
    "BusSample",
    "ReplayBus",
    "SubscriberCounters",
    "Subscription",
    "ComponentRecovery",
    "DurabilityConfig",
    "RecoveryError",
    "RecoveryReport",
    "SnapshotStore",
    "WriteAheadLog",
    "LiveOperationsService",
    "ServiceConfig",
    "ServiceReport",
    "CacheCounters",
    "CacheInfo",
    "IngestClient",
    "IngestGateway",
    "IngestServerConfig",
    "OperationsApp",
    "OperationsHttpServer",
    "Query",
    "QueryEngine",
    "QueryResult",
    "ServeCounters",
    "ServiceEvent",
    "SourceReplayer",
    "SupervisedSubscriber",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorCounters",
    "DEFAULT_RESOLUTIONS_S",
    "BucketWindow",
    "RollupStore",
    "CountingSubscriber",
    "CusumSubscriber",
    "PredictorSubscriber",
    "RollupSubscriber",
]
