"""First-class bus subscribers: the online analytics ride the stream.

Adapters that wire the existing monitoring stack —
:class:`~repro.monitoring.online.OnlineCmfPredictor`, the
:class:`~repro.monitoring.anomaly.CusumDetector`, and the
:class:`~repro.monitoring.alerts.AlertEngine` — onto
:class:`~repro.service.bus.ReplayBus` samples, plus the
:class:`RollupSubscriber` that keeps the
:class:`~repro.service.rollup.RollupStore` current and a
:class:`CountingSubscriber` used by tests and benchmarks (optionally
artificially slow, to exercise backpressure).

Each adapter is a plain callable: ``subscription =
bus.subscribe(name, adapter)``.  Adapters run on their subscription's
worker thread; the objects they wrap are not shared across
subscriptions, so no extra locking is needed.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

import numpy as np

from repro import constants
from repro.facility.topology import RackId
from repro.monitoring.alerts import Alert, AlertEngine, AlertLog
from repro.monitoring.anomaly import CusumAlarm, CusumDetector
from repro.monitoring.online import OnlineCmfPredictor, Prediction
from repro.service.bus import BusChunk, BusSample
from repro.service.rollup import RollupStore
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel

#: Flat index -> RackId, precomputed (adapters touch it per sample).
_RACK_IDS = tuple(
    RackId.from_flat_index(i) for i in range(constants.NUM_RACKS)
)


class RollupSubscriber:
    """Folds every sample into a :class:`RollupStore` as it arrives.

    Accepts either delivery granularity: per-sample rows go through
    :meth:`RollupStore.add`, whole :class:`BusChunk` blocks through the
    vectorized :meth:`RollupStore.add_block`.
    """

    def __init__(self, store: RollupStore) -> None:
        self.store = store

    def __call__(self, item: "BusSample | BusChunk") -> None:
        if isinstance(item, BusChunk):
            self.store.add_block(item.epoch_s, item.values, item.quality)
        else:
            self.store.add(item.epoch_s, item.values, item.quality)

    def get_state(self) -> dict:
        """Picklable snapshot payload (see the durability layer)."""
        return {"store": self.store.get_state()}

    def set_state(self, state: dict) -> None:
        self.store.set_state(state["store"])


class PredictorSubscriber:
    """Fans whole-floor samples into the streaming CMF predictor.

    Racks with no finite predictor channel in a sample are skipped
    (the rack is down or dark; offering the sample would only inflate
    the predictor's ``dropped_incomplete`` counter).  Emitted
    predictions are recorded and, when an alert engine is attached,
    pushed through the alert policy into the alert log.
    """

    def __init__(
        self,
        predictor: OnlineCmfPredictor,
        alert_engine: Optional[AlertEngine] = None,
        alert_log: Optional[AlertLog] = None,
    ) -> None:
        self.predictor = predictor
        self.alert_engine = alert_engine
        self.alert_log = alert_log if alert_log is not None else AlertLog()
        self.predictions: List[Prediction] = []

    def __call__(self, item: "BusSample | BusChunk") -> None:
        if isinstance(item, BusChunk):
            self._consume_chunk(item)
            return
        sample = item
        columns = [sample.values[ch] for ch in PREDICTOR_CHANNELS]
        finite_any = np.isfinite(columns[0])
        for column in columns[1:]:
            finite_any = finite_any | np.isfinite(column)
        for rack in np.flatnonzero(finite_any):
            channel_values = {
                ch: float(column[rack])
                for ch, column in zip(PREDICTOR_CHANNELS, columns)
            }
            prediction = self.predictor.consume(
                sample.epoch_s, _RACK_IDS[rack], channel_values
            )
            if prediction is None:
                continue
            self._emit(prediction)

    def _consume_chunk(self, chunk: BusChunk) -> None:
        """One vectorized predictor pass per rack, then ordered emit.

        Per-sample delivery offers each rack only the samples where at
        least one predictor channel is finite; the chunk path feeds
        each rack exactly that row subset through
        :meth:`~repro.monitoring.online.OnlineCmfPredictor.consume_block`,
        then merges per-rack predictions back into the per-sample
        emission order (time-major, rack ascending) so recorded
        predictions and downstream alerts are identical.
        """
        cube = np.stack(
            [chunk.values[ch] for ch in PREDICTOR_CHANNELS], axis=2
        )  # (timesteps, racks, channels)
        finite_any = np.isfinite(cube).any(axis=2)
        epochs = np.asarray(chunk.epoch_s, dtype="float64")
        merged: List[Prediction] = []
        for rack in np.flatnonzero(finite_any.any(axis=0)):
            mask = finite_any[:, rack]
            merged.extend(
                self.predictor.consume_block(
                    epochs[mask], _RACK_IDS[rack], cube[mask, rack, :]
                )
            )
        merged.sort(key=lambda p: (p.epoch_s, p.rack_id.flat_index))
        for prediction in merged:
            self._emit(prediction)

    def _emit(self, prediction: Prediction) -> None:
        self.predictions.append(prediction)
        if self.alert_engine is not None:
            alert = self.alert_engine.process(prediction)
            if alert is not None:
                self.alert_log.record(alert)

    @property
    def alerts(self) -> List[Alert]:
        return list(self.alert_log.alerts)

    def get_state(self) -> dict:
        """Predictor history, alert state machine, and emission logs.

        The trained model is excluded (recovery reconstructs the
        subscriber around the same model object).
        """
        state = {
            "predictor": self.predictor.get_state(),
            "predictions": list(self.predictions),
            "alerts": list(self.alert_log.alerts),
        }
        if self.alert_engine is not None:
            state["alert_engine"] = self.alert_engine.get_state()
        return state

    def set_state(self, state: dict) -> None:
        self.predictor.set_state(state["predictor"])
        self.predictions = list(state["predictions"])
        self.alert_log.restore(state["alerts"])
        if self.alert_engine is not None and "alert_engine" in state:
            self.alert_engine.set_state(state["alert_engine"])


class CusumSubscriber:
    """Feeds the classical change detector from the stream."""

    def __init__(self, detector: Optional[CusumDetector] = None) -> None:
        self.detector = detector if detector is not None else CusumDetector()
        self.alarms: List[CusumAlarm] = []

    def __call__(self, item: "BusSample | BusChunk") -> None:
        if isinstance(item, BusChunk):
            self.alarms.extend(
                self.detector.consume_block(item.epoch_s, item.values)
            )
            return
        sample = item
        for rack in range(len(_RACK_IDS)):
            channel_values: Dict[Channel, float] = {}
            for channel in PREDICTOR_CHANNELS:
                value = float(sample.values[channel][rack])
                if np.isfinite(value):
                    channel_values[channel] = value
            if not channel_values:
                continue
            self.alarms.extend(
                self.detector.consume(sample.epoch_s, _RACK_IDS[rack], channel_values)
            )

    def get_state(self) -> dict:
        """Picklable detector recurrence plus the alarm log."""
        return {
            "detector": self.detector.get_state(),
            "alarms": list(self.alarms),
        }

    def set_state(self, state: dict) -> None:
        self.detector.set_state(state["detector"])
        self.alarms = list(state["alarms"])


@dataclasses.dataclass
class CountingSubscriber:
    """Test/benchmark consumer: counts samples, optionally slowly.

    Attributes:
        delay_s: Artificial processing time per delivery — one
            callback invocation, i.e. per sample under ``"samples"``
            delivery and per chunk under ``"chunks"`` (simulates a
            slow consumer to exercise backpressure policies).
        keep_seqs: Record every delivered sequence number (ordering
            and gap assertions).
        gaps: Observed discontinuities — deliveries whose first
            sequence number skipped past ``last_seq + 1`` (each lossy
            eviction burst counts once, however many samples it ate).
            Bus sequence numbers start at 0, so samples evicted before
            the first delivery count as the opening gap.
        missing: Total sample sequence numbers never delivered (the
            sum of all gap widths).
    """

    delay_s: float = 0.0
    keep_seqs: bool = False
    received: int = 0
    last_seq: int = -1
    last_epoch_s: float = float("nan")
    seqs: List[int] = dataclasses.field(default_factory=list)
    monotonic: bool = True
    gaps: int = 0
    missing: int = 0

    def __call__(self, item: "BusSample | BusChunk") -> None:
        if self.delay_s > 0:
            time.sleep(self.delay_s)
        if isinstance(item, BusChunk):
            first_seq, last_seq = item.start_seq, item.end_seq
            count = len(item)
            last_epoch = float(item.epoch_s[-1])
        else:
            first_seq = last_seq = item.seq
            count = 1
            last_epoch = item.epoch_s
        if first_seq <= self.last_seq:
            self.monotonic = False
        elif first_seq > self.last_seq + 1:
            self.gaps += 1
            self.missing += first_seq - self.last_seq - 1
        self.received += count
        self.last_seq = last_seq
        self.last_epoch_s = last_epoch
        if self.keep_seqs:
            self.seqs.extend(range(first_seq, last_seq + 1))
