"""First-class bus subscribers: the online analytics ride the stream.

Adapters that wire the existing monitoring stack —
:class:`~repro.monitoring.online.OnlineCmfPredictor`, the
:class:`~repro.monitoring.anomaly.CusumDetector`, and the
:class:`~repro.monitoring.alerts.AlertEngine` — onto
:class:`~repro.service.bus.ReplayBus` samples, plus the
:class:`RollupSubscriber` that keeps the
:class:`~repro.service.rollup.RollupStore` current and a
:class:`CountingSubscriber` used by tests and benchmarks (optionally
artificially slow, to exercise backpressure).

Each adapter is a plain callable: ``subscription =
bus.subscribe(name, adapter)``.  Adapters run on their subscription's
worker thread; the objects they wrap are not shared across
subscriptions, so no extra locking is needed.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

import numpy as np

from repro import constants
from repro.facility.topology import RackId
from repro.monitoring.alerts import Alert, AlertEngine, AlertLog
from repro.monitoring.anomaly import CusumAlarm, CusumDetector
from repro.monitoring.online import OnlineCmfPredictor, Prediction
from repro.service.bus import BusSample
from repro.service.rollup import RollupStore
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel

#: Flat index -> RackId, precomputed (adapters touch it per sample).
_RACK_IDS = tuple(
    RackId.from_flat_index(i) for i in range(constants.NUM_RACKS)
)


class RollupSubscriber:
    """Folds every sample into a :class:`RollupStore` as it arrives."""

    def __init__(self, store: RollupStore) -> None:
        self.store = store

    def __call__(self, sample: BusSample) -> None:
        self.store.add(sample.epoch_s, sample.values, sample.quality)


class PredictorSubscriber:
    """Fans whole-floor samples into the streaming CMF predictor.

    Racks with no finite predictor channel in a sample are skipped
    (the rack is down or dark; offering the sample would only inflate
    the predictor's ``dropped_incomplete`` counter).  Emitted
    predictions are recorded and, when an alert engine is attached,
    pushed through the alert policy into the alert log.
    """

    def __init__(
        self,
        predictor: OnlineCmfPredictor,
        alert_engine: Optional[AlertEngine] = None,
        alert_log: Optional[AlertLog] = None,
    ) -> None:
        self.predictor = predictor
        self.alert_engine = alert_engine
        self.alert_log = alert_log if alert_log is not None else AlertLog()
        self.predictions: List[Prediction] = []

    def __call__(self, sample: BusSample) -> None:
        columns = [sample.values[ch] for ch in PREDICTOR_CHANNELS]
        finite_any = np.isfinite(columns[0])
        for column in columns[1:]:
            finite_any = finite_any | np.isfinite(column)
        for rack in np.flatnonzero(finite_any):
            channel_values = {
                ch: float(column[rack])
                for ch, column in zip(PREDICTOR_CHANNELS, columns)
            }
            prediction = self.predictor.consume(
                sample.epoch_s, _RACK_IDS[rack], channel_values
            )
            if prediction is None:
                continue
            self.predictions.append(prediction)
            if self.alert_engine is not None:
                alert = self.alert_engine.process(prediction)
                if alert is not None:
                    self.alert_log.record(alert)

    @property
    def alerts(self) -> List[Alert]:
        return list(self.alert_log.alerts)


class CusumSubscriber:
    """Feeds the classical change detector from the stream."""

    def __init__(self, detector: Optional[CusumDetector] = None) -> None:
        self.detector = detector if detector is not None else CusumDetector()
        self.alarms: List[CusumAlarm] = []

    def __call__(self, sample: BusSample) -> None:
        for rack in range(len(_RACK_IDS)):
            channel_values: Dict[Channel, float] = {}
            for channel in PREDICTOR_CHANNELS:
                value = float(sample.values[channel][rack])
                if np.isfinite(value):
                    channel_values[channel] = value
            if not channel_values:
                continue
            self.alarms.extend(
                self.detector.consume(sample.epoch_s, _RACK_IDS[rack], channel_values)
            )


@dataclasses.dataclass
class CountingSubscriber:
    """Test/benchmark consumer: counts samples, optionally slowly.

    Attributes:
        delay_s: Artificial per-sample processing time (simulates a
            slow consumer to exercise backpressure policies).
        keep_seqs: Record every delivered sequence number (ordering
            and gap assertions).
    """

    delay_s: float = 0.0
    keep_seqs: bool = False
    received: int = 0
    last_seq: int = -1
    last_epoch_s: float = float("nan")
    seqs: List[int] = dataclasses.field(default_factory=list)
    monotonic: bool = True

    def __call__(self, sample: BusSample) -> None:
        if self.delay_s > 0:
            time.sleep(self.delay_s)
        if sample.seq <= self.last_seq:
            self.monotonic = False
        self.received += 1
        self.last_seq = sample.seq
        self.last_epoch_s = sample.epoch_s
        if self.keep_seqs:
            self.seqs.append(sample.seq)
