"""The streaming replay bus: finished telemetry re-served as live data.

The paper's environmental database was not a static file — ALCF
operators queried it *continuously*, and every downstream consumer
(dashboards, weekly reports, the CMF response workflow) rode a live
stream.  :class:`ReplayBus` turns a finished
:class:`~repro.telemetry.database.EnvironmentalDatabase` realization
back into that stream: whole-floor snapshots are published in
timestamp order, paced at a configurable speedup over simulated time
(or as fast as the machine allows), through a pub/sub dispatcher.

Every subscriber gets its **own bounded queue and worker thread**, so
one slow consumer cannot corrupt another's view of the stream.  What
happens when a queue fills is the subscriber's declared
**backpressure policy**:

* ``"block"`` — the publisher waits for space.  Nothing is lost, but a
  slow subscriber throttles the whole bus (every other subscriber
  advances at the slow one's pace).  The right choice for consumers
  that must see every sample, e.g. the rollup store.
* ``"drop_oldest"`` — the oldest queued sample is evicted to make
  room.  The subscriber sees a gapped but *fresh* stream; the
  publisher never stalls.
* ``"coalesce"`` — the newest queued sample is replaced by the
  incoming one.  The subscriber sees the latest state with intermediate
  samples superseded — dashboard semantics.

Every degraded decision is counted per subscriber
(:class:`SubscriberCounters`), including the maximum observed queue
depth and *lag* (samples published but not yet processed), so tests
and operators can see exactly what each consumer missed.

Payload vectors in a :class:`BusSample` are read-only views into the
source store; subscribers that retain them across callbacks must copy.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import Channel

#: Accepted backpressure policies.
BACKPRESSURE_POLICIES = ("block", "drop_oldest", "coalesce")

#: A source row: (epoch_s, channel -> values, channel -> quality).
SourceRow = Tuple[float, Mapping[Channel, np.ndarray], Mapping[Channel, np.ndarray]]


@dataclasses.dataclass(frozen=True)
class BusSample:
    """One published whole-floor snapshot.

    Attributes:
        seq: Publish sequence number (0-based, gap-free at the bus;
            a subscriber under a lossy policy may observe gaps).
        epoch_s: Simulated sample timestamp.
        values: Channel -> per-rack value vector (read-only view).
        quality: Channel -> per-rack quality flags (read-only view).
    """

    seq: int
    epoch_s: float
    values: Mapping[Channel, np.ndarray]
    quality: Mapping[Channel, np.ndarray]


@dataclasses.dataclass
class SubscriberCounters:
    """Observability counters for one subscription."""

    #: Samples appended to the subscriber's queue.
    enqueued: int = 0
    #: Samples whose callback completed.
    delivered: int = 0
    #: Samples evicted under ``drop_oldest``.
    dropped: int = 0
    #: Samples superseded under ``coalesce``.
    coalesced: int = 0
    #: Callback exceptions (swallowed; the stream continues).
    errors: int = 0
    #: Deepest queue backlog observed at publish time.
    max_queue_depth: int = 0
    #: Largest published-but-unprocessed sample count observed.
    max_lag: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class Subscription:
    """One subscriber's queue, worker thread, and counters."""

    def __init__(
        self,
        name: str,
        callback: Callable[[BusSample], None],
        capacity: int,
        policy: str,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"policy must be one of {BACKPRESSURE_POLICIES}, got {policy!r}"
            )
        self.name = name
        self.callback = callback
        self.capacity = capacity
        self.policy = policy
        self.counters = SubscriberCounters()
        self._queue: collections.deque = collections.deque()
        self._cond = threading.Condition()
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain, name=f"bus-sub-{name}", daemon=True
        )
        self._worker.start()

    # -- publisher side -----------------------------------------------------------

    def _offer(self, sample: BusSample) -> None:
        """Enqueue one sample per the backpressure policy."""
        counters = self.counters
        with self._cond:
            if self.policy == "block":
                while len(self._queue) >= self.capacity and not self._closed:
                    self._cond.wait(timeout=0.2)
            elif len(self._queue) >= self.capacity:
                if self.policy == "drop_oldest":
                    self._queue.popleft()
                    counters.dropped += 1
                else:  # coalesce: the incoming sample supersedes the newest
                    self._queue.pop()
                    counters.coalesced += 1
            self._queue.append(sample)
            counters.enqueued += 1
            depth = len(self._queue)
            if depth > counters.max_queue_depth:
                counters.max_queue_depth = depth
            processed = counters.delivered + counters.dropped + counters.coalesced
            lag = sample.seq + 1 - processed
            if lag > counters.max_lag:
                counters.max_lag = lag
            self._cond.notify()

    def _close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def _join(self, timeout_s: float) -> None:
        self._worker.join(timeout=timeout_s)

    # -- consumer side ------------------------------------------------------------

    def _drain(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait(timeout=0.2)
                if self._queue:
                    sample = self._queue.popleft()
                    # Wake a publisher waiting for space (block policy).
                    self._cond.notify_all()
                elif self._closed:
                    return
                else:
                    continue
            try:
                self.callback(sample)
            except Exception:
                with self._cond:
                    self.counters.errors += 1
                    self.counters.delivered += 1
                continue
            with self._cond:
                self.counters.delivered += 1

    @property
    def backlog(self) -> int:
        """Samples currently queued and unprocessed."""
        with self._cond:
            return len(self._queue)


@dataclasses.dataclass(frozen=True)
class BusReport:
    """What one replay produced."""

    #: Whole-floor snapshots published.
    published: int
    #: Wall-clock replay duration, seconds.
    duration_s: float
    #: Simulated seconds covered by the replay.
    simulated_span_s: float
    #: Final per-subscriber counters, by subscriber name.
    subscribers: Dict[str, SubscriberCounters]

    @property
    def rows_per_sec(self) -> float:
        return self.published / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def achieved_speedup(self) -> float:
        """Simulated seconds replayed per wall-clock second."""
        if self.duration_s <= 0:
            return float("inf")
        return self.simulated_span_s / self.duration_s


class ReplayBus:
    """Streams telemetry rows in timestamp order to subscribers.

    Args:
        source: An :class:`EnvironmentalDatabase` (replayed via
            :meth:`~EnvironmentalDatabase.iter_snapshots`) or any
            iterable of ``(epoch_s, values, quality)`` rows in
            ascending timestamp order.
        speedup: Simulated seconds streamed per wall-clock second.
            ``inf`` (the default) paces not at all — every row is
            published as fast as subscribers' policies allow.
        start_epoch_s / end_epoch_s: Restrict a database source to a
            replay window ``[start, end)``.
    """

    def __init__(
        self,
        source: "EnvironmentalDatabase | Iterable[SourceRow]",
        speedup: float = float("inf"),
        start_epoch_s: float = -np.inf,
        end_epoch_s: float = np.inf,
    ) -> None:
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        self._source = source
        self.speedup = float(speedup)
        self._start = start_epoch_s
        self._end = end_epoch_s
        self._subscriptions: List[Subscription] = []
        self.published = 0

    def subscribe(
        self,
        name: str,
        callback: Callable[[BusSample], None],
        capacity: int = 256,
        policy: str = "block",
    ) -> Subscription:
        """Register a consumer; its worker thread starts immediately.

        Raises:
            ValueError: on a duplicate name, non-positive capacity, or
                unknown policy.
        """
        if any(s.name == name for s in self._subscriptions):
            raise ValueError(f"duplicate subscriber name: {name!r}")
        subscription = Subscription(name, callback, capacity, policy)
        self._subscriptions.append(subscription)
        return subscription

    def _rows(self) -> Iterator[SourceRow]:
        if isinstance(self._source, EnvironmentalDatabase):
            return self._source.iter_snapshots(self._start, self._end)
        return iter(self._source)

    def run(self, join_timeout_s: float = 60.0) -> BusReport:
        """Publish every source row, drain all queues, and report.

        Blocks until the stream is exhausted and every subscriber has
        processed its backlog (subscribers under lossy policies only
        process what survived their queues).
        """
        pace = np.isfinite(self.speedup)
        started = time.perf_counter()
        next_wall = started
        previous_epoch: Optional[float] = None
        first_epoch = last_epoch = 0.0
        for epoch_s, values, quality in self._rows():
            if previous_epoch is None:
                first_epoch = epoch_s
            elif pace:
                next_wall += (epoch_s - previous_epoch) / self.speedup
                delay = next_wall - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            previous_epoch = last_epoch = epoch_s
            sample = BusSample(
                seq=self.published, epoch_s=epoch_s, values=values, quality=quality
            )
            for subscription in self._subscriptions:
                subscription._offer(sample)
            self.published += 1
        for subscription in self._subscriptions:
            subscription._close()
        for subscription in self._subscriptions:
            subscription._join(join_timeout_s)
        duration = time.perf_counter() - started
        return BusReport(
            published=self.published,
            duration_s=duration,
            simulated_span_s=(last_epoch - first_epoch) if self.published else 0.0,
            subscribers={
                s.name: dataclasses.replace(s.counters) for s in self._subscriptions
            },
        )
