"""The streaming replay bus: finished telemetry re-served as live data.

The paper's environmental database was not a static file — ALCF
operators queried it *continuously*, and every downstream consumer
(dashboards, weekly reports, the CMF response workflow) rode a live
stream.  :class:`ReplayBus` turns a finished
:class:`~repro.telemetry.database.EnvironmentalDatabase` realization
back into that stream: whole-floor snapshots are published in
timestamp order, paced at a configurable speedup over simulated time
(or as fast as the machine allows), through a pub/sub dispatcher.

Delivery is **columnar and chunked**: the bus batches ``chunk_size``
consecutive snapshots into a :class:`BusChunk` — one contiguous
``(timesteps, racks)`` block per channel, built zero-copy from the
environmental database's column matrices — and publishes whole chunks.
Subscribers choose their delivery granularity:

* ``delivery="chunks"`` — the callback receives :class:`BusChunk`
  objects and is expected to do one vectorized update per chunk (the
  fast path every first-class subscriber uses),
* ``delivery="samples"`` — the compatibility shim: the subscription's
  worker splits each chunk and invokes the callback once per
  :class:`BusSample`, exactly as the pre-chunking bus did.

Every subscriber gets its **own bounded queue and worker thread**, so
one slow consumer cannot corrupt another's view of the stream.  What
happens when a queue fills is the subscriber's declared
**backpressure policy** (queues hold whole chunks, so lossy policies
evict whole chunks at a time):

* ``"block"`` — the publisher waits for space.  Nothing is lost, but a
  slow subscriber throttles the whole bus (every other subscriber
  advances at the slow one's pace).  The right choice for consumers
  that must see every sample, e.g. the rollup store.
* ``"drop_oldest"`` — the oldest queued chunk is evicted to make
  room.  The subscriber sees a gapped but *fresh* stream; the
  publisher never stalls.
* ``"coalesce"`` — the newest queued chunk is replaced by the
  incoming one.  The subscriber sees the latest state with intermediate
  chunks superseded — dashboard semantics.

Every degraded decision is counted per subscriber
(:class:`SubscriberCounters`) in **both sample and chunk units**,
including the maximum observed queue depth (chunks) and *lag* (samples
published but not yet processed), so tests and operators can see
exactly what each consumer missed.

Payload blocks in a :class:`BusChunk` (and the per-sample vectors the
shim slices from them) are read-only views into the source store;
subscribers that retain them across callbacks must copy.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import Channel

#: Accepted backpressure policies.
BACKPRESSURE_POLICIES = ("block", "drop_oldest", "coalesce")

#: Accepted delivery granularities for :meth:`ReplayBus.subscribe`.
DELIVERY_MODES = ("samples", "chunks")

#: A source row: (epoch_s, channel -> values, channel -> quality).
SourceRow = Tuple[float, Mapping[Channel, np.ndarray], Mapping[Channel, np.ndarray]]


@dataclasses.dataclass(frozen=True)
class BusSample:
    """One published whole-floor snapshot.

    Attributes:
        seq: Publish sequence number (0-based, gap-free at the bus;
            a subscriber under a lossy policy may observe gaps).
        epoch_s: Simulated sample timestamp.
        values: Channel -> per-rack value vector (read-only view).
        quality: Channel -> per-rack quality flags (read-only view).
    """

    seq: int
    epoch_s: float
    values: Mapping[Channel, np.ndarray]
    quality: Mapping[Channel, np.ndarray]


@dataclasses.dataclass(frozen=True)
class BusChunk:
    """A contiguous block of published snapshots, columnar per channel.

    Attributes:
        seq: Chunk sequence number (0-based, gap-free at the bus).
        start_seq: Sample sequence number of the chunk's first row.
        epoch_s: ``(timesteps,)`` sample timestamps (read-only view).
        values: Channel -> ``(timesteps, racks)`` block (read-only
            view into the source store — zero-copy for database
            replays).
        quality: Channel -> parallel quality-flag block.
    """

    seq: int
    start_seq: int
    epoch_s: np.ndarray
    values: Mapping[Channel, np.ndarray]
    quality: Mapping[Channel, np.ndarray]

    def __len__(self) -> int:
        return len(self.epoch_s)

    @property
    def end_seq(self) -> int:
        """Sample sequence number of the chunk's last row."""
        return self.start_seq + len(self.epoch_s) - 1

    def samples(self) -> Iterator[BusSample]:
        """Split into per-sample views (the compatibility shim)."""
        for i in range(len(self.epoch_s)):
            yield BusSample(
                seq=self.start_seq + i,
                epoch_s=float(self.epoch_s[i]),
                values={ch: block[i] for ch, block in self.values.items()},
                quality={ch: block[i] for ch, block in self.quality.items()},
            )


@dataclasses.dataclass
class SubscriberCounters:
    """Observability counters for one subscription.

    The historical counters (``enqueued``/``delivered``/``dropped``/
    ``coalesced``) stay in **sample units** so dashboards and tests
    written against per-sample delivery keep reading correctly; their
    ``*_chunks`` twins count the same events in whole-chunk units.
    ``enqueued == delivered + dropped + coalesced`` holds in both
    units once a replay drains.
    """

    #: Samples appended to the subscriber's queue.
    enqueued: int = 0
    #: Samples whose callback completed.
    delivered: int = 0
    #: Samples evicted under ``drop_oldest``.
    dropped: int = 0
    #: Samples superseded under ``coalesce``.
    coalesced: int = 0
    #: Chunks appended to the subscriber's queue.
    enqueued_chunks: int = 0
    #: Chunks fully processed by the consumer.
    delivered_chunks: int = 0
    #: Whole chunks evicted under ``drop_oldest``.
    dropped_chunks: int = 0
    #: Whole chunks superseded under ``coalesce``.
    coalesced_chunks: int = 0
    #: Callback exceptions (swallowed; the stream continues).
    errors: int = 0
    #: Deepest queue backlog observed at publish time, in chunks.
    max_queue_depth: int = 0
    #: Largest published-but-unprocessed sample count observed.
    max_lag: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class Subscription:
    """One subscriber's queue, worker thread, and counters.

    The queue holds whole :class:`BusChunk` objects.  ``delivery``
    decides what the callback sees: ``"chunks"`` hands each chunk over
    verbatim; ``"samples"`` (the compatibility shim) splits every chunk
    and invokes the callback once per :class:`BusSample`.
    """

    def __init__(
        self,
        name: str,
        callback: Callable[..., None],
        capacity: int,
        policy: str,
        delivery: str = "samples",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"policy must be one of {BACKPRESSURE_POLICIES}, got {policy!r}"
            )
        if delivery not in DELIVERY_MODES:
            raise ValueError(
                f"delivery must be one of {DELIVERY_MODES}, got {delivery!r}"
            )
        self.name = name
        self.callback = callback
        self.capacity = capacity
        self.policy = policy
        self.delivery = delivery
        self.counters = SubscriberCounters()
        self._queue: collections.deque = collections.deque()
        self._cond = threading.Condition()
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain, name=f"bus-sub-{name}", daemon=True
        )
        self._worker.start()

    # -- publisher side -----------------------------------------------------------

    def _offer(self, chunk: BusChunk) -> None:
        """Enqueue one chunk per the backpressure policy.

        The policy is re-read on every wait iteration so a supervisor
        can degrade a blocked subscription to ``drop_oldest`` mid-wait
        (see :meth:`set_policy`) and unwedge the publisher.
        """
        counters = self.counters
        size = len(chunk)
        with self._cond:
            while (
                self.policy == "block"
                and len(self._queue) >= self.capacity
                and not self._closed
            ):
                self._cond.wait(timeout=0.2)
            if len(self._queue) >= self.capacity and self.policy != "block":
                if self.policy == "drop_oldest":
                    evicted = self._queue.popleft()
                    counters.dropped += len(evicted)
                    counters.dropped_chunks += 1
                else:  # coalesce: the incoming chunk supersedes the newest
                    evicted = self._queue.pop()
                    counters.coalesced += len(evicted)
                    counters.coalesced_chunks += 1
            self._queue.append(chunk)
            counters.enqueued += size
            counters.enqueued_chunks += 1
            depth = len(self._queue)
            if depth > counters.max_queue_depth:
                counters.max_queue_depth = depth
            processed = counters.delivered + counters.dropped + counters.coalesced
            lag = chunk.end_seq + 1 - processed
            if lag > counters.max_lag:
                counters.max_lag = lag
            self._cond.notify()

    def set_policy(self, policy: str) -> None:
        """Swap the backpressure policy at runtime (thread-safe).

        Used by the supervisor's watchdog to degrade a hung blocking
        subscriber to ``drop_oldest`` (and restore it afterwards); a
        publisher blocked in :meth:`_offer` re-checks the policy and
        unwedges immediately.
        """
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"policy must be one of {BACKPRESSURE_POLICIES}, got {policy!r}"
            )
        with self._cond:
            self.policy = policy
            self._cond.notify_all()

    def _close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def _abort(self) -> None:
        """Close *discarding* the backlog (simulated process death)."""
        with self._cond:
            self._queue.clear()
            self._closed = True
            self._cond.notify_all()

    def _join(self, timeout_s: float) -> None:
        self._worker.join(timeout=timeout_s)

    # -- consumer side ------------------------------------------------------------

    def _drain(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait(timeout=0.2)
                if self._queue:
                    chunk = self._queue.popleft()
                    # Wake a publisher waiting for space (block policy).
                    self._cond.notify_all()
                elif self._closed:
                    return
                else:
                    continue
            if self.delivery == "chunks":
                try:
                    self.callback(chunk)
                except Exception:
                    with self._cond:
                        self.counters.errors += 1
                with self._cond:
                    self.counters.delivered += len(chunk)
                    self.counters.delivered_chunks += 1
            else:
                for sample in chunk.samples():
                    try:
                        self.callback(sample)
                    except Exception:
                        with self._cond:
                            self.counters.errors += 1
                            self.counters.delivered += 1
                        continue
                    with self._cond:
                        self.counters.delivered += 1
                with self._cond:
                    self.counters.delivered_chunks += 1

    @property
    def backlog(self) -> int:
        """Samples currently queued and unprocessed."""
        with self._cond:
            return sum(len(chunk) for chunk in self._queue)


@dataclasses.dataclass(frozen=True)
class BusReport:
    """What one replay produced."""

    #: Whole-floor snapshots published.
    published: int
    #: Wall-clock replay duration, seconds.
    duration_s: float
    #: Simulated seconds covered by the replay.
    simulated_span_s: float
    #: Final per-subscriber counters, by subscriber name.
    subscribers: Dict[str, SubscriberCounters]
    #: Chunks published (== ``published`` when ``chunk_size == 1``).
    published_chunks: int = 0

    @property
    def rows_per_sec(self) -> float:
        return self.published / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def achieved_speedup(self) -> float:
        """Simulated seconds replayed per wall-clock second."""
        if self.duration_s <= 0:
            return float("inf")
        return self.simulated_span_s / self.duration_s


class ReplayBus:
    """Streams telemetry rows in timestamp order to subscribers.

    Args:
        source: An :class:`EnvironmentalDatabase` (replayed via
            zero-copy column-block slices) or any iterable of
            ``(epoch_s, values, quality)`` rows in ascending timestamp
            order.
        speedup: Simulated seconds streamed per wall-clock second.
            ``inf`` (the default) paces not at all — every row is
            published as fast as subscribers' policies allow.
        start_epoch_s / end_epoch_s: Restrict a database source to a
            replay window ``[start, end)``.
        chunk_size: Snapshots batched per published :class:`BusChunk`.
            The default of 1 reproduces per-sample publishing exactly
            (one chunk per snapshot, pacing and drop accounting
            included); live deployments should use hundreds.
        base_seq: Sample sequence number of the first published row.
            A recovered service resumes its replay mid-stream with the
            sequence numbering of the original run, so write-ahead-log
            records and subscriber ack positions stay aligned.
        on_publish: Optional hook invoked with each :class:`BusChunk`
            *before* it is offered to any subscriber — the write-ahead
            ordering point (the durability layer appends the chunk to
            its log here, and the chaos injector raises its simulated
            process kill here).  An exception from the hook aborts the
            replay without publishing the chunk.
    """

    def __init__(
        self,
        source: "EnvironmentalDatabase | Iterable[SourceRow]",
        speedup: float = float("inf"),
        start_epoch_s: float = -np.inf,
        end_epoch_s: float = np.inf,
        chunk_size: int = 1,
        base_seq: int = 0,
        on_publish: Optional[Callable[[BusChunk], None]] = None,
    ) -> None:
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if base_seq < 0:
            raise ValueError(f"base_seq must be >= 0, got {base_seq}")
        self._source = source
        self.speedup = float(speedup)
        self._start = start_epoch_s
        self._end = end_epoch_s
        self.chunk_size = int(chunk_size)
        self.base_seq = int(base_seq)
        self.on_publish = on_publish
        self._subscriptions: List[Subscription] = []
        self.published = 0
        self.published_chunks = 0

    def subscribe(
        self,
        name: str,
        callback: Callable[..., None],
        capacity: int = 256,
        policy: str = "block",
        delivery: str = "samples",
    ) -> Subscription:
        """Register a consumer; its worker thread starts immediately.

        Args:
            delivery: ``"samples"`` (default) invokes ``callback`` once
                per :class:`BusSample` — the pre-chunking contract,
                served by splitting each queued chunk.  ``"chunks"``
                invokes it once per :class:`BusChunk` for vectorized
                consumers.

        Raises:
            ValueError: on a duplicate name, non-positive capacity,
                unknown policy, or unknown delivery mode.
        """
        if any(s.name == name for s in self._subscriptions):
            raise ValueError(f"duplicate subscriber name: {name!r}")
        subscription = Subscription(name, callback, capacity, policy, delivery)
        self._subscriptions.append(subscription)
        return subscription

    def _chunks(self) -> Iterator[Tuple[np.ndarray, Mapping, Mapping]]:
        """Yield ``(epoch_s, values, quality)`` column blocks.

        Database sources slice their column matrices directly —
        zero-copy read-only views.  Generic row iterables are batched
        by stacking up to ``chunk_size`` consecutive rows (flushing
        early if the channel set changes mid-batch).
        """
        if isinstance(self._source, EnvironmentalDatabase):
            yield from self._source.iter_blocks(
                self.chunk_size, self._start, self._end
            )
            return
        pending: List[SourceRow] = []
        pending_key: Optional[Tuple] = None
        for row in iter(self._source):
            key = (tuple(row[1].keys()), tuple(row[2].keys()))
            if pending and (key != pending_key or len(pending) >= self.chunk_size):
                yield self._stack_rows(pending)
                pending = []
            pending.append(row)
            pending_key = key
        if pending:
            yield self._stack_rows(pending)

    @staticmethod
    def _stack_rows(rows: List[SourceRow]) -> Tuple[np.ndarray, Mapping, Mapping]:
        epochs = np.array([row[0] for row in rows], dtype=np.float64)
        epochs.flags.writeable = False
        values: Dict[Channel, np.ndarray] = {}
        quality: Dict[Channel, np.ndarray] = {}
        for channel in rows[0][1]:
            block = np.stack([row[1][channel] for row in rows])
            block.flags.writeable = False
            values[channel] = block
        for channel in rows[0][2]:
            block = np.stack([row[2][channel] for row in rows])
            block.flags.writeable = False
            quality[channel] = block
        return epochs, values, quality

    def abort(self, join_timeout_s: float = 10.0) -> None:
        """Tear the bus down *discarding* every subscriber backlog.

        Models the process dying mid-replay: queued-but-unprocessed
        chunks are lost (exactly what a kill loses), worker threads
        exit, and no further state mutation happens.  Used by the
        chaos harness after :class:`ChaosProcessKill` escapes
        :meth:`run`.
        """
        for subscription in self._subscriptions:
            subscription._abort()
        for subscription in self._subscriptions:
            subscription._join(join_timeout_s)

    def run(self, join_timeout_s: float = 60.0) -> BusReport:
        """Publish every source row, drain all queues, and report.

        Blocks until the stream is exhausted and every subscriber has
        processed its backlog (subscribers under lossy policies only
        process what survived their queues).
        """
        pace = np.isfinite(self.speedup)
        started = time.perf_counter()
        next_wall = started
        previous_epoch: Optional[float] = None
        first_epoch = last_epoch = 0.0
        for epochs, values, quality in self._chunks():
            if len(epochs) == 0:
                continue
            if previous_epoch is None:
                first_epoch = float(epochs[0])
            elif pace:
                next_wall += (float(epochs[0]) - previous_epoch) / self.speedup
                delay = next_wall - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            previous_epoch = last_epoch = float(epochs[-1])
            chunk = BusChunk(
                seq=self.published_chunks,
                start_seq=self.base_seq + self.published,
                epoch_s=epochs,
                values=values,
                quality=quality,
            )
            if self.on_publish is not None:
                self.on_publish(chunk)
            for subscription in self._subscriptions:
                subscription._offer(chunk)
            self.published += len(epochs)
            self.published_chunks += 1
        for subscription in self._subscriptions:
            subscription._close()
        for subscription in self._subscriptions:
            subscription._join(join_timeout_s)
        duration = time.perf_counter() - started
        return BusReport(
            published=self.published,
            duration_s=duration,
            simulated_span_s=(last_epoch - first_epoch) if self.published else 0.0,
            subscribers={
                s.name: dataclasses.replace(s.counters) for s in self._subscriptions
            },
            published_chunks=self.published_chunks,
        )
